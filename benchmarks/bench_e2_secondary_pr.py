"""E2 — precision/recall of FK / secondary-relation discovery.

Mined inclusion dependencies vs. the importers' declared constraints, per
format. Recall of declared FKs is the operative number; precision is
depressed by accidental value containments, which is the cost the paper
accepts for guessing (Section 4.2).
"""

from repro.dataimport import registry
from repro.discovery import discover_structure
from repro.eval import evaluate_fk_discovery, format_table, precision_recall_f1
from benchmarks.conftest import build_noisy_scenario


def test_e2_fk_discovery_pr(benchmark):
    scenario = build_noisy_scenario(seed=410)

    result = benchmark.pedantic(
        lambda: evaluate_fk_discovery(scenario), iterations=1, rounds=1
    )

    rows = []
    for source in scenario.sources:
        importer = registry.create(source.facts.format_name, source.name, True)
        for key, value in source.facts.import_options.items():
            setattr(importer, key, value)
        declared_db = importer.import_text(source.text).database
        truth = {
            (f"{t.name}.{fk.columns[0]}", f"{fk.target_table}.{fk.target_columns[0]}")
            for t in declared_db.tables()
            for fk in t.schema.foreign_keys
            # Empty source columns make the constraint undiscoverable
            # (vacuous containment) — excluded from truth.
            if len(fk.columns) == 1 and t.non_null_values(fk.columns[0])
        }
        structure = discover_structure(declared_db.strip_constraints())
        found = structure.relationship_pairs()
        prf = precision_recall_f1(found, truth)
        rows.append(
            [
                source.name,
                len(truth),
                len(found),
                f"{prf.precision:.2f}",
                f"{prf.recall:.2f}",
            ]
        )
    print()
    print("E2: foreign-key discovery vs declared constraints")
    print(format_table(["source", "declared", "mined", "precision", "recall"], rows))
    aggregate = result.metric("fk_edges")
    print(
        f"\naggregate: precision={aggregate.precision:.2f} "
        f"recall={aggregate.recall:.2f} "
        f"(recovered {result.details['recovered']}/{result.details['declared']})"
    )
    # Shape: near-total recall of true constraints on clean data.
    assert aggregate.recall >= 0.95
