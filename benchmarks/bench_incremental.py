"""Incremental maintenance — the old per-pair path vs. the session scorer
and resident pools.

The workload the paper cares about most: sources keep *arriving*, so the
system integrates them one ``add_source`` at a time. Before this change
the incremental duplicate pass re-scored every candidate pair from
scratch per counterpart and every fan-out forked a fresh worker pool;
now the pass runs one chunk per new source on a session-wide
:class:`~repro.duplicates.batch.BoundedRecordScorer` (value-pair cache +
exact best-match pruning, carried across the whole maintenance session)
and resident executors reuse one long-lived pool across fan-outs.

Measured on a 6-source sequential ``add_source`` run:

* **old**: ``incremental_shared_scorer = False``, serial backend — the
  pre-PR incremental path, still selectable for exactly this comparison;
* **new**: the session scorer on the serial backend;
* **new + resident**: the session scorer with a resident thread pool;
* **discover_for sweep**: re-discovering every source's links on the
  process backend, per-fanout pools vs. one resident pool — the pure
  fork-overhead comparison.

Link webs must be *identical* across all variants before any timing is
recorded. Full-corpus runs write ``BENCH_incremental.json`` at the repo
root and enforce the >=1.5x acceptance bar;
``REPRO_BENCH_INCREMENTAL_SMALL=1`` runs a smoke-sized corpus and leaves
the committed baseline untouched.
"""

import json
import os
import time

from repro.core import Aladin, AladinConfig
from repro.eval import format_table
from repro.exec import ExecConfig, ProcessExecutor, ResidentProcessExecutor
from repro.synth import ScenarioConfig, UniverseConfig, build_scenario

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_incremental.json")
SMALL = bool(os.environ.get("REPRO_BENCH_INCREMENTAL_SMALL"))
WORKERS = 4


def corpus():
    if SMALL:
        return build_scenario(
            ScenarioConfig(
                seed=450,
                include=("swissprot", "pdb", "go"),
                universe=UniverseConfig(n_families=3, members_per_family=2, seed=450),
            )
        )
    # Six sources over the E6 universe: the N-sequential-adds workload.
    return build_scenario(
        ScenarioConfig(
            seed=450,
            include=("swissprot", "pir", "pdb", "scop", "go", "omim"),
            universe=UniverseConfig(
                n_families=8, members_per_family=3, n_go_terms=24,
                n_diseases=10, n_interactions=15, seed=450,
            ),
        )
    )


def source_specs(scenario):
    return [
        (s.name, s.facts.format_name, s.text, s.facts.import_options)
        for s in scenario.sources
    ]


def link_web(aladin):
    return [
        (l.source_a, l.accession_a, l.source_b, l.accession_b,
         l.kind, l.certainty, l.evidence)
        for l in aladin.repository.object_links()
    ]


def run_incremental(specs, execution=None, shared_scorer=True):
    config = AladinConfig()
    if execution is not None:
        config.execution = execution
    config.incremental_shared_scorer = shared_scorer
    aladin = Aladin(config)
    started = time.perf_counter()
    for name, format_name, text, options in specs:
        aladin.add_source(name, format_name, text, **options)
    seconds = time.perf_counter() - started
    return aladin, seconds


def sweep(aladin, executor):
    """Re-run discover_for for every source on ``executor``."""
    previous = aladin._engine.executor
    aladin._engine.executor = executor
    started = time.perf_counter()
    links = {
        name: aladin._engine.discover_for(name) for name in aladin.source_names()
    }
    seconds = time.perf_counter() - started
    aladin._engine.executor = previous
    return seconds, {
        name: ([l for l in ls.attribute_links], [l for l in ls.object_links])
        for name, ls in links.items()
    }


def test_incremental_speedup(benchmark):
    scenario = corpus()
    specs = source_specs(scenario)

    old, old_seconds = run_incremental(specs, shared_scorer=False)
    new, new_seconds = run_incremental(specs, shared_scorer=True)
    resident_exec = ExecConfig(backend="thread", workers=WORKERS, resident=True)
    resident, resident_seconds = run_incremental(specs, execution=resident_exec)

    # Identity before timing claims: all three paths, the same web.
    assert link_web(new) == link_web(old)
    assert link_web(resident) == link_web(old)

    # The refresh workload: per-fanout process pools fork once per sweep
    # call; the resident pool forks once for the whole sweep.
    per_call = ProcessExecutor(2)
    per_call_seconds, per_call_links = sweep(old, per_call)
    resident_pool = ResidentProcessExecutor(2)
    resident_sweep_seconds, resident_links = sweep(old, resident_pool)
    forks = resident_pool.pools_forked
    resident_pool.shutdown()
    assert resident_links == per_call_links

    speedup = old_seconds / new_seconds
    resident_speedup = old_seconds / resident_seconds
    sweep_speedup = per_call_seconds / resident_sweep_seconds
    scorer = new._dup_scorer
    rows = [
        [f"integrate ({len(specs)} sources, old)", f"{old_seconds:.2f}", "1.00x"],
        ["integrate (session scorer)", f"{new_seconds:.2f}", f"{speedup:.2f}x"],
        ["integrate (scorer + resident thread)",
         f"{resident_seconds:.2f}", f"{resident_speedup:.2f}x"],
        [f"discover_for sweep (process x2, {len(specs)} pools)",
         f"{per_call_seconds:.2f}", "1.00x"],
        [f"discover_for sweep (resident, {forks} pool)",
         f"{resident_sweep_seconds:.2f}", f"{sweep_speedup:.2f}x"],
    ]
    print()
    print(f"Incremental maintenance ({os.cpu_count()} core(s))")
    print(format_table(["phase", "seconds", "speedup"], rows))
    print(
        f"session scorer: {scorer.exact_scores} exact, {scorer.pruned} pruned, "
        f"{scorer.cache_hits} cache hits, {len(scorer.cache)} cached pairs"
    )

    result = {
        "corpus": (
            "small smoke corpus" if SMALL
            else f"E6 universe (seed 450), {len(specs)} sources"
        ),
        "effective_cores": os.cpu_count(),
        "incremental_seconds": {
            "old_per_pair": round(old_seconds, 3),
            "new_session_scorer": round(new_seconds, 3),
            "new_resident_thread": round(resident_seconds, 3),
        },
        "sweep_seconds": {
            "process_per_fanout": round(per_call_seconds, 3),
            "process_resident": round(resident_sweep_seconds, 3),
            "resident_pool_forks": forks,
        },
        "speedup": {
            "session_scorer": round(speedup, 3),
            "session_scorer_resident": round(resident_speedup, 3),
            "sweep_resident": round(sweep_speedup, 3),
        },
        "session_scorer": {
            "exact_scores": scorer.exact_scores,
            "pruned": scorer.pruned,
            "cache_hits": scorer.cache_hits,
            "cached_pairs": len(scorer.cache),
        },
        "link_web_identical": True,
        "notes": (
            "old = pre-PR incremental path (fresh exhaustive scorer per "
            "source pair, per-fanout pools); new = one duplicate chunk per "
            "add_source on the session-wide BoundedRecordScorer, whose "
            "value-pair cache persists across the whole maintenance "
            "session. The sweep rows isolate resident-pool fork savings "
            "on the refresh workload. All variants produce byte-identical "
            "link webs."
        ),
    }
    if not SMALL:
        with open(RESULT_PATH, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
        # The acceptance bar: the new incremental path must beat the
        # pre-PR path by >=1.5x on the 6-source sequential run.
        assert speedup >= 1.5, f"incremental speedup {speedup:.2f}x < 1.5x"

    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
