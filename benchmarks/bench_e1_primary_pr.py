"""E1 — precision/recall of primary-relation discovery (Sections 3/5).

Sweeps scenario seeds and reports per-source hit/miss plus aggregate
precision. Known failure modes (classification hierarchies, digit-only
accession sources) are expected and reported, not hidden.
"""

from repro.eval import evaluate_primary_discovery, format_table, integrate_scenario
from benchmarks.conftest import build_noisy_scenario


def test_e1_primary_relation_pr(benchmark):
    seeds = [401, 402]
    scenarios = [build_noisy_scenario(seed=s) for s in seeds]

    def run_all():
        return [integrate_scenario(s) for s in scenarios]

    integrated = benchmark.pedantic(run_all, iterations=1, rounds=1)

    rows = []
    total_correct = 0
    total_sources = 0
    known_failures = {"scop", "taxonomy"}
    for scenario, aladin in zip(scenarios, integrated):
        result = evaluate_primary_discovery(scenario, aladin)
        wrong = {w[0]: (w[1], w[2]) for w in result.details["wrong"]}
        for name in aladin.source_names():
            predicted = aladin.repository.structure(name).primary_relation
            expected = scenario.gold.primary_relation(name)
            hit = name not in wrong
            total_sources += 1
            total_correct += int(hit)
            rows.append(
                [
                    scenario.config.seed,
                    name,
                    predicted or "-",
                    expected,
                    "ok" if hit else "MISS",
                ]
            )
    print()
    print("E1: primary-relation discovery per source")
    print(format_table(["seed", "source", "predicted", "gold", "result"], rows))
    accuracy = total_correct / total_sources
    print(f"\naggregate accuracy: {accuracy:.2f} over {total_sources} sources")
    # All misses must be the documented failure modes; the rest must hit.
    for row in rows:
        if row[4] == "MISS":
            assert row[1] in known_failures, f"unexpected miss: {row}"
    assert accuracy >= 0.7
