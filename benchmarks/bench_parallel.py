"""Parallel execution — serial loop vs. the scheduled batch pipeline.

Measures the two hot paths the execution subsystem parallelizes, on the
E6 scalability corpus:

* **integrate**: the sequential ``add_source`` loop under the serial
  backend vs. ``integrate_many`` under the process backend (4 workers).
  The batch path wins twice — pair fan-out across workers, and the
  chunk-shared :class:`~repro.duplicates.batch.BoundedRecordScorer`
  that eliminates redundant similarity work inside each worker — so it
  is faster even on a single-core host, and scales with cores.
* **discover_for sweep**: re-discovering every source's links (the
  refresh workload), serial vs. fanned across process workers.

The resulting link webs must be *identical* lists — that assertion runs
before any timing is recorded. Results land in ``BENCH_parallel.json``
at the repo root (full corpus runs only; ``REPRO_BENCH_PARALLEL_SMALL=1``
runs a smoke-sized corpus and leaves the committed baseline untouched).
"""

import json
import os
import time

from repro.core import Aladin, AladinConfig
from repro.eval import format_table
from repro.exec import ExecConfig, ProcessExecutor, SerialExecutor
from repro.synth import ScenarioConfig, UniverseConfig, build_scenario

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_parallel.json")
SMALL = bool(os.environ.get("REPRO_BENCH_PARALLEL_SMALL"))
WORKERS = 4


def corpus():
    if SMALL:
        return build_scenario(
            ScenarioConfig(
                seed=450,
                include=("swissprot", "pdb", "go"),
                universe=UniverseConfig(n_families=3, members_per_family=2, seed=450),
            )
        )
    # The E6 incremental-addition corpus (same universe as bench_e6).
    return build_scenario(
        ScenarioConfig(
            seed=450,
            universe=UniverseConfig(
                n_families=8, members_per_family=3, n_go_terms=24,
                n_diseases=10, n_interactions=15, seed=450,
            ),
        )
    )


def source_specs(scenario):
    return [
        (s.name, s.facts.format_name, s.text, s.facts.import_options)
        for s in scenario.sources
    ]


def link_web(aladin):
    return [
        (l.source_a, l.accession_a, l.source_b, l.accession_b,
         l.kind, l.certainty, l.evidence)
        for l in aladin.repository.object_links()
    ]


def _aladin(backend, workers):
    config = AladinConfig()
    config.execution = ExecConfig(backend=backend, workers=workers)
    return Aladin(config)


def _sweep(aladin, executor):
    """Re-run discover_for for every source; returns (seconds, links)."""
    aladin._engine.executor = executor
    started = time.perf_counter()
    links = {
        name: aladin._engine.discover_for(name) for name in aladin.source_names()
    }
    seconds = time.perf_counter() - started
    return seconds, {
        name: ([l for l in ls.attribute_links], [l for l in ls.object_links])
        for name, ls in links.items()
    }


def test_parallel_speedup(benchmark):
    scenario = corpus()
    specs = source_specs(scenario)

    # Serial baseline: the sequential loop, serial backend.
    serial = _aladin("serial", 1)
    started = time.perf_counter()
    for name, format_name, text, options in specs:
        serial.add_source(name, format_name, text, **options)
    serial_integrate = time.perf_counter() - started
    serial_sweep, serial_links = _sweep(serial, SerialExecutor(1))

    # Parallel run: the batch pipeline on the process backend.
    parallel = _aladin("process", WORKERS)
    started = time.perf_counter()
    parallel.integrate_many(specs)
    parallel_integrate = time.perf_counter() - started
    parallel_sweep, parallel_links = _sweep(parallel, ProcessExecutor(WORKERS))

    # Identity before timing claims: same web, same sweep results.
    assert link_web(parallel) == link_web(serial)
    assert parallel_links == serial_links

    combined = (serial_integrate + serial_sweep) / (
        parallel_integrate + parallel_sweep
    )
    rows = [
        ["integrate (8 sources)" if not SMALL else "integrate (small)",
         f"{serial_integrate:.2f}", f"{parallel_integrate:.2f}",
         f"{serial_integrate / parallel_integrate:.2f}x"],
        ["discover_for sweep",
         f"{serial_sweep:.2f}", f"{parallel_sweep:.2f}",
         f"{serial_sweep / parallel_sweep:.2f}x"],
        ["combined",
         f"{serial_integrate + serial_sweep:.2f}",
         f"{parallel_integrate + parallel_sweep:.2f}",
         f"{combined:.2f}x"],
    ]
    print()
    print(f"Parallel execution ({os.cpu_count()} core(s), {WORKERS} workers, "
          f"process backend)")
    print(format_table(["phase", "serial s", "parallel s", "speedup"], rows))

    result = {
        "corpus": "small smoke corpus" if SMALL else "E6 (seed 450, 8 sources)",
        "effective_cores": os.cpu_count(),
        "workers": WORKERS,
        "backend": "process",
        "serial_seconds": {
            "integrate": round(serial_integrate, 3),
            "discover_sweep": round(serial_sweep, 3),
        },
        "parallel_seconds": {
            "integrate": round(parallel_integrate, 3),
            "discover_sweep": round(parallel_sweep, 3),
        },
        "speedup": {
            "integrate": round(serial_integrate / parallel_integrate, 3),
            "discover_sweep": round(serial_sweep / parallel_sweep, 3),
            "combined": round(combined, 3),
        },
        "link_web_identical": True,
        "notes": (
            "serial = sequential add_source loop on the serial backend; "
            "parallel = integrate_many + discover_for fan-out on the process "
            "backend. The batch gain combines worker parallelism with the "
            "chunk-shared bounded duplicate scorer (exact, byte-identical "
            "links); on single-core hosts the scorer carries the win, on "
            "multi-core hosts the fan-out multiplies it."
        ),
    }
    if not SMALL:
        with open(RESULT_PATH, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
        # The acceptance bar for the full corpus: the scheduled batch path
        # must beat the serial loop by >1.5x end to end.
        assert combined > 1.5, f"combined speedup {combined:.2f}x <= 1.5x"

    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
