"""Shared scenario fixtures for the benchmark harness.

Each bench regenerates one table/figure/experiment of DESIGN.md's index
and prints the corresponding rows, so ``pytest benchmarks/
--benchmark-only -s`` reproduces the paper-shaped results end to end.
"""

import pytest

from repro.core import AladinConfig
from repro.eval import integrate_scenario
from repro.synth import CorruptionConfig, ScenarioConfig, UniverseConfig, build_scenario


def small_universe(seed: int) -> UniverseConfig:
    return UniverseConfig(
        n_families=5,
        members_per_family=3,
        n_go_terms=16,
        n_diseases=6,
        n_interactions=10,
        seed=seed,
    )


def medium_universe(seed: int) -> UniverseConfig:
    return UniverseConfig(
        n_families=10,
        members_per_family=4,
        n_go_terms=30,
        n_diseases=12,
        n_interactions=25,
        seed=seed,
    )


@pytest.fixture(scope="session")
def bench_world():
    """One integrated scenario shared by several benches."""
    scenario = build_scenario(ScenarioConfig(seed=300, universe=small_universe(300)))
    aladin = integrate_scenario(scenario)
    return scenario, aladin


def build_noisy_scenario(seed: int, drop: float = 0.0, dangle: float = 0.0,
                         typo: float = 0.0, include=None):
    config = ScenarioConfig(
        seed=seed,
        universe=small_universe(seed),
        corruption=CorruptionConfig(
            xref_drop_rate=drop, xref_dangling_rate=dangle, text_typo_rate=typo
        ),
    )
    if include is not None:
        config.include = include
    return build_scenario(config)
