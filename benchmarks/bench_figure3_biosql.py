"""F3 — Figure 3: the BioSQL schema case study (Section 5).

Loads synthetic Swiss-Prot records into the Figure 3 BioSQL subset with
all constraints stripped, runs discovery, and verifies the paper's
narrative: ``bioentry.accession`` is the accession candidate, ``bioentry``
wins by in-degree, and ``dbxref.accession`` is the cross-reference source
against other sources' primary accessions.
"""

from repro.dataimport import load_biosql, parse_flatfile
from repro.discovery import RelationshipGraph, discover_structure
from repro.eval import format_table
from benchmarks.conftest import build_noisy_scenario


def test_figure3_biosql_case_study(benchmark):
    scenario = build_noisy_scenario(seed=330, include=("swissprot", "pdb", "go"))
    records = parse_flatfile(scenario.source("swissprot").text)
    database = load_biosql(records, declare_constraints=False).database

    structure = benchmark.pedantic(
        lambda: discover_structure(database), iterations=1, rounds=3
    )

    graph = RelationshipGraph(database.table_names(), structure.relationships)
    rows = []
    for table in database.table_names():
        candidate = structure.accession_candidates.get(table)
        rows.append(
            [
                table,
                len(database.table(table)),
                graph.in_degree(table),
                candidate.column if candidate else "-",
                "<– primary" if table == structure.primary_relation else "",
            ]
        )
    print()
    print("Figure 3: BioSQL discovery (constraints stripped)")
    print(format_table(["table", "rows", "in-degree", "accession candidate", ""], rows))
    assert structure.primary_relation == "bioentry"
    assert structure.accession_candidates["bioentry"].column == "accession"
    # The paper's rejection cases: digit-only bioentry_id / identifier and
    # varying-length name must not be the chosen candidate.
    assert structure.accession_candidates["bioentry"].column not in (
        "bioentry_id", "identifier", "name",
    )
    # dbxref holds outgoing references and is connected to the primary
    # relation through the bioentry_dbxref bridge.
    assert "dbxref" in structure.secondary_paths
