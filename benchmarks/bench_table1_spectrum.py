"""T1 — Table 1: the spectrum of integration approaches, quantified.

Paper row semantics: data-focused = high manual cost / highest quality;
schema-focused = medium cost, no object links; ALADIN = minimal cost at
moderate quality loss. The bench prints cost (manual actions) and the
achieved link coverage per approach on the same scenario, and benchmarks
ALADIN's end-to-end integration (the "minimal cost" cell).
"""

from repro.eval import format_table, integrate_scenario, run_baselines
from benchmarks.conftest import build_noisy_scenario


def test_table1_spectrum(benchmark):
    scenario = build_noisy_scenario(seed=310)

    aladin = benchmark.pedantic(
        lambda: integrate_scenario(scenario), iterations=1, rounds=1
    )
    outcomes = run_baselines(scenario, aladin)
    print()
    print("Table 1 (quantified): spectrum of integration approaches")
    print(
        format_table(
            [
                "approach",
                "manual actions",
                "explicit-link recall",
                "implicit links",
                "duplicates",
                "structured queries",
            ],
            [o.row() for o in outcomes],
        )
    )
    by_name = {o.approach: o for o in outcomes}
    # Shape assertions from the paper's Table 1.
    assert by_name["ALADIN"].manual_actions < by_name["data-focused"].manual_actions
    assert (
        by_name["ALADIN"].manual_actions
        < by_name["schema-focused (mediator)"].manual_actions
    )
    assert by_name["ALADIN"].manual_actions <= by_name["SRS-like"].manual_actions
    assert by_name["ALADIN"].explicit_link_recall >= 0.75
    assert by_name["ALADIN"].implicit_links and by_name["ALADIN"].duplicates_flagged
