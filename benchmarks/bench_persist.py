"""Persistence — cold import vs. warm open, plus the churn/compaction loop.

The warm-start contract of the persist subsystem: reopening the E6
scalability corpus from a snapshot must be at least 5x faster than
integrating it from raw text, and must execute zero discovery, linking,
or index-build work (asserted through the engine, cache, and index
counters).

The lifecycle contract of the maintenance layer: after a churn loop of
add/update/remove maintenance (the DELETE-then-rewrite checkpoints that
only ever grow the file), ``compact()`` must reclaim at least half of
the churn bloat, and a warm open of the compacted snapshot must be
byte-identical to one of the pre-compaction snapshot. File sizes and
compaction time are recorded to ``BENCH_persist.json`` at the repo root
so the committed baseline tracks the code.
"""

import json
import os
import time

from repro.core import Aladin, AladinConfig
from repro.eval import format_table
from repro.synth import ScenarioConfig, UniverseConfig, build_scenario

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_persist.json")


def e6_corpus():
    """The E6 incremental-addition corpus (same universe as bench_e6)."""
    return build_scenario(
        ScenarioConfig(
            seed=450,
            universe=UniverseConfig(
                n_families=8, members_per_family=3, n_go_terms=24,
                n_diseases=10, n_interactions=15, seed=450,
            ),
        )
    )


def cold_integrate(scenario) -> Aladin:
    aladin = Aladin(AladinConfig())
    for source in scenario.sources:
        aladin.add_source(
            source.name,
            source.facts.format_name,
            source.text,
            **source.facts.import_options,
        )
    aladin.search_engine()  # the index is part of the integrated state
    return aladin


def test_persist_cold_vs_warm(benchmark, tmp_path):
    scenario = e6_corpus()
    started = time.perf_counter()
    aladin = cold_integrate(scenario)
    cold_seconds = time.perf_counter() - started

    snapshot_path = tmp_path / "e6.snapshot"
    started = time.perf_counter()
    aladin.save(snapshot_path)
    save_seconds = time.perf_counter() - started

    # Eager opens pinned explicitly: this benchmark measures the cost of
    # materializing the whole state (bench_lazy.py covers the lazy path).
    started = time.perf_counter()
    warm = Aladin.open(snapshot_path, lazy=False)
    warm_seconds = time.perf_counter() - started
    benchmark.pedantic(
        lambda: Aladin.open(snapshot_path, lazy=False), iterations=1, rounds=3
    )

    print()
    print("Persistence: cold integrate vs warm open (E6 corpus)")
    print(
        format_table(
            ["phase", "ms"],
            [
                ["cold import-and-integrate", f"{cold_seconds * 1000:.0f}"],
                ["snapshot save", f"{save_seconds * 1000:.0f}"],
                ["warm open", f"{warm_seconds * 1000:.1f}"],
                ["speedup", f"{cold_seconds / warm_seconds:.0f}x"],
            ],
        )
    )

    # Warm start reproduces the integrated state...
    assert warm.source_names() == aladin.source_names()
    assert len(warm.repository.object_links()) == len(aladin.repository.object_links())
    assert len(warm._index) == len(aladin._index)
    # ...at least 5x faster (acceptance criterion; the recorded figure
    # lives in BENCH_persist.json's "speedup" field)...
    assert warm_seconds * 5 <= cold_seconds, (
        f"warm open {warm_seconds:.3f}s not 5x faster than cold {cold_seconds:.3f}s"
    )
    # ...with zero discovery / linking / index-build work on open.
    assert warm._engine.registrations == 0
    assert warm._engine.comparisons_made == 0
    assert warm._index.pages_indexed == 0
    for name in warm.source_names():
        assert warm.database(name).column_cache_stats()["misses"] == 0

    # ------------------------------------------------------------------
    # churn loop -> compaction: the snapshot lifecycle half
    # ------------------------------------------------------------------
    aladin.config.persist.auto_compact = False  # measure one explicit run
    store = aladin._store
    bytes_after_save = store.file_stats()["total_bytes"]

    extra = scenario.sources[0]
    first_name = aladin.source_names()[0]
    first_text = aladin._raw_inputs[first_name][1]
    churn_cycles = 3
    started = time.perf_counter()
    for _ in range(churn_cycles):
        aladin.add_source(
            "churn_extra",
            extra.facts.format_name,
            extra.text,
            **extra.facts.import_options,
        )
        aladin.update_source(first_name, first_text)  # below threshold
        aladin.remove_source("churn_extra")
    churn_seconds = time.perf_counter() - started
    bytes_after_churn = store.file_stats()["total_bytes"]
    churn_bloat = bytes_after_churn - bytes_after_save

    pre_compact = Aladin.open(snapshot_path)
    pre_sources = pre_compact.source_names()
    pre_links = len(pre_compact.repository.object_links())
    pre_index = len(pre_compact._index)
    pre_hits = [
        (h.source, h.accession, round(h.score, 12))
        for h in pre_compact.search_engine().search("kinase", top_k=50)
    ]
    pre_compact.detach_store()

    compaction = aladin.compact()
    bytes_after_compact = store.file_stats()["total_bytes"]
    reclaimed = bytes_after_churn - bytes_after_compact

    post_compact = Aladin.open(snapshot_path)
    post_hits = [
        (h.source, h.accession, round(h.score, 12))
        for h in post_compact.search_engine().search("kinase", top_k=50)
    ]
    print()
    print("Snapshot lifecycle: churn loop -> compaction")
    print(
        format_table(
            ["phase", "bytes"],
            [
                ["after save", f"{bytes_after_save}"],
                [f"after churn x{churn_cycles}", f"{bytes_after_churn}"],
                ["after compact", f"{bytes_after_compact}"],
                ["reclaimed", f"{reclaimed} ({reclaimed / max(churn_bloat, 1):.0%} of bloat)"],
                ["compaction ms", f"{compaction.seconds * 1000:.0f}"],
            ],
        )
    )

    # Acceptance: >= 50% of the churn bloat reclaimed...
    assert churn_bloat > 0, "the churn loop must actually grow the file"
    assert reclaimed >= 0.5 * churn_bloat, (
        f"compaction reclaimed {reclaimed} of {churn_bloat} churn bytes"
    )
    # ...and the compacted snapshot warm-opens byte-identically.
    assert post_compact.source_names() == pre_sources
    assert len(post_compact.repository.object_links()) == pre_links
    assert len(post_compact._index) == pre_index
    assert post_hits == pre_hits
    assert post_compact._engine.registrations == 0
    post_compact.detach_store()
    aladin.close()

    with open(RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "benchmark": "benchmarks/bench_persist.py",
                "command": (
                    "PYTHONPATH=src python -m pytest "
                    "benchmarks/bench_persist.py -q -s"
                ),
                "corpus": "E6 scalability corpus (seed 450, 8 families x 3)",
                "machine_note": (
                    "container, single run; expect ~10% run-to-run noise"
                ),
                "cold_integrate_seconds": round(cold_seconds, 3),
                "snapshot_save_seconds": round(save_seconds, 3),
                "warm_open_seconds": round(warm_seconds, 4),
                "speedup": round(cold_seconds / warm_seconds, 1),
                "churn_cycles": churn_cycles,
                "churn_seconds": round(churn_seconds, 3),
                "file_bytes_after_save": bytes_after_save,
                "file_bytes_after_churn": bytes_after_churn,
                "file_bytes_after_compact": bytes_after_compact,
                "compaction_seconds": round(compaction.seconds, 4),
                "churn_bloat_bytes": churn_bloat,
                "reclaimed_bytes": reclaimed,
                "reclaimed_fraction_of_bloat": round(
                    reclaimed / max(churn_bloat, 1), 3
                ),
                "acceptance": "warm open >= 5x faster, zero discovery/"
                              "linking/index-build counters on open; "
                              "compaction reclaims >= 50% of churn bloat "
                              "with a byte-identical warm open",
            },
            fh,
            indent=2,
        )
        fh.write("\n")
