"""E4 — precision/recall of duplicate detection under value noise.

Sweeps typo rates in the textual annotations of the two overlapping
protein sources. Shape: graceful degradation of F1 with noise, duplicates
flagged (never merged), conflicts counted.
"""

from repro.duplicates import DuplicateDetector, find_conflicts
from repro.eval import evaluate_duplicates, format_table, integrate_scenario
from benchmarks.conftest import build_noisy_scenario


def test_e4_duplicate_pr(benchmark):
    sweeps = [("clean", 0.0), ("typos 20%", 0.2), ("typos 50%", 0.5)]
    scenarios = [
        (label, build_noisy_scenario(seed=430 + i, typo=typo,
                                     include=("swissprot", "pir", "go")))
        for i, (label, typo) in enumerate(sweeps)
    ]

    benchmark.pedantic(
        lambda: integrate_scenario(scenarios[0][1]), iterations=1, rounds=1
    )

    rows = []
    f1_by_label = {}
    for label, scenario in scenarios:
        aladin = integrate_scenario(scenario)
        prf = evaluate_duplicates(scenario, aladin).metric("duplicates")
        f1_by_label[label] = prf.f1
        # Conflicts among flagged duplicate pairs (Section 4.5).
        conflicts = 0
        browser = aladin.browser()
        for link in aladin.repository.object_links(kind="duplicate")[:30]:
            view = browser.visit(link.source_a, link.accession_a)
            conflicts += len(view.conflicts)
        rows.append(
            [
                label,
                len(scenario.gold.duplicate_pairs()),
                prf.true_positives,
                f"{prf.precision:.2f}",
                f"{prf.recall:.2f}",
                f"{prf.f1:.2f}",
                conflicts,
            ]
        )
    print()
    print("E4: duplicate detection under annotation noise")
    print(
        format_table(
            ["noise", "gold dups", "tp", "precision", "recall", "f1", "conflicts"],
            rows,
        )
    )
    assert f1_by_label["clean"] >= 0.7
    # Graceful (not catastrophic) degradation.
    assert f1_by_label["typos 50%"] >= 0.3
