"""E7 — error propagation across pipeline steps (Section 6.2).

"Errors in earlier steps propagate and might influence the quality of
later results. For instance, incorrectly identifying the primary or
secondary relations leads to incorrect targets for the link discovery."

Two controlled degradations:
* contiguous per-table surrogate ids (the degenerate parser style) inflate
  accidental inclusion dependencies — step 2/3 errors;
* numeric OMIM accessions defeat the accession heuristic — a step 2 miss
  that must surface as lost links in step 4.
"""

from repro.core import Aladin, AladinConfig
from repro.dataimport import registry
from repro.discovery import discover_structure
from repro.eval import evaluate_crossref_links, format_table, integrate_scenario
from benchmarks.conftest import build_noisy_scenario
from repro.synth import ScenarioConfig, build_scenario
from benchmarks.conftest import small_universe


def _integrate(scenario, contiguous_ids: bool):
    aladin = Aladin(AladinConfig())
    for source in scenario.sources:
        importer = registry.create(
            source.facts.format_name, source.name, declare_constraints=False
        )
        importer.contiguous_ids = contiguous_ids
        for key, value in source.facts.import_options.items():
            setattr(importer, key, value)
        database = importer.import_text(source.text).database
        aladin.add_database(database)
    return aladin


def test_e7_error_propagation(benchmark):
    scenario = build_noisy_scenario(seed=460)
    numeric_scenario = build_scenario(
        ScenarioConfig(seed=460, universe=small_universe(460),
                       omim_numeric_accessions=True)
    )

    aladin_clean = benchmark.pedantic(
        lambda: _integrate(scenario, contiguous_ids=False), iterations=1, rounds=1
    )
    aladin_contiguous = _integrate(scenario, contiguous_ids=True)
    aladin_numeric = integrate_scenario(numeric_scenario)

    rows = []
    settings = [
        ("global ids (default)", scenario, aladin_clean),
        ("contiguous per-table ids", scenario, aladin_contiguous),
        ("numeric OMIM accessions", numeric_scenario, aladin_numeric),
    ]
    f1 = {}
    primary_hits = {}
    for label, scen, aladin in settings:
        hits = sum(
            aladin.repository.structure(name).primary_relation
            == scen.gold.primary_relation(name)
            for name in aladin.source_names()
        )
        prf = evaluate_crossref_links(scen, aladin).metric("object_links")
        f1[label] = prf.f1
        primary_hits[label] = hits
        rows.append(
            [
                label,
                f"{hits}/{len(aladin.source_names())}",
                f"{prf.precision:.2f}",
                f"{prf.recall:.2f}",
                f"{prf.f1:.2f}",
            ]
        )
    print()
    print("E7: upstream errors propagate into link quality")
    print(format_table(
        ["setting", "primary correct", "xref precision", "xref recall", "xref f1"],
        rows,
    ))
    # Monotone propagation: degraded step-2 inputs cannot improve step 4.
    assert f1["contiguous per-table ids"] <= f1["global ids (default)"] + 1e-9
    assert f1["numeric OMIM accessions"] <= f1["global ids (default)"] + 1e-9
    # The numeric-accession probe must specifically lose the omim links.
    assert primary_hits["numeric OMIM accessions"] <= primary_hits["global ids (default)"]
