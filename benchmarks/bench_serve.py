"""Serving layer — concurrent throughput and tail latency over a snapshot.

The serving contract of PR 9: an `AsyncQueryService` attached to a
read-only snapshot must absorb hundreds of concurrent search/browse
clients, answer every request (no rejects below the admission bound),
and drain cleanly on stop. This bench hammers a running service with
``CONCURRENT_CLIENTS`` simultaneous connections across a mixed
search/browse workload — one cold pass (cache off) and one warm pass
(cache on) — and records throughput and p50/p95/p99 per-request latency
to ``BENCH_serve.json`` at the repo root so the committed baseline
tracks the code.
"""

import asyncio
import json
import os
import time

from repro.core import Aladin, AladinConfig
from repro.eval import format_table
from repro.serve import AsyncQueryService, ServeConfig
from repro.synth import ScenarioConfig, UniverseConfig, build_scenario

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_serve.json")

CONCURRENT_CLIENTS = 200
ROUNDS = 3  # per pass: total requests = CONCURRENT_CLIENTS * ROUNDS


def build_snapshot(tmp_path) -> str:
    scenario = build_scenario(
        ScenarioConfig(
            seed=320,
            universe=UniverseConfig(
                n_families=10, members_per_family=4, n_go_terms=30,
                n_diseases=12, n_interactions=25, seed=320,
            ),
        )
    )
    aladin = Aladin(AladinConfig())
    for source in scenario.sources:
        aladin.add_source(
            source.name,
            source.facts.format_name,
            source.text,
            **source.facts.import_options,
        )
    aladin.search_engine()
    path = str(tmp_path / "bench.snapshot")
    aladin.save(path)
    aladin.close()
    return path


def workload_targets(snapshot_path):
    """A mixed search/browse target list, derived from the data itself."""
    aladin = Aladin.open(snapshot_path, read_only=True, lazy=True)
    try:
        hits = aladin.search_engine().search("protein", top_k=20)
        targets = [f"/search?q=protein&top_k={k}" for k in range(1, 11)]
        targets += [f"/search?q={word}&top_k=10" for word in
                    ("kinase", "binding", "nucleus", "family", "transport")]
        targets += [
            f"/browse?source={hit.source}&accession={hit.accession}"
            for hit in hits[:10]
        ]
        return targets
    finally:
        aladin.close()


async def _one_request(port, target, latencies):
    started = time.perf_counter()
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(
            f"GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n".encode("ascii")
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    latencies.append(time.perf_counter() - started)
    status = int(raw.split(b" ", 2)[1])
    assert status == 200, raw[:200]


def _percentile(values, q):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


async def _hammer(service, targets):
    """ROUNDS waves of CONCURRENT_CLIENTS simultaneous requests."""
    latencies = []
    started = time.perf_counter()
    for round_index in range(ROUNDS):
        await asyncio.gather(
            *(
                _one_request(
                    service.port,
                    targets[(round_index + i) % len(targets)],
                    latencies,
                )
                for i in range(CONCURRENT_CLIENTS)
            )
        )
    elapsed = time.perf_counter() - started
    return {
        "requests": len(latencies),
        "seconds": round(elapsed, 4),
        "throughput_rps": round(len(latencies) / elapsed, 1),
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 2),
        "p95_ms": round(_percentile(latencies, 0.95) * 1000, 2),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000, 2),
    }


async def run_pass(snapshot_path, targets, cache_entries):
    service = AsyncQueryService(
        snapshot_path,
        ServeConfig(
            port=0,
            max_concurrency=64,
            max_pending=CONCURRENT_CLIENTS * 2,
            cache_entries=cache_entries,
        ),
    )
    await service.start()
    try:
        stats = await _hammer(service, targets)
        stats["rejected"] = service.requests_rejected
        stats["cache"] = service.cache.stats()
        return stats, await service.stop()
    except BaseException:
        await service.stop()
        raise


def test_serve_throughput_and_tail_latency(tmp_path):
    snapshot_path = build_snapshot(tmp_path)
    targets = workload_targets(snapshot_path)

    cold, cold_drained = asyncio.run(run_pass(snapshot_path, targets, 0))
    warm, warm_drained = asyncio.run(run_pass(snapshot_path, targets, 1024))

    # The serving contract: nothing rejected below the admission bound,
    # a clean drain on stop, and the cache actually absorbing the warm
    # pass (every target repeats after the first wave).
    assert cold["rejected"] == 0 and warm["rejected"] == 0
    assert cold_drained and warm_drained
    assert warm["cache"]["hits"] > 0
    assert warm["throughput_rps"] > cold["throughput_rps"]

    rows = [
        ("cold (cache off)", cold["throughput_rps"], cold["p50_ms"],
         cold["p95_ms"], cold["p99_ms"]),
        ("warm (cache on)", warm["throughput_rps"], warm["p50_ms"],
         warm["p95_ms"], warm["p99_ms"]),
    ]
    print()
    print(
        format_table(
            ["pass", "req/s", "p50 ms", "p95 ms", "p99 ms"],
            [[str(cell) for cell in row] for row in rows],
        )
    )

    result = {
        "benchmark": "benchmarks/bench_serve.py",
        "command": "PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -q -s",
        "workload": (
            f"{CONCURRENT_CLIENTS} concurrent clients x {ROUNDS} rounds, "
            f"{len(targets)}-target mixed search/browse over a "
            "10-family snapshot"
        ),
        "machine_note": "container, single run; expect ~10% run-to-run noise",
        "concurrent_clients": CONCURRENT_CLIENTS,
        "cold": cold,
        "warm": warm,
        "acceptance": (
            "no rejects below the admission bound, clean drain on stop, "
            "warm (cached) pass beats the cold pass on throughput"
        ),
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=False)
        fh.write("\n")
