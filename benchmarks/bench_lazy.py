"""Lazy open — manifest-only startup vs. materializing every source.

The lazy-hydration contract of the persist subsystem (PR 6): opening a
many-source snapshot with ``lazy=True`` reads only the manifest, so its
latency is O(manifest) and must be at least 10x below an eager open of
the same file on a >= 20-source corpus. Touching one source must fault
in exactly that source — a BM25 search and a pushed-down SQL filter
fault in none at all — counter-verified through ``hydration_stats``.
Results are recorded to ``BENCH_lazy.json`` at the repo root so the
committed baseline tracks the code.
"""

import json
import os
import time

from repro.core import Aladin, AladinConfig
from repro.eval import format_table
from repro.synth import ScenarioConfig, UniverseConfig, build_scenario

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_lazy.json")

MIN_SOURCES = 20


def wide_corpus() -> Aladin:
    """>= 20 sources: the synth universe replicated under distinct names.

    Duplicate detection is off for the build — this benchmark measures
    open latency, and step 5 over a 20-source corpus would dominate the
    setup without changing what is being measured.
    """
    config = AladinConfig()
    config.detect_duplicates = False
    aladin = Aladin(config)
    replica = 0
    while len(aladin.source_names()) < MIN_SOURCES:
        scenario = build_scenario(
            ScenarioConfig(
                seed=500 + replica,
                universe=UniverseConfig(
                    n_families=14, members_per_family=4, n_go_terms=40,
                    n_diseases=16, n_interactions=40, seed=500 + replica,
                ),
            )
        )
        for source in scenario.sources:
            aladin.add_source(
                f"{source.name}_{replica}",
                source.facts.format_name,
                source.text,
                **source.facts.import_options,
            )
        replica += 1
    aladin.search_engine()  # the index is part of the integrated state
    return aladin


def test_lazy_vs_eager_open(benchmark, tmp_path):
    aladin = wide_corpus()
    n_sources = len(aladin.source_names())
    assert n_sources >= MIN_SOURCES

    snapshot_path = tmp_path / "wide.snapshot"
    aladin.save(snapshot_path)
    aladin.detach_store()

    started = time.perf_counter()
    eager = Aladin.open(snapshot_path, read_only=True, lazy=False)
    eager_seconds = time.perf_counter() - started
    eager.close()

    started = time.perf_counter()
    lazy = Aladin.open(snapshot_path, read_only=True, lazy=True)
    lazy_seconds = time.perf_counter() - started
    benchmark.pedantic(
        lambda: Aladin.open(snapshot_path, read_only=True, lazy=True).close(),
        iterations=1,
        rounds=5,
    )

    # A BM25 search streams postings from the snapshot: zero hydrations.
    hits = lazy.search_engine().search("kinase", top_k=10)
    assert hits, "the corpus must produce search hits"
    assert lazy.hydration_stats()["hydrated"] == []

    # A single-table SQL equality filter is answered by pushdown: still
    # zero hydrations, and the pushdown counter proves the index served.
    probe_source = lazy.source_names()[0]
    attr = lazy.repository.structure(probe_source).primary_accession()
    statement = f"SELECT * FROM {attr.table} LIMIT 1"
    probe_rows = lazy.query_engine().sql(probe_source, statement).rows
    assert probe_rows
    stats = lazy.hydration_stats()
    assert stats["hydrated"] == []
    assert stats["per_source"][probe_source]["pushdown_hits"] >= 1

    # Browsing one page faults in exactly that one source.
    top = hits[0]
    page = lazy.web.page(top.source, top.accession)
    assert page is not None
    stats = lazy.hydration_stats()
    assert stats["hydrated"] == [top.source], (
        f"browse hydrated {stats['hydrated']}, expected [{top.source!r}]"
    )
    resident_bytes = stats["resident_bytes"]
    lazy.close()

    speedup = eager_seconds / lazy_seconds
    print()
    print(f"Lazy vs eager open ({n_sources}-source corpus)")
    print(
        format_table(
            ["phase", "value"],
            [
                ["eager open", f"{eager_seconds * 1000:.1f} ms"],
                ["lazy open", f"{lazy_seconds * 1000:.2f} ms"],
                ["speedup", f"{speedup:.0f}x"],
                ["hydrated after search", "0 sources"],
                ["hydrated after SQL filter", "0 sources (pushdown)"],
                ["hydrated after browse", f"1 source ({resident_bytes} bytes)"],
            ],
        )
    )

    # Acceptance: manifest-only open is at least 10x under the eager one.
    assert lazy_seconds * 10 <= eager_seconds, (
        f"lazy open {lazy_seconds:.4f}s not 10x faster "
        f"than eager {eager_seconds:.4f}s"
    )

    with open(RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "benchmark": "benchmarks/bench_lazy.py",
                "command": (
                    "PYTHONPATH=src python -m pytest "
                    "benchmarks/bench_lazy.py -q -s"
                ),
                "corpus": (
                    f"{n_sources} sources (synth universe replicated, "
                    "seeds 500+, duplicates off for the build)"
                ),
                "machine_note": (
                    "container, single run; expect ~10% run-to-run noise"
                ),
                "n_sources": n_sources,
                "eager_open_seconds": round(eager_seconds, 4),
                "lazy_open_seconds": round(lazy_seconds, 5),
                "speedup": round(speedup, 1),
                "hydrated_after_search": 0,
                "hydrated_after_sql_filter": 0,
                "hydrated_after_browse": 1,
                "browse_resident_bytes": resident_bytes,
                "acceptance": (
                    "lazy open >= 10x faster than eager on a >= 20-source "
                    "corpus; search and pushed-down SQL hydrate 0 sources, "
                    "a browse hydrates exactly 1 (counter-verified)"
                ),
            },
            fh,
            indent=2,
        )
        fh.write("\n")
