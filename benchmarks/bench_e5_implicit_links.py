"""E5 — implicit links: the BLAST-like search vs. exact Smith-Waterman.

The engineering claim inherited from [AMS+97]: the seeded heuristic must
be much faster than all-pairs exact alignment at a small recall cost.
Also reports the text/name/ontology channels' yield.
"""

import random
import time

from repro.linking import BlastIndex, smith_waterman
from repro.eval import format_table, integrate_scenario
from repro.synth import mutate_sequence, random_protein
from benchmarks.conftest import build_noisy_scenario


def _family_benchmark_data(families=8, members=3, length=200, seed=440):
    rng = random.Random(seed)
    sequences = []
    labels = []
    for family in range(families):
        ancestor = random_protein(rng, length)
        for _ in range(members):
            sequences.append(mutate_sequence(rng, ancestor, 0.12))
            labels.append(family)
    return sequences, labels


def test_e5_blast_vs_exact(benchmark):
    sequences, labels = _family_benchmark_data()
    truth = {
        (i, j)
        for i in range(len(sequences))
        for j in range(len(sequences))
        if i < j and labels[i] == labels[j]
    }

    def blast_all_pairs():
        index = BlastIndex(k=4)
        for seq in sequences:
            index.add(seq)
        found = set()
        for i, seq in enumerate(sequences):
            for hit in index.search(seq):
                if hit.target_id != i:
                    found.add((min(i, hit.target_id), max(i, hit.target_id)))
        return found

    found_fast = benchmark.pedantic(blast_all_pairs, iterations=1, rounds=3)

    started = time.perf_counter()
    found_exact = set()
    for i in range(len(sequences)):
        for j in range(i + 1, len(sequences)):
            result = smith_waterman(sequences[i], sequences[j])
            if result.identity >= 0.5 and result.aligned_length >= 50:
                found_exact.add((i, j))
    exact_seconds = time.perf_counter() - started

    started = time.perf_counter()
    blast_all_pairs()
    fast_seconds = time.perf_counter() - started

    recall_vs_truth = len(found_fast & truth) / len(truth)
    recall_vs_exact = (
        len(found_fast & found_exact) / len(found_exact) if found_exact else 1.0
    )
    speedup = exact_seconds / max(fast_seconds, 1e-9)
    print()
    print("E5: BLAST-like heuristic vs exact Smith-Waterman (all pairs)")
    print(
        format_table(
            ["method", "seconds", "homolog recall", "precision"],
            [
                [
                    "Smith-Waterman (exact)",
                    f"{exact_seconds:.2f}",
                    f"{len(found_exact & truth) / len(truth):.2f}",
                    f"{len(found_exact & truth) / max(len(found_exact), 1):.2f}",
                ],
                [
                    "BLAST-like (seeded)",
                    f"{fast_seconds:.2f}",
                    f"{recall_vs_truth:.2f}",
                    f"{len(found_fast & truth) / max(len(found_fast), 1):.2f}",
                ],
            ],
        )
    )
    print(f"\nspeedup: {speedup:.1f}x; recall vs exact baseline: {recall_vs_exact:.2f}")
    # Shape: who wins and by what factor.
    assert speedup >= 5.0
    assert recall_vs_exact >= 0.8
    assert recall_vs_truth >= 0.75


def test_e5_other_channels_yield(benchmark):
    scenario = build_noisy_scenario(seed=441)
    aladin = benchmark.pedantic(
        lambda: integrate_scenario(scenario), iterations=1, rounds=1
    )
    counts = aladin.repository.link_counts_by_kind()
    rows = [[kind, counts.get(kind, 0)] for kind in
            ("crossref", "sequence", "text", "name", "ontology", "duplicate")]
    print()
    print("E5b: links discovered per channel (full scenario)")
    print(format_table(["channel", "object links"], rows))
    assert counts.get("sequence", 0) > 0
    assert counts.get("text", 0) > 0
    assert counts.get("ontology", 0) > 0
