"""E8 — multiple overlapping link sets and evidence ranking (Section 5).

"There exist at least five different sets of links from Swiss-Prot to PDB
[Mar04]. These sets overlap, but also differ to a considerable degree.
Ranking of results based on the strength of evidence is thus a very
important feature." Our channels (crossref, sequence, text, name,
ontology) play the role of the five link sets: the bench measures their
pairwise overlap between the protein sources and Swiss-Prot↔PDB, and
verifies that path/evidence ranking puts truly linked objects above
incidentally linked ones.
"""

from collections import defaultdict

from repro.eval import format_table
from benchmarks.conftest import build_noisy_scenario
from repro.eval import integrate_scenario


def test_e8_linkset_overlap_and_ranking(benchmark):
    scenario = build_noisy_scenario(seed=470)
    aladin = benchmark.pedantic(
        lambda: integrate_scenario(scenario), iterations=1, rounds=1
    )

    # Pairwise overlap of the link sets between swissprot and pir.
    sets = defaultdict(set)
    for link in aladin.repository.object_links():
        if {link.source_a, link.source_b} == {"swissprot", "pir"}:
            normalized = link.normalized()
            sets[link.kind].add(
                (normalized.accession_a, normalized.accession_b)
            )
    kinds = sorted(sets)
    rows = []
    for kind_a in kinds:
        row = [kind_a, len(sets[kind_a])]
        for kind_b in kinds:
            union = sets[kind_a] | sets[kind_b]
            overlap = len(sets[kind_a] & sets[kind_b]) / len(union) if union else 0.0
            row.append(f"{overlap:.2f}")
        rows.append(row)
    print()
    print("E8: link-set sizes and pairwise Jaccard overlap (swissprot~pir)")
    print(format_table(["kind", "links"] + kinds, rows))
    assert len(kinds) >= 3, "multiple independent link sets expected"

    # Evidence ranking: gold duplicates (supported by several channels)
    # must outrank non-gold text-only pairs.
    ranker = aladin.ranker(max_length=1)
    gold_pairs = {
        ((f.source_a, f.accession_a), (f.source_b, f.accession_b))
        for f in scenario.gold.duplicate_pairs()
    }
    gold_scores = [ranker.score(a, b) for a, b in list(gold_pairs)[:15]]
    nongold_scores = []
    for link in aladin.repository.object_links(kind="text")[:30]:
        a = (link.source_a, link.accession_a)
        b = (link.source_b, link.accession_b)
        if (a, b) not in gold_pairs and (b, a) not in gold_pairs:
            nongold_scores.append(ranker.score(a, b))
    mean_gold = sum(gold_scores) / len(gold_scores)
    mean_nongold = sum(nongold_scores) / max(len(nongold_scores), 1)
    print(f"\nmean evidence score: true duplicates={mean_gold:.3f}, "
          f"incidental text pairs={mean_nongold:.3f}")
    assert mean_gold > mean_nongold
