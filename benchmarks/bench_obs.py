"""Observability overhead + the measurement-driven backend's payoff.

Three claims, each measured:

1. **Disabled observability is free.** The instrumentation seam on the
   hot path is two attribute reads and ``is None`` checks per fan-out
   (metrics *and* tracer share the one short-circuit); the seam's cost
   is measured directly against the raw uninstrumented inner path
   (``_map_impl``) and must stay under 1% of a realistic fan-out's
   runtime.
2. **Enabled observability is cheap.** A full ``integrate_many`` with
   the registry, event bus, tracer, and per-stage timing live is
   compared against the same run with observability off (min-of-N wall
   clock).  The traced run's span volume is recorded so the overhead
   number has a denominator.
3. **The auto backend never loses badly.** A calibrated
   ``backend="auto"`` run must not be slower than the *worst* fixed
   backend — by construction it converges on the better arm, so landing
   near the best and never at the worst is the acceptance bar.

Full runs write ``BENCH_obs.json`` at the repo root;
``REPRO_BENCH_OBS_SMALL=1`` keeps the committed baseline untouched.
"""

import json
import os
import statistics
import time

from repro.core import Aladin, AladinConfig
from repro.eval import format_table
from repro.exec import ExecConfig, SerialExecutor
from repro.synth import ScenarioConfig, UniverseConfig, build_scenario

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_obs.json")
SMALL = bool(os.environ.get("REPRO_BENCH_OBS_SMALL"))
REPEATS = 2 if SMALL else 3


def corpus():
    return build_scenario(
        ScenarioConfig(
            seed=450,
            include=("swissprot", "pdb", "go"),
            universe=UniverseConfig(n_families=3, members_per_family=2, seed=450),
        )
    )


def source_specs(scenario):
    return [
        (s.name, s.facts.format_name, s.text, s.facts.import_options)
        for s in scenario.sources
    ]


def integrate_once(specs, execution=None, observability=True):
    config = AladinConfig()
    if execution is not None:
        config.execution = execution
    config.observability.enabled = observability
    aladin = Aladin(config)
    started = time.perf_counter()
    aladin.integrate_many(specs)
    seconds = time.perf_counter() - started
    aladin.close()
    return seconds


def best_of(n, fn):
    return min(fn() for _ in range(n))


def trace_stats(specs):
    """Span volume of one fully traced ``integrate_many``: how much tree
    the overhead number buys."""
    config = AladinConfig()
    config.observability.enabled = True
    aladin = Aladin(config)
    aladin.integrate_many(specs)
    traces = aladin.traces()
    spans = sum(len(t["spans"]) for t in traces)
    fanouts = sum(
        1
        for t in traces
        for s in t["spans"]
        if s["name"].startswith("fanout.")
    )
    aladin.close()
    return {"traces": len(traces), "spans": spans, "fanout_spans": fanouts}


def wrapper_overhead_pct():
    """The disabled seam vs. the raw inner path, on one realistic fan-out."""

    def work(_state, text):
        return sum(len(token) for token in text.split())

    items = [f"protein kinase domain structure {i} " * 8 for i in range(64)]
    executor = SerialExecutor(1)
    # The disabled wiring: one short-circuit covers both handles.
    assert executor.metrics is None
    assert executor.tracer is None

    def run_raw():
        started = time.perf_counter()
        for _ in range(200):
            executor._map_impl(work, items, None, None, 1)
        return time.perf_counter() - started

    def run_wrapped():
        started = time.perf_counter()
        for _ in range(200):
            executor.map_ordered(work, items)
        return time.perf_counter() - started

    # The true seam cost is sub-microsecond per fan-out; host noise on
    # one sample is percent-scale, and whichever arm runs *second* in a
    # pair reads consistently slower (frequency ramping). So: sample in
    # adjacent pairs (shared drift state), alternate the order pair by
    # pair (ordering bias cancels), and take the *median* of the paired
    # ratios (robust to the occasional scheduler hiccup either arm
    # catches).
    run_raw(), run_wrapped()  # warm-up
    ratios, raw_samples, wrapped_samples = [], [], []
    for n in range(24):
        if n % 2 == 0:
            raw_seconds = run_raw()
            wrapped_seconds = run_wrapped()
        else:
            wrapped_seconds = run_wrapped()
            raw_seconds = run_raw()
        ratios.append(wrapped_seconds / raw_seconds)
        raw_samples.append(raw_seconds)
        wrapped_samples.append(wrapped_seconds)
    pct = 100.0 * (statistics.median(ratios) - 1.0)
    return pct, min(raw_samples), min(wrapped_samples)


def test_observability_overhead_and_auto_backend():
    specs = source_specs(corpus())

    # 1. The disabled seam, measured at the fan-out boundary.
    seam_pct, seam_raw, seam_wrapped = wrapper_overhead_pct()

    # 2. End-to-end: registry + bus + stage timing live vs. off.
    #    One warm-up run pays the one-time costs (parser imports, GC
    #    ramp), then the two modes alternate so drift hits both equally.
    integrate_once(specs, observability=False)
    off_samples, on_samples = [], []
    for _ in range(REPEATS):
        off_samples.append(integrate_once(specs, observability=False))
        on_samples.append(integrate_once(specs, observability=True))
    disabled, enabled = min(off_samples), min(on_samples)
    enabled_pct = 100.0 * (enabled - disabled) / disabled
    tracing = trace_stats(specs)

    # 3. Auto vs. the fixed backends, alternating for the same reason.
    serial_samples, thread_samples = [], []
    for _ in range(REPEATS):
        serial_samples.append(
            integrate_once(specs, ExecConfig(backend="serial"))
        )
        thread_samples.append(
            integrate_once(specs, ExecConfig(backend="thread", workers=2))
        )
    serial_fixed, thread_fixed = min(serial_samples), min(thread_samples)

    #    Calibrate across four exploration sessions (each integrate_many
    #    contributes one fan-out per batch stage, and MIN_RUNS samples
    #    per arm are needed), then measure fresh calibrated sessions.
    auto_exec = ExecConfig(backend="auto", workers=2, auto_parallel="thread")
    calibration_path = os.path.join(REPO_ROOT, ".bench_obs_calibration.json")
    try:
        for _ in range(4):
            config = AladinConfig()
            config.execution = auto_exec
            warm = Aladin(config)
            if os.path.exists(calibration_path):
                warm.executor.load_calibration(calibration_path)
            warm.integrate_many(specs)
            warm.executor.save_calibration(calibration_path)
            warm.close()

        def calibrated_run():
            run_config = AladinConfig()
            run_config.execution = auto_exec
            aladin = Aladin(run_config)
            aladin.executor.load_calibration(calibration_path)
            started = time.perf_counter()
            aladin.integrate_many(specs)
            seconds = time.perf_counter() - started
            decisions = dict(aladin.executor.decisions)
            aladin.close()
            return seconds, decisions

        timed = [calibrated_run() for _ in range(REPEATS)]
        auto_seconds = min(seconds for seconds, _decisions in timed)
        decisions = timed[0][1]
    finally:
        if os.path.exists(calibration_path):
            os.remove(calibration_path)

    worst_fixed = max(serial_fixed, thread_fixed)
    best_fixed = min(serial_fixed, thread_fixed)

    rows = [
        ["fan-out seam, raw inner path", f"{seam_raw * 1000:.2f} ms", ""],
        ["fan-out seam, disabled wrapper", f"{seam_wrapped * 1000:.2f} ms",
         f"{seam_pct:+.3f}%"],
        ["integrate_many, observability off", f"{disabled:.3f} s", ""],
        ["integrate_many, observability on", f"{enabled:.3f} s",
         f"{enabled_pct:+.2f}%"],
        ["  span trees recorded", str(tracing["traces"]),
         f"{tracing['spans']} spans"],
        ["integrate_many, serial (fixed)", f"{serial_fixed:.3f} s", ""],
        ["integrate_many, thread x2 (fixed)", f"{thread_fixed:.3f} s", ""],
        ["integrate_many, auto (calibrated)", f"{auto_seconds:.3f} s",
         f"vs worst {auto_seconds / worst_fixed:.2f}x"],
    ]
    print()
    print(f"Observability + auto backend ({os.cpu_count()} core(s))")
    print(format_table(["phase", "time", "delta"], rows))
    print(f"auto decisions: {decisions}")

    result = {
        "corpus": f"E6-small universe (seed 450), {len(specs)} sources",
        "effective_cores": os.cpu_count(),
        "disabled_seam_overhead_pct": round(seam_pct, 4),
        "integrate_seconds": {
            "observability_off": round(disabled, 4),
            "observability_on": round(enabled, 4),
            "enabled_overhead_pct": round(enabled_pct, 2),
        },
        "tracing": {
            # The disabled seam measured above guards the tracer too:
            # metrics and tracer share one is-None short-circuit at the
            # fan-out boundary, so seam_pct is the tracer's off cost.
            "disabled_seam_overhead_pct": round(seam_pct, 4),
            "traced_overhead_pct": round(enabled_pct, 2),
            "traces_per_integrate": tracing["traces"],
            "spans_per_integrate": tracing["spans"],
            "fanout_spans_per_integrate": tracing["fanout_spans"],
        },
        "auto_backend_seconds": {
            "serial_fixed": round(serial_fixed, 4),
            "thread_fixed": round(thread_fixed, 4),
            "auto_calibrated": round(auto_seconds, 4),
            "decisions": decisions,
        },
        "notes": (
            "Seam = SerialExecutor.map_ordered with metrics AND tracer "
            "wiring left at None vs. calling the raw _map_impl: median "
            "of 24 order-alternated paired ratios, 200 fan-outs of 64 "
            "items per sample. Integrate rows are min-of-"
            f"{REPEATS} integrate_many wall clocks. The auto row runs a "
            "fresh session on a calibration sidecar recorded by one "
            "exploration run."
        ),
    }
    if not SMALL:
        with open(RESULT_PATH, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
        # Acceptance bars. The seam must be in the noise (<1%); the
        # calibrated auto run must never land at the worst fixed
        # backend (10% margin for timer noise on a shared host).
        assert seam_pct < 1.0, f"disabled seam overhead {seam_pct:.3f}% >= 1%"
        assert auto_seconds <= worst_fixed * 1.10, (
            f"calibrated auto {auto_seconds:.3f}s slower than worst fixed "
            f"backend {worst_fixed:.3f}s"
        )
        assert best_fixed == min(best_fixed, worst_fixed)
