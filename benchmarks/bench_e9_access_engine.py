"""E9 — the access engine: search quality/latency, cross-source queries,
and the microarray browsing scenario (Sections 4.6 and 6.2).

"Typical microarray experiments produce a set of 50-100 genes. Biologists
then manually browse a large number of web sites following hyper links for
each gene. Such browsing, enriched with many more links, reduced
redundancy due to duplicate detection, and the full capability of SQL
queries would be perfectly supported by ALADIN."
"""

import random

from repro.eval import format_table
from benchmarks.conftest import bench_world  # noqa: F401  (fixture)


def test_e9_search_known_item(benchmark, bench_world):
    scenario, aladin = bench_world
    engine = aladin.search_engine()
    proteins = scenario.universe.proteins
    sp_facts = scenario.gold.sources["swissprot"]
    uid_to_acc = sp_facts.uid_to_accession()

    queries = []
    for protein in proteins:
        accession = uid_to_acc.get(protein.uid)
        if accession is not None:
            queries.append((protein.symbol, accession))
    queries = queries[:25]

    def run_queries():
        return [engine.search(symbol, top_k=10, sources=["swissprot"])
                for symbol, _ in queries]

    all_hits = benchmark.pedantic(run_queries, iterations=1, rounds=3)

    hit_at_1 = hit_at_10 = 0
    for (symbol, accession), hits in zip(queries, all_hits):
        found = [h.accession for h in hits]
        if found and found[0] == accession:
            hit_at_1 += 1
        if accession in found:
            hit_at_10 += 1
    print()
    print("E9a: known-item search (query = gene symbol, target = its entry)")
    print(
        format_table(
            ["queries", "hit@1", "hit@10"],
            [[len(queries), f"{hit_at_1 / len(queries):.2f}",
              f"{hit_at_10 / len(queries):.2f}"]],
        )
    )
    assert hit_at_10 / len(queries) >= 0.8


def test_e9_cross_source_query(benchmark, bench_world):
    scenario, aladin = bench_world
    engine = aladin.query_engine()

    def gene_to_structures():
        proteins = engine.select_objects("swissprot", "SELECT * FROM entry")
        return engine.link_join(proteins, "pdb", kinds=["crossref"])

    structures = benchmark.pedantic(gene_to_structures, iterations=1, rounds=3)
    print()
    print(f"E9b: protein->structure link join: {len(structures)} ranked rows")
    assert structures
    certainties = [r.certainty for r in structures]
    assert certainties == sorted(certainties, reverse=True)


def test_e9_microarray_browsing(benchmark, bench_world):
    scenario, aladin = bench_world
    rng = random.Random(480)
    accessions = aladin.web.accessions("swissprot")
    gene_set = rng.sample(accessions, min(18, len(accessions)))
    browser = aladin.browser()

    def browse_gene_set():
        followed = 0
        duplicates_seen = 0
        for accession in gene_set:
            view = browser.visit("swissprot", accession)
            duplicates_seen += len(view.duplicates)
            for link in view.linked[:3]:
                browser.follow(view, link)
                followed += 1
        return followed, duplicates_seen

    followed, duplicates_seen = benchmark.pedantic(browse_gene_set, iterations=1, rounds=2)
    engine = aladin.query_engine()
    rows = engine.select_objects("swissprot", "SELECT * FROM entry")
    pir_rows = engine.select_objects("pir", "SELECT * FROM entry")
    collapsed = engine.collapse_duplicates(rows + pir_rows)
    print()
    print("E9c: microarray browsing scenario")
    print(
        format_table(
            ["genes", "links followed", "duplicates flagged",
             "objects before collapse", "after collapse"],
            [[len(gene_set), followed, duplicates_seen,
              len(rows) + len(pir_rows), len(collapsed)]],
        )
    )
    assert followed > 0
    assert len(collapsed) < len(rows) + len(pir_rows)
