"""E3 — precision/recall of explicit cross-reference discovery.

Sweeps cross-reference corruption (dropped and dangling references) and
reports object-level P/R/F1 of the crossref channel vs. gold. Shape:
high precision throughout; recall bounded by the scop anchor error and
dangling pointers.
"""

from repro.eval import evaluate_crossref_links, format_table, integrate_scenario
from benchmarks.conftest import build_noisy_scenario


def test_e3_crossref_pr(benchmark):
    sweeps = [
        ("clean", 0.0, 0.0),
        ("drop 20%", 0.2, 0.0),
        ("dangling 20%", 0.0, 0.2),
    ]
    scenarios = [
        (label, build_noisy_scenario(seed=420 + i, drop=drop, dangle=dangle))
        for i, (label, drop, dangle) in enumerate(sweeps)
    ]

    def run_clean():
        return integrate_scenario(scenarios[0][1])

    benchmark.pedantic(run_clean, iterations=1, rounds=1)

    rows = []
    clean_f1 = None
    for label, scenario in scenarios:
        aladin = integrate_scenario(scenario)
        prf = evaluate_crossref_links(scenario, aladin).metric("object_links")
        attr = evaluate_crossref_links(scenario, aladin).metric("attribute_links")
        rows.append(
            [
                label,
                len(scenario.gold.xref_links()),
                prf.true_positives,
                f"{prf.precision:.2f}",
                f"{prf.recall:.2f}",
                f"{prf.f1:.2f}",
                f"{attr.recall:.2f}",
            ]
        )
        if label == "clean":
            clean_f1 = prf.f1
            assert prf.precision >= 0.85
            assert prf.recall >= 0.8
    print()
    print("E3: explicit cross-reference discovery under corruption")
    print(
        format_table(
            ["corruption", "gold links", "tp", "precision", "recall", "f1",
             "attr recall"],
            rows,
        )
    )
    assert clean_f1 is not None and clean_f1 >= 0.8
