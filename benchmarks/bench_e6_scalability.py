"""E6 — performance of incremental addition and the pruning ablation.

Section 6.2: adding a source involves heavy computation, but statistics
are per-source and reusable, so the cost of adding the k-th source must
not explode with k; pruning and sampling keep the pair comparisons down.
Reports: per-source addition time vs. k, source-size scaling, and the
pruning on/off ablation (comparisons + link quality).
"""

import time

from repro.core import Aladin, AladinConfig
from repro.eval import evaluate_crossref_links, format_table, integrate_scenario
from repro.linking.model import LinkConfig
from repro.synth import ScenarioConfig, UniverseConfig, build_scenario


def test_e6_incremental_addition(benchmark):
    scenario = build_scenario(
        ScenarioConfig(
            seed=450,
            universe=UniverseConfig(
                n_families=8, members_per_family=3, n_go_terms=24,
                n_diseases=10, n_interactions=15, seed=450,
            ),
        )
    )

    def integrate_with_timings():
        aladin = Aladin(AladinConfig())
        timings = []
        for k, source in enumerate(scenario.sources, start=1):
            started = time.perf_counter()
            aladin.add_source(
                source.name,
                source.facts.format_name,
                source.text,
                **source.facts.import_options,
            )
            timings.append((k, source.name, time.perf_counter() - started))
        return aladin, timings

    aladin, timings = benchmark.pedantic(integrate_with_timings, iterations=1, rounds=1)
    rows = [[k, name, f"{seconds * 1000:.0f}"] for k, name, seconds in timings]
    print()
    print("E6a: cost of adding the k-th source")
    print(format_table(["k", "source", "ms"], rows))
    assert len(timings) == len(scenario.sources)


def test_e6_source_size_scaling(benchmark):
    sizes = [(4, 2), (8, 3), (12, 4)]
    rows = []
    for families, members in sizes:
        scenario = build_scenario(
            ScenarioConfig(
                seed=451,
                include=("swissprot", "pdb"),
                universe=UniverseConfig(
                    n_families=families, members_per_family=members, seed=451
                ),
            )
        )
        started = time.perf_counter()
        aladin = integrate_scenario(scenario)
        seconds = time.perf_counter() - started
        rows.append(
            [
                families * members,
                aladin.database("swissprot").total_rows(),
                f"{seconds * 1000:.0f}",
            ]
        )
    benchmark.pedantic(
        lambda: integrate_scenario(
            build_scenario(
                ScenarioConfig(
                    seed=451,
                    include=("swissprot", "pdb"),
                    universe=UniverseConfig(n_families=8, members_per_family=3, seed=451),
                )
            )
        ),
        iterations=1,
        rounds=1,
    )
    print()
    print("E6b: integration time vs source size")
    print(format_table(["proteins", "swissprot rows", "ms"], rows))


def test_e6_pruning_ablation(benchmark):
    scenario = build_scenario(
        ScenarioConfig(
            seed=452,
            include=("swissprot", "pdb", "go"),
            universe=UniverseConfig(n_families=6, members_per_family=3, seed=452),
        )
    )
    configs = [
        ("pruning on (default)", LinkConfig()),
        (
            "pruning off",
            LinkConfig(min_distinct_values=0, exclude_numeric_sources=False,
                       min_match_fraction=0.0, min_absolute_matches=1),
        ),
    ]
    rows = []
    f1_scores = {}
    for label, link_config in configs:
        config = AladinConfig()
        config.linking = link_config
        started = time.perf_counter()
        aladin = integrate_scenario(scenario, config)
        seconds = time.perf_counter() - started
        prf = evaluate_crossref_links(scenario, aladin).metric("object_links")
        f1_scores[label] = prf.f1
        rows.append(
            [
                label,
                f"{seconds * 1000:.0f}",
                len(aladin.repository.object_links(kind='crossref')),
                f"{prf.precision:.2f}",
                f"{prf.recall:.2f}",
            ]
        )
    benchmark.pedantic(
        lambda: integrate_scenario(scenario, AladinConfig()), iterations=1, rounds=1
    )
    print()
    print("E6c: statistics-based pruning ablation (crossref channel)")
    print(format_table(["configuration", "ms", "crossref links", "precision", "recall"], rows))
    # Pruning must not cost recall on clean data, and must not lower precision.
    assert f1_scores["pruning on (default)"] >= f1_scores["pruning off"] - 0.05
