"""F1/F2 — Figures 1 & 2: the five-step integration pipeline trace.

Prints per-step wall time and artifact counts for every source added, and
benchmarks the incremental addition of the final source (the operation
Figure 2 depicts).
"""

from repro.core import Aladin, AladinConfig
from repro.eval import format_table
from benchmarks.conftest import build_noisy_scenario


def test_figure2_pipeline_trace(benchmark):
    scenario = build_noisy_scenario(seed=320)
    sources = scenario.sources

    def integrate_all_but_last():
        aladin = Aladin(AladinConfig())
        for source in sources[:-1]:
            aladin.add_source(
                source.name,
                source.facts.format_name,
                source.text,
                **source.facts.import_options,
            )
        return aladin

    aladin = integrate_all_but_last()
    last = sources[-1]

    def add_last():
        fresh = integrate_all_but_last()
        return fresh.add_source(
            last.name, last.facts.format_name, last.text, **last.facts.import_options
        )

    benchmark.pedantic(add_last, iterations=1, rounds=3)
    # One clean full run for the printed trace.
    aladin = Aladin(AladinConfig())
    rows = []
    for source in sources:
        report = aladin.add_source(
            source.name,
            source.facts.format_name,
            source.text,
            **source.facts.import_options,
        )
        for step in report.steps:
            rows.append(
                [
                    source.name,
                    step.step,
                    f"{step.seconds * 1000:.1f}",
                    ", ".join(f"{k}={v}" for k, v in sorted(step.counts.items())),
                ]
            )
    print()
    print("Figure 2: integration steps per source (5-step pipeline)")
    print(format_table(["source", "step", "ms", "artifacts"], rows))
    print(f"\nwarehouse after integration: {aladin.summary()}")
    step_names = [s.step for s in aladin.reports[0].steps]
    assert step_names == [
        "import", "discover_structure", "link_discovery", "duplicate_detection",
    ]
    assert len(aladin.reports) == len(sources)
