"""ALADIN — (Almost) Hands-Off Information Integration for the Life Sciences.

Reproduction of Leser & Naumann, CIDR 2005. The top-level package exposes
the :class:`repro.core.Aladin` system; subpackages hold the substrates:

* :mod:`repro.relational` — in-memory relational substrate with a columnar
  core (:mod:`repro.relational.columns`): per-table ColumnStores cache
  column arrays, frozen value sets, distinct lists, value->row_ids hash
  indexes, and one-time ColumnProfile statistics, maintained incrementally
  under insert/delete
* :mod:`repro.dataimport` — flat-file / XML / dump parsers (step 1)
* :mod:`repro.discovery` — primary & secondary relation discovery
  (steps 2-3), expressed over the cached column profiles
* :mod:`repro.linking` — cross-reference and implicit link discovery
  (step 4); per-source statistics wrap ColumnProfiles, computed once and
  reused for every later source (Section 4.4)
* :mod:`repro.duplicates` — duplicate flagging (step 5); blocking keys come
  from the cached accession indexes
* :mod:`repro.access` — browse / search / query engine; the search index
  is maintained incrementally on source add/update/remove
* :mod:`repro.metadata` — the metadata repository (structures, statistics,
  ColumnProfiles, samples, links)
* :mod:`repro.synth` — synthetic life-science data universe with gold standard
* :mod:`repro.eval` — precision/recall harness and Table-1 baselines
"""

__version__ = "1.0.0"
