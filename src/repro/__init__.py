"""ALADIN — (Almost) Hands-Off Information Integration for the Life Sciences.

Reproduction of Leser & Naumann, CIDR 2005. The top-level package exposes
the :class:`repro.core.Aladin` system; subpackages hold the substrates:

* :mod:`repro.relational` — in-memory relational database substrate
* :mod:`repro.dataimport` — flat-file / XML / dump parsers (step 1)
* :mod:`repro.discovery` — primary & secondary relation discovery (steps 2-3)
* :mod:`repro.linking` — cross-reference and implicit link discovery (step 4)
* :mod:`repro.duplicates` — duplicate flagging (step 5)
* :mod:`repro.access` — browse / search / query engine
* :mod:`repro.metadata` — the metadata repository
* :mod:`repro.synth` — synthetic life-science data universe with gold standard
* :mod:`repro.eval` — precision/recall harness and Table-1 baselines
"""

__version__ = "1.0.0"
