"""The concurrent read-path serving layer.

The paper's promise covers serving, not just building: an integrated
warehouse is only useful if many clients can query the integrated
product at once. This package turns a snapshot into exactly that — an
``asyncio`` HTTP/JSON service (:class:`AsyncQueryService`) over a
read-only, lazily hydrated open, with bounded concurrency, per-query
result caching keyed on the snapshot's content fingerprint
(:class:`QueryResultCache`), generation swaps when a writer
checkpoints, and drain-then-stop shutdown. ``repro serve`` is the CLI
front door.
"""

from repro.serve.cache import QueryResultCache
from repro.serve.service import (
    ENDPOINTS,
    AsyncQueryService,
    ServeConfig,
    ServeError,
    encode_body,
    serialize_hits,
    serialize_ranked,
    serialize_view,
)

__all__ = [
    "AsyncQueryService",
    "ServeConfig",
    "ServeError",
    "QueryResultCache",
    "ENDPOINTS",
    "encode_body",
    "serialize_hits",
    "serialize_ranked",
    "serialize_view",
]
