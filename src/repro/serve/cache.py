"""Per-query result caching for the serving layer.

Entries are keyed on ``(snapshot content fingerprint, endpoint,
normalized params)`` — the fingerprint is a hash over every source's
content hash (:meth:`SnapshotStore.content_fingerprint`), so a writer's
checkpoint changes the key space and stale entries stop matching
immediately. :meth:`retain` then actually evicts the dead generation's
entries, so a long-lived service does not carry obsolete bytes until LRU
pressure happens to push them out.

Values are the fully serialized response bodies (bytes): a cache hit is
byte-identical to the miss that populated it, by construction.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

#: ``(fingerprint, endpoint, normalized params)``
CacheKey = Tuple[str, str, Tuple[Tuple[str, str], ...]]


class QueryResultCache:
    """A bounded LRU over serialized query responses.

    Thread-safe: the event loop reads and writes it, while ``/statz``
    snapshots may be rendered from an executor thread.
    """

    def __init__(self, max_entries: int = 1024):
        self.max_entries = max(0, int(max_entries))
        self._entries: "OrderedDict[CacheKey, bytes]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    @staticmethod
    def key(
        fingerprint: str, endpoint: str, params: Dict[str, str]
    ) -> CacheKey:
        """The canonical cache key: params sorted, so order never matters."""
        return (fingerprint, endpoint, tuple(sorted(params.items())))

    def get(self, key: CacheKey) -> Optional[bytes]:
        with self._lock:
            body = self._entries.get(key)
            if body is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return body

    def put(self, key: CacheKey, body: bytes) -> None:
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = body
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def retain(self, fingerprint: str) -> int:
        """Drop every entry not keyed on ``fingerprint``; return the count.

        Called on a generation swap: the old fingerprint can never match
        again, so its entries are dead weight.
        """
        with self._lock:
            stale = [key for key in self._entries if key[0] != fingerprint]
            for key in stale:
                del self._entries[key]
            self._invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._invalidations += len(self._entries)
            self._entries.clear()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
            }
