"""The asyncio query service over a read-only snapshot.

:class:`AsyncQueryService` attaches to a snapshot the way ``repro
stats`` does — read-only, lazy, never taking the writer lock — and
exposes the four read access modes over a small HTTP/JSON front-end
built on the stdlib ``asyncio`` server:

* ``/search?q=...&top_k=...&sources=a,b`` — ranked BM25 full-text search;
* ``/browse?source=...&accession=...`` — one object page with all four
  link types resolved;
* ``/crawl?seeds=src:acc,...&follow_links=1&max_pages=N`` — the BFS
  frontier over the object web;
* ``/walk?source=...&statement=...&target=...&kinds=...`` — a per-source
  SQL query expanded over discovered links (the link join of Section 6);
* ``/healthz`` and ``/statz`` — liveness and the full serving picture
  (request counters, cache stats, hydration, the obs metrics snapshot).

Concurrency model: the event loop only parses requests and shuttles
bytes. Every query executes on the owning system's exec pool via
``loop.run_in_executor`` (the pool's ``submit`` seam), gated by a
``max_concurrency`` semaphore; admission itself is bounded by
``max_pending`` — beyond it the service answers 503 immediately instead
of queueing without limit.

Writer interplay: queries run against one *generation* — an ``Aladin``
opened read-only at a known content fingerprint. A background watcher
re-reads the fingerprint every ``refresh_interval`` seconds; when a
writer's checkpoint changes it, a fresh generation is opened, swapped in
atomically, and the result cache drops every stale entry
(:meth:`QueryResultCache.retain`). In-flight requests keep the old
generation referenced until they finish — responses are always
old-snapshot-or-new, never torn — and the drained generation closes in
the background.

Shutdown is drain-then-stop: :meth:`stop` refuses new work (503), stops
accepting, waits for in-flight requests up to a deadline, then closes
the generations. Every request gets a ``serve.request`` span and feeds
``serve.*`` counters/histograms in the generation's ``repro.obs``
registry.
"""

from __future__ import annotations

import asyncio
import copy
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.access.crawler import Crawler
from repro.core import Aladin, AladinConfig
from repro.obs.events import (
    SERVE_DRAINED,
    SERVE_GENERATION_SWAPPED,
    SERVE_STARTED,
)
from repro.persist import SnapshotError, SnapshotStore
from repro.persist.codec import canonical_json
from repro.serve.cache import QueryResultCache

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_READ_TIMEOUT = 10.0  # seconds to receive one request's head


class ServeError(Exception):
    """A request-shaped failure with an HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class ServeConfig:
    """The serving knobs.

    ``max_concurrency`` bounds queries executing on the pool at once;
    ``max_pending`` bounds *admitted* requests (executing + waiting on
    the semaphore) — beyond it the accept path answers 503 instead of
    queueing unboundedly. ``refresh_interval`` is how often the content
    fingerprint is re-read to notice a writer's checkpoint;
    ``drain_deadline`` is how long :meth:`AsyncQueryService.stop` waits
    for in-flight requests before giving up on a clean drain.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    max_concurrency: int = 64
    max_pending: int = 1024
    cache_entries: int = 1024
    refresh_interval: float = 0.5
    drain_deadline: float = 10.0


# ----------------------------------------------------------------------
# deterministic serialization (cache hits are byte-identical by design)
# ----------------------------------------------------------------------

_JSON_SAFE = (str, int, float, bool, type(None))


def _jsonable(value: Any) -> Any:
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, _JSON_SAFE):
        return value
    return str(value)


def encode_body(payload: Dict[str, Any]) -> bytes:
    """Canonical response bytes: the codec's canonical encoding + one LF.

    ``_jsonable`` has already stringified anything exotic, so the
    payload is finite and the codec emits exactly the sorted-key,
    tight-separator bytes this function always produced.
    """
    return (canonical_json(_jsonable(payload)) + "\n").encode("utf-8")


def serialize_hits(hits) -> List[Dict[str, Any]]:
    return [
        {
            "source": hit.source,
            "accession": hit.accession,
            "score": hit.score,
            "matched_fields": list(hit.matched_fields),
        }
        for hit in hits
    ]


def serialize_link(link) -> Dict[str, Any]:
    return {
        "source_a": link.source_a,
        "accession_a": link.accession_a,
        "source_b": link.source_b,
        "accession_b": link.accession_b,
        "kind": link.kind,
        "certainty": link.certainty,
        "evidence": link.evidence,
    }


def serialize_view(view) -> Dict[str, Any]:
    return {
        "page": {
            "source": view.page.source,
            "accession": view.page.accession,
            "fields": view.page.fields,
            "annotations": view.page.annotations,
        },
        "same_relation": list(view.same_relation),
        "duplicates": [serialize_link(link) for link in view.duplicates],
        "linked": [serialize_link(link) for link in view.linked],
        "conflicts": [
            {
                "source_a": c.source_a,
                "accession_a": c.accession_a,
                "value_a": c.value_a,
                "source_b": c.source_b,
                "accession_b": c.accession_b,
                "value_b": c.value_b,
                "similarity": c.similarity,
            }
            for c in view.conflicts
        ],
    }


def serialize_ranked(rows) -> List[Dict[str, Any]]:
    return [
        {
            "source": row.source,
            "accession": row.accession,
            "row": row.row,
            "certainty": row.certainty,
            "path": list(row.path),
        }
        for row in rows
    ]


# ----------------------------------------------------------------------
# parameter helpers
# ----------------------------------------------------------------------

def _require(params: Dict[str, str], name: str) -> str:
    value = params.get(name, "").strip()
    if not value:
        raise ServeError(400, f"missing required parameter {name!r}")
    return value


def _int_param(
    params: Dict[str, str], name: str, default: int, minimum: int = 1
) -> int:
    raw = params.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ServeError(400, f"parameter {name!r} must be an integer") from None
    if value < minimum:
        raise ServeError(400, f"parameter {name!r} must be >= {minimum}")
    return value


def _float_param(params: Dict[str, str], name: str, default: float) -> float:
    raw = params.get(name)
    if raw is None or raw == "":
        return default
    try:
        return float(raw)
    except ValueError:
        raise ServeError(400, f"parameter {name!r} must be a number") from None


def _bool_param(params: Dict[str, str], name: str, default: bool) -> bool:
    raw = params.get(name)
    if raw is None or raw == "":
        return default
    return raw.strip().lower() in ("1", "true", "yes", "on")


def _list_param(params: Dict[str, str], name: str) -> Optional[List[str]]:
    raw = params.get(name, "").strip()
    if not raw:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


# ----------------------------------------------------------------------
# endpoint handlers (run on pool threads; must only *read* the system)
# ----------------------------------------------------------------------

def _handle_search(aladin: Aladin, params: Dict[str, str]) -> Dict[str, Any]:
    query = _require(params, "q")
    top_k = _int_param(params, "top_k", 10)
    sources = _list_param(params, "sources")
    hits = aladin.search_engine().search(query, top_k=top_k, sources=sources)
    return {"query": query, "hits": serialize_hits(hits)}


def _handle_browse(aladin: Aladin, params: Dict[str, str]) -> Dict[str, Any]:
    source = _require(params, "source")
    accession = _require(params, "accession")
    try:
        view = aladin.browser().visit(source, accession)
    except KeyError as exc:
        raise ServeError(404, str(exc).strip("'\"")) from None
    return serialize_view(view)


def _parse_seeds(raw: Optional[str]) -> Optional[List[Tuple[str, str]]]:
    if raw is None or not raw.strip():
        return None
    seeds = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" not in part:
            raise ServeError(400, "seeds must be source:accession pairs")
        source, accession = part.split(":", 1)
        seeds.append((source, accession))
    return seeds or None


def _handle_crawl(aladin: Aladin, params: Dict[str, str]) -> Dict[str, Any]:
    seeds = _parse_seeds(params.get("seeds"))
    follow_links = _bool_param(params, "follow_links", True)
    max_pages = _int_param(params, "max_pages", 100)
    pages = [
        {"source": page.source, "accession": page.accession}
        for page in Crawler(aladin.web).crawl(
            seeds=seeds, follow_links=follow_links, max_pages=max_pages
        )
    ]
    return {"pages": pages, "count": len(pages)}


def _handle_walk(aladin: Aladin, params: Dict[str, str]) -> Dict[str, Any]:
    source = _require(params, "source")
    statement = _require(params, "statement")
    target = _require(params, "target")
    kinds = _list_param(params, "kinds")
    min_certainty = _float_param(params, "min_certainty", 0.0)
    collapse = _bool_param(params, "collapse", False)
    engine = aladin.query_engine()
    try:
        rows = engine.select_objects(source, statement)
        ranked = engine.link_join(
            rows, target, kinds=kinds, min_certainty=min_certainty
        )
        if collapse:
            ranked = engine.collapse_duplicates(ranked)
    except (ValueError, KeyError) as exc:  # SqlError/SchemaError included
        raise ServeError(400, str(exc)) from None
    return {"rows": serialize_ranked(ranked), "count": len(ranked)}


ENDPOINTS = {
    "search": _handle_search,
    "browse": _handle_browse,
    "crawl": _handle_crawl,
    "walk": _handle_walk,
}


def _execute(aladin: Aladin, endpoint: str, handler, params) -> bytes:
    """One query on a pool thread: traced, then canonically serialized."""
    tracer = aladin.obs.trace_or_none
    if tracer is None:
        return encode_body(handler(aladin, params))
    with tracer.span("serve.request", endpoint=endpoint):
        return encode_body(handler(aladin, params))


# ----------------------------------------------------------------------
# generations: one read-only Aladin per observed content fingerprint
# ----------------------------------------------------------------------

class _Generation:
    """One read-only open of the snapshot, refcounted by in-flight work.

    ``refs``/``retired`` are only touched from the event loop thread, so
    they need no lock; the Aladin inside is driven from pool threads,
    which the read path's own locks make safe.
    """

    __slots__ = ("aladin", "fingerprint", "refs", "retired", "closed")

    def __init__(self, aladin: Aladin, fingerprint: str):
        self.aladin = aladin
        self.fingerprint = fingerprint
        self.refs = 0
        self.retired = False
        self.closed = False


class AsyncQueryService:
    """Serve search/browse/crawl/walk from a snapshot, read-only."""

    def __init__(
        self,
        snapshot_path: str,
        config: Optional[ServeConfig] = None,
        aladin_config: Optional[AladinConfig] = None,
    ):
        self.path = str(snapshot_path)
        self.config = config or ServeConfig()
        self._aladin_config = aladin_config
        self._store = SnapshotStore(self.path)
        self.cache = QueryResultCache(self.config.cache_entries)
        self._gen: Optional[_Generation] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._watcher: Optional[asyncio.Task] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._closers: set = set()
        self._inflight = 0
        self._idle: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Event] = None
        self._draining = False
        self._requests = 0
        self._rejected = 0
        self._errors = 0
        self._swaps = 0

    # -- public state ----------------------------------------------------
    @property
    def fingerprint(self) -> Optional[str]:
        return None if self._gen is None else self._gen.fingerprint

    @property
    def requests_served(self) -> int:
        return self._requests

    @property
    def requests_rejected(self) -> int:
        return self._rejected

    @property
    def generation_swaps(self) -> int:
        return self._swaps

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        if self._server is None or not self._server.sockets:
            return None
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    @property
    def port(self) -> Optional[int]:
        address = self.address
        return None if address is None else address[1]

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("service already started")
        loop = asyncio.get_running_loop()
        self._semaphore = asyncio.Semaphore(max(1, self.config.max_concurrency))
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        self._draining = False
        self._gen = await loop.run_in_executor(None, self._open_generation)
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port
        )
        events = self._gen.aladin.obs.events_or_none
        if events is not None:
            events.emit(
                SERVE_STARTED,
                host=self.config.host,
                port=self.port,
                fingerprint=self._gen.fingerprint,
            )
        self._watcher = asyncio.create_task(self._watch_fingerprint())

    async def stop(self, deadline: Optional[float] = None) -> bool:
        """Drain-then-stop; True if every in-flight request finished.

        New requests are refused (503) immediately; the listener closes;
        in-flight work gets up to ``deadline`` seconds (the config's
        ``drain_deadline`` by default) to finish before the generations
        are torn down regardless.
        """
        deadline = self.config.drain_deadline if deadline is None else deadline
        self._draining = True
        if self._watcher is not None:
            self._watcher.cancel()
            await asyncio.gather(self._watcher, return_exceptions=True)
            self._watcher = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        drained = True
        if self._inflight and self._idle is not None:
            try:
                await asyncio.wait_for(self._idle.wait(), timeout=deadline)
            except asyncio.TimeoutError:
                drained = False
        gen, self._gen = self._gen, None
        if gen is not None:
            events = gen.aladin.obs.events_or_none
            if events is not None:
                events.emit(
                    SERVE_DRAINED,
                    clean=drained,
                    served=self._requests,
                    rejected=self._rejected,
                )
            gen.retired = True
            self._maybe_close(gen)
        if self._closers:
            await asyncio.gather(*list(self._closers), return_exceptions=True)
        if self._stopped is not None:
            self._stopped.set()
        return drained

    async def wait_stopped(self) -> None:
        if self._stopped is not None:
            await self._stopped.wait()

    # -- generations -----------------------------------------------------
    def _open_generation(self) -> _Generation:
        """Open one read-only generation (runs on a pool thread).

        The fingerprint is read *before* the open: a checkpoint racing
        the open can only make the generation newer than its fingerprint
        claims, so cache entries are never fresher than the data that
        produced them — the next watcher tick re-converges.
        """
        fingerprint = self._store.content_fingerprint()
        config = (
            None
            if self._aladin_config is None
            else copy.deepcopy(self._aladin_config)
        )
        aladin = Aladin.open(self.path, config=config, read_only=True, lazy=True)
        try:
            # Arm the search index once, on this thread: concurrent first
            # searches must never race an index build.
            aladin.search_engine()
        except BaseException:
            aladin.close()
            raise
        return _Generation(aladin, fingerprint)

    def _acquire_gen(self) -> _Generation:
        gen = self._gen
        if gen is None:
            raise ServeError(503, "service is shutting down")
        gen.refs += 1
        return gen

    def _release_gen(self, gen: _Generation) -> None:
        gen.refs -= 1
        self._maybe_close(gen)

    def _maybe_close(self, gen: _Generation) -> None:
        if not gen.retired or gen.refs > 0 or gen.closed:
            return
        gen.closed = True
        task = asyncio.get_running_loop().run_in_executor(
            None, gen.aladin.close
        )
        self._closers.add(task)
        task.add_done_callback(self._closers.discard)

    async def _watch_fingerprint(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.refresh_interval)
            try:
                fingerprint = await loop.run_in_executor(
                    None, self._store.content_fingerprint
                )
            except SnapshotError:
                continue  # writer mid-swap (compact): retry next tick
            gen = self._gen
            if gen is not None and fingerprint != gen.fingerprint:
                await self._swap_generation()

    async def _swap_generation(self) -> None:
        loop = asyncio.get_running_loop()
        try:
            new_gen = await loop.run_in_executor(None, self._open_generation)
        except SnapshotError:
            return  # transient (writer mid-commit): keep serving the old
        old, self._gen = self._gen, new_gen
        self._swaps += 1
        dropped = self.cache.retain(new_gen.fingerprint)
        events = new_gen.aladin.obs.events_or_none
        if events is not None:
            events.emit(
                SERVE_GENERATION_SWAPPED,
                fingerprint=new_gen.fingerprint,
                dropped_cache_entries=dropped,
            )
        if old is not None:
            old.retired = True
            self._maybe_close(old)

    # -- request path ----------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await asyncio.wait_for(
                    self._read_request(reader), timeout=_READ_TIMEOUT
                )
            except (asyncio.TimeoutError, ConnectionError):
                return
            if request is None:
                return
            method, target = request
            status, body = await self._respond(method, target)
            await self._write_response(writer, status, body)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str]]:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1", "replace").strip().split()
        if len(parts) != 3:
            return None
        method, target, _version = parts
        while True:  # drain headers; bodies are not part of the protocol
            header = await reader.readline()
            if not header or header in (b"\r\n", b"\n"):
                break
        return method.upper(), target

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter, status: int, body: bytes
    ) -> None:
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # the client went away; nothing to salvage

    async def _respond(self, method: str, target: str) -> Tuple[int, bytes]:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        params = dict(parse_qsl(split.query, keep_blank_values=True))
        if method != "GET":
            return 405, encode_body({"error": "only GET is supported"})
        if path == "/healthz":
            return 200, encode_body(self._health_payload())
        if path == "/statz":
            return 200, encode_body(self._stats_payload())
        handler = ENDPOINTS.get(path.lstrip("/"))
        if handler is None:
            return 404, encode_body({"error": f"unknown endpoint {path!r}"})
        if self._draining:
            self._rejected += 1
            return 503, encode_body({"error": "draining"})
        if self._inflight >= self.config.max_pending:
            self._rejected += 1
            metrics = self._metrics_or_none()
            if metrics is not None:
                metrics.counter("serve.rejected").inc()
            return 503, encode_body({"error": "too many pending requests"})
        return await self._run_query(path.lstrip("/"), handler, params)

    async def _run_query(
        self, endpoint: str, handler, params: Dict[str, str]
    ) -> Tuple[int, bytes]:
        loop = asyncio.get_running_loop()
        try:
            gen = self._acquire_gen()
        except ServeError as exc:
            return exc.status, encode_body({"error": exc.message})
        self._inflight += 1
        self._idle.clear()
        metrics = gen.aladin.obs.metrics_or_none
        try:
            if metrics is not None:
                metrics.counter("serve.requests").inc()
                metrics.counter(f"serve.requests.{endpoint}").inc()
            key = self.cache.key(gen.fingerprint, endpoint, params)
            body = self.cache.get(key)
            if body is not None:
                if metrics is not None:
                    metrics.counter("serve.cache.hits").inc()
                self._requests += 1
                return 200, body
            if metrics is not None:
                metrics.counter("serve.cache.misses").inc()
            async with self._semaphore:
                started = perf_counter()
                body = await loop.run_in_executor(
                    gen.aladin.executor, _execute, gen.aladin, endpoint,
                    handler, params,
                )
            if metrics is not None:
                metrics.histogram("serve.request_seconds").observe(
                    perf_counter() - started
                )
            self.cache.put(key, body)
            self._requests += 1
            return 200, body
        except ServeError as exc:
            self._requests += 1
            return exc.status, encode_body({"error": exc.message})
        except Exception as exc:  # noqa: BLE001 - a query must not kill the loop
            self._errors += 1
            if metrics is not None:
                metrics.counter("serve.errors").inc()
            return 500, encode_body({"error": repr(exc)})
        finally:
            self._release_gen(gen)
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    # -- introspection ---------------------------------------------------
    def _metrics_or_none(self):
        gen = self._gen
        return None if gen is None else gen.aladin.obs.metrics_or_none

    def _health_payload(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "fingerprint": self.fingerprint,
            "inflight": self._inflight,
        }

    def _stats_payload(self) -> Dict[str, Any]:
        gen = self._gen
        payload: Dict[str, Any] = {
            "status": "draining" if self._draining else "ok",
            "fingerprint": self.fingerprint,
            "inflight": self._inflight,
            "requests": self._requests,
            "rejected": self._rejected,
            "errors": self._errors,
            "generation_swaps": self._swaps,
            "cache": self.cache.stats(),
            "config": {
                "max_concurrency": self.config.max_concurrency,
                "max_pending": self.config.max_pending,
                "refresh_interval": self.config.refresh_interval,
            },
        }
        if gen is not None:
            payload["hydration"] = gen.aladin.hydration_stats()
            payload["metrics"] = gen.aladin.metrics()
        return payload
