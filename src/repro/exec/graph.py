"""Deterministic task graphs: dependencies, topological dispatch, error capture.

The execution subsystem's upper half. A :class:`TaskGraph` names the
stages of one pipeline run (``import -> statistics -> linking -> ...``),
declares who waits on whom, and dispatches ready tasks onto an
:class:`~repro.exec.pool.Executor`. Task bodies are closures over shared
in-process state, so graph concurrency is thread-based and only enabled
when the executor's :attr:`parallel_graph` says the backend can overlap
stages safely; otherwise tasks run inline in deterministic topological
order (insertion order among ready tasks). Either way the *results* are
identical — only wall-clock overlap differs.

Failures are captured per task. After the in-flight tasks drain, the
scheduler raises :class:`~repro.exec.pool.ExecError` for the first failed
task in insertion order, naming it; tasks downstream of a failure are
never started.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exec.pool import ExecError, Executor

# A task body receives the results-so-far dict; its declared dependencies
# are guaranteed to be present, nothing else may be read.
TaskFn = Callable[[Dict[str, Any]], Any]


@dataclass
class Task:
    """One named unit of work with declared dependencies."""

    name: str
    fn: TaskFn
    deps: Tuple[str, ...] = ()


class TaskGraph:
    """A small DAG of named tasks dispatched in dependency order."""

    def __init__(self) -> None:
        self._tasks: List[Task] = []
        self._by_name: Dict[str, Task] = {}

    def add(self, name: str, fn: TaskFn, deps: Sequence[str] = ()) -> None:
        if name in self._by_name:
            raise ValueError(f"task {name!r} already in the graph")
        task = Task(name=name, fn=fn, deps=tuple(deps))
        self._tasks.append(task)
        self._by_name[name] = task

    def __len__(self) -> int:
        return len(self._tasks)

    def names(self) -> List[str]:
        return [task.name for task in self._tasks]

    # ------------------------------------------------------------------
    def run(
        self, executor: Optional[Executor] = None, metrics=None, tracer=None
    ) -> Dict[str, Any]:
        """Execute every task; returns ``{task name: result}``.

        With a thread-capable executor, independent tasks overlap (the
        pipelining that takes index updates and snapshot checkpoints off
        the critical path); otherwise execution is inline topological.

        ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`, or
        ``None`` for the zero-cost disabled path) records per-node wall
        time and queue wait — the gap between a node's dependencies
        completing and the node starting — plus which dispatch mode ran
        the graph.

        ``tracer`` (a :class:`~repro.obs.trace.Tracer`, or ``None``)
        opens one ``graph.{node}`` span per task under the caller's
        active span.  Thread dispatch captures that context *here*, on
        the submitting thread, and re-activates it inside each worker —
        ``ThreadPoolExecutor`` does not carry contextvars into reused
        worker threads on its own — so fan-out spans opened inside a
        node body still hang off the right node.
        """
        self._validate()
        if executor is not None and executor.parallel_graph and executor.workers > 1:
            if metrics is not None:
                metrics.counter("graph.dispatch.threaded").inc()
            return self._run_threaded(executor, metrics, tracer)
        if metrics is not None:
            metrics.counter("graph.dispatch.serial").inc()
        return self._run_serial(metrics, tracer)

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        for task in self._tasks:
            for dep in task.deps:
                if dep not in self._by_name:
                    raise ValueError(
                        f"task {task.name!r} depends on unknown task {dep!r}"
                    )
        # Kahn's algorithm; anything left over sits on a cycle.
        pending = {task.name: len(task.deps) for task in self._tasks}
        children = self._children()
        ready = [task.name for task in self._tasks if not task.deps]
        seen = 0
        while ready:
            name = ready.pop()
            seen += 1
            for child in children.get(name, ()):
                pending[child] -= 1
                if pending[child] == 0:
                    ready.append(child)
        if seen != len(self._tasks):
            cyclic = sorted(name for name, count in pending.items() if count > 0)
            raise ValueError(f"task graph has a cycle through {', '.join(cyclic)}")

    def _children(self) -> Dict[str, List[str]]:
        children: Dict[str, List[str]] = {}
        for task in self._tasks:
            for dep in task.deps:
                children.setdefault(dep, []).append(task.name)
        return children

    # ------------------------------------------------------------------
    def _run_serial(self, metrics=None, tracer=None) -> Dict[str, Any]:
        results: Dict[str, Any] = {}
        remaining = list(self._tasks)
        ready_at: Dict[str, float] = {}
        children = self._children() if metrics is not None else {}
        while remaining:
            progressed = False
            for task in list(remaining):
                if any(dep not in results for dep in task.deps):
                    continue
                if metrics is None and tracer is None:
                    results[task.name] = self._invoke(task, results)
                else:
                    # Inline dispatch: "queue wait" is the time a ready
                    # task sat behind earlier ready siblings this sweep.
                    started = perf_counter()
                    became_ready = ready_at.setdefault(task.name, started)
                    if tracer is None:
                        results[task.name] = self._invoke(task, results)
                    else:
                        with tracer.span(f"graph.{task.name}"):
                            results[task.name] = self._invoke(task, results)
                    finished = perf_counter()
                    if metrics is not None:
                        metrics.histogram(f"graph.{task.name}.seconds").observe(
                            finished - started
                        )
                        metrics.histogram(f"graph.{task.name}.queue_wait").observe(
                            started - became_ready
                        )
                        for child in children.get(task.name, ()):
                            ready_at.setdefault(child, finished)
                remaining.remove(task)
                progressed = True
            if not progressed:  # pragma: no cover - _validate rules this out
                raise ExecError(
                    "task graph stalled (cycle?) with "
                    + ", ".join(t.name for t in remaining)
                )
        return results

    def _run_threaded(
        self, executor: Executor, metrics=None, tracer=None
    ) -> Dict[str, Any]:
        results: Dict[str, Any] = {}
        failures: Dict[str, BaseException] = {}
        children = self._children()
        pending = {task.name: len(task.deps) for task in self._tasks}
        order = {task.name: position for position, task in enumerate(self._tasks)}
        running: Dict[concurrent.futures.Future, str] = {}
        ready_at: Dict[str, float] = {}
        # The graph's parent span context, captured on the submitting
        # thread; worker threads re-activate it around each node body.
        parent_context = tracer.current() if tracer is not None else None

        def timed(task: Task) -> Callable[[Dict[str, Any]], Any]:
            # Wrap the body on the worker thread so wall time excludes
            # pool queueing — that gap is the queue_wait histogram.
            def body(results_in: Dict[str, Any]) -> Any:
                started = perf_counter()
                value = task.fn(results_in)
                metrics.histogram(f"graph.{task.name}.seconds").observe(
                    perf_counter() - started
                )
                metrics.histogram(f"graph.{task.name}.queue_wait").observe(
                    started - ready_at.get(task.name, started)
                )
                return value

            return body

        def traced(task: Task, inner) -> Callable[[Dict[str, Any]], Any]:
            def body(results_in: Dict[str, Any]) -> Any:
                with tracer.activate(parent_context):
                    with tracer.span(f"graph.{task.name}"):
                        return inner(results_in)

            return body

        with concurrent.futures.ThreadPoolExecutor(
            max_workers=executor.workers
        ) as pool:

            def submit_ready(names):
                now = perf_counter() if metrics is not None else 0.0
                for name in sorted(names, key=order.__getitem__):
                    task = self._by_name[name]
                    if metrics is None:
                        body = task.fn
                    else:
                        ready_at[name] = now
                        body = timed(task)
                    if tracer is not None:
                        body = traced(task, body)
                    running[pool.submit(body, results)] = name

            submit_ready([t.name for t in self._tasks if not t.deps])
            while running:
                done, _ = concurrent.futures.wait(
                    running, return_when=concurrent.futures.FIRST_COMPLETED
                )
                newly_ready = []
                for future in done:
                    name = running.pop(future)
                    try:
                        results[name] = future.result()
                    except BaseException as exc:  # noqa: BLE001 - captured per task
                        failures[name] = exc
                        continue
                    for child in children.get(name, ()):
                        pending[child] -= 1
                        if pending[child] == 0 and not failures:
                            newly_ready.append(child)
                if newly_ready and not failures:
                    submit_ready(newly_ready)

        if failures:
            name = min(failures, key=order.__getitem__)
            exc = failures[name]
            if isinstance(exc, ExecError):
                raise exc
            raise ExecError(f"task {name!r} failed: {exc!r}", task=name) from exc
        return results

    def _invoke(self, task: Task, results: Dict[str, Any]) -> Any:
        try:
            return task.fn(results)
        except ExecError:
            raise
        except BaseException as exc:
            raise ExecError(
                f"task {task.name!r} failed: {exc!r}", task=task.name
            ) from exc
