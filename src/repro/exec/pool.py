"""Pluggable worker pools behind one ``Executor`` API.

The execution subsystem's lower half: three interchangeable backends run
the same *ordered fan-out* contract, so every caller (link discovery,
duplicate detection, bulk import, index tokenization) is written once and
parallelizes by configuration:

* ``serial`` — everything inline, zero concurrency. The reference
  backend: parallel results are required to be byte-identical to it.
* ``thread`` — a per-call :class:`ThreadPoolExecutor`. Threads share the
  interpreter, so coordination tasks (the task graph) can overlap and
  I/O-bound work (snapshot checkpoints) leaves the critical path; pure
  Python CPU work stays GIL-bound.
* ``process`` — a per-call fork-based :class:`ProcessPoolExecutor`.
  Workers inherit the parent's memory at fork time, so large shared
  read-only state (the link engine with every registered source) crosses
  into workers without being pickled; only task specs and results travel.

Determinism contract: :meth:`Executor.map_ordered` returns results in
*item order*, never in completion order, and a failing item raises
:class:`ExecError` for the first failed item in item order — regardless
of backend and scheduling. Callers merge results in a fixed order, which
is what makes parallel runs byte-identical to serial ones.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

BACKENDS = ("serial", "thread", "process")

_DEFAULT_WORKERS = 4


def _env_backend() -> str:
    backend = os.environ.get("REPRO_EXEC_BACKEND", "serial").strip().lower()
    return backend if backend in BACKENDS else "serial"


def _env_workers() -> int:
    raw = os.environ.get("REPRO_EXEC_WORKERS", "")
    try:
        workers = int(raw)
    except ValueError:
        return _DEFAULT_WORKERS
    return max(1, workers) if workers else _DEFAULT_WORKERS


@dataclass
class ExecConfig:
    """The execution knob: which backend, how many workers.

    Defaults come from ``REPRO_EXEC_BACKEND`` / ``REPRO_EXEC_WORKERS`` so
    an entire test suite (or CI job) can be rerun under another backend
    without touching code. ``serial`` remains the default default: the
    system behaves exactly as before unless parallelism is asked for.
    """

    backend: str = field(default_factory=_env_backend)
    workers: int = field(default_factory=_env_workers)


class ExecError(RuntimeError):
    """One task of a fan-out or task graph failed.

    ``task`` names the failed unit (its label); the original exception is
    chained as ``__cause__``. Schedulers capture per-task failures and
    re-raise the *first failed task in submission order*, so the surfaced
    error does not depend on completion timing.
    """

    def __init__(self, message: str, task: Optional[str] = None):
        super().__init__(message)
        self.task = task


# ----------------------------------------------------------------------
# worker-side trampoline (module level: picklable by reference)
# ----------------------------------------------------------------------

# Fork-inherited state: set in the parent immediately before the worker
# processes fork, read by every task in the children. Guarded by a lock so
# two concurrent fan-outs cannot clobber each other's state mid-fork.
_FORK_STATE: Any = None
_FORK_LOCK = threading.Lock()


def _run_chunk_with_state(
    fn: Callable[[Any, Any], Any], state: Any, chunk: Sequence[Any], offset: int
) -> Tuple[str, Any]:
    """Run one chunk of items; never raise — failures become values.

    Capturing the exception (instead of letting the pool surface it in
    completion order) is what lets the coordinator raise deterministically
    for the first failed *item*, and lets sibling tasks finish cleanly.
    """
    results = []
    for position, item in enumerate(chunk):
        try:
            results.append(fn(state, item))
        except BaseException as exc:  # noqa: BLE001 - transported, not hidden
            return ("err", offset + position, repr(exc), exc)
    return ("ok", results)


def _run_chunk_forked(
    fn: Callable[[Any, Any], Any], chunk: Sequence[Any], offset: int
) -> Tuple[str, Any]:
    """Process-pool entry point: state comes from the forked snapshot."""
    return _run_chunk_with_state(fn, _FORK_STATE, chunk, offset)


# ----------------------------------------------------------------------
# executors
# ----------------------------------------------------------------------
class Executor:
    """Ordered fan-out over a worker pool.

    ``map_ordered(fn, items, state=...)`` calls ``fn(state, item)`` for
    every item and returns the results in item order. ``fn`` must be a
    module-level function when the process backend may run it (it crosses
    the pool pickled by reference); ``state`` is shared worker state —
    passed directly under serial/thread, inherited via fork under process.
    """

    name = "serial"

    def __init__(self, workers: int = 1):
        self.workers = max(1, int(workers))

    @property
    def parallel_graph(self) -> bool:
        """May the task graph overlap independent coordination tasks?

        Only the thread backend says yes: coordination tasks are closures
        over shared state (no process can run them), and forking *while*
        sibling threads mutate the heap would hand workers a torn memory
        snapshot — so the process backend keeps the graph sequential and
        parallelizes inside each fan-out instead.
        """
        return False

    @property
    def cpu_parallel(self) -> bool:
        """Do fan-outs actually run pure-Python CPU work concurrently?

        Only the process backend: threads share the GIL, so purely
        CPU-bound fan-outs (e.g. index tokenization) should stay inline
        rather than pay dispatch overhead for no speedup.
        """
        return False

    def map_ordered(
        self,
        fn: Callable[[Any, Any], Any],
        items: Iterable[Any],
        state: Any = None,
        labels: Optional[Sequence[str]] = None,
        chunksize: int = 1,
    ) -> List[Any]:
        items = list(items)
        results: List[Any] = []
        for index, item in enumerate(items):
            try:
                results.append(fn(state, item))
            except ExecError:
                raise
            except BaseException as exc:
                raise ExecError(
                    f"task {_label(labels, index)!r} failed: {exc!r}",
                    task=_label(labels, index),
                ) from exc
        return results

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} workers={self.workers}>"


class SerialExecutor(Executor):
    """Inline execution; the determinism reference."""


class ThreadExecutor(Executor):
    """Per-call thread pool: overlapping stages and I/O off the critical path."""

    name = "thread"

    @property
    def parallel_graph(self) -> bool:
        return True

    def map_ordered(self, fn, items, state=None, labels=None, chunksize=1):
        items = list(items)
        if len(items) <= 1 or self.workers <= 1:
            return super().map_ordered(fn, items, state=state, labels=labels)
        chunks = _chunk(items, chunksize)
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=min(self.workers, len(chunks))
        ) as pool:
            futures = [
                pool.submit(_run_chunk_with_state, fn, state, chunk, offset)
                for chunk, offset in chunks
            ]
            outcomes = [future.result() for future in futures]
        return _collect(outcomes, chunks, labels)


class ProcessExecutor(Executor):
    """Per-call fork pool: CPU-bound fan-outs across real processes.

    The pool is created *per fan-out* so the children always fork from the
    caller's current state — no staleness tracking, no leaked processes.
    Fork is required (state crosses by memory inheritance, not pickling);
    where fork is unavailable the executor degrades to inline execution
    rather than failing.
    """

    name = "process"

    @property
    def cpu_parallel(self) -> bool:
        return True

    def map_ordered(self, fn, items, state=None, labels=None, chunksize=1):
        items = list(items)
        if len(items) <= 1 or self.workers <= 1:
            return Executor.map_ordered(self, fn, items, state=state, labels=labels)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            return Executor.map_ordered(self, fn, items, state=state, labels=labels)
        chunks = _chunk(items, chunksize)
        global _FORK_STATE
        with _FORK_LOCK:
            _FORK_STATE = state
            try:
                with concurrent.futures.ProcessPoolExecutor(
                    max_workers=min(self.workers, len(chunks)), mp_context=context
                ) as pool:
                    futures = [
                        pool.submit(_run_chunk_forked, fn, chunk, offset)
                        for chunk, offset in chunks
                    ]
                    outcomes = []
                    for index, future in enumerate(futures):
                        try:
                            outcomes.append(future.result())
                        except ExecError:
                            raise
                        except BaseException as exc:
                            # The pool itself failed (unpicklable result,
                            # dead worker): attribute it to the chunk's
                            # first item — the closest deterministic label.
                            offset = chunks[index][1]
                            raise ExecError(
                                f"task {_label(labels, offset)!r} failed in the "
                                f"worker pool: {exc!r}",
                                task=_label(labels, offset),
                            ) from exc
            finally:
                _FORK_STATE = None
        return _collect(outcomes, chunks, labels)


def _chunk(items: List[Any], chunksize: int) -> List[Tuple[List[Any], int]]:
    chunksize = max(1, int(chunksize))
    return [
        (items[start : start + chunksize], start)
        for start in range(0, len(items), chunksize)
    ]


def _label(labels: Optional[Sequence[str]], index: int) -> str:
    if labels is not None and index < len(labels):
        return labels[index]
    return f"task[{index}]"


def _collect(outcomes, chunks, labels) -> List[Any]:
    """Flatten chunk outcomes in item order; raise for the first failure."""
    failure: Optional[Tuple[int, str, BaseException]] = None
    results: List[Any] = []
    for outcome in outcomes:
        if outcome[0] == "ok":
            results.extend(outcome[1])
            continue
        _, index, rendered, exc = outcome
        if failure is None or index < failure[0]:
            failure = (index, rendered, exc)
    if failure is not None:
        index, rendered, exc = failure
        raise ExecError(
            f"task {_label(labels, index)!r} failed: {rendered}",
            task=_label(labels, index),
        ) from exc
    return results


def create_executor(config: Optional[ExecConfig] = None) -> Executor:
    """Build the executor a configuration asks for."""
    config = config or ExecConfig()
    backend = (config.backend or "serial").lower()
    if backend == "thread":
        return ThreadExecutor(config.workers)
    if backend == "process":
        return ProcessExecutor(config.workers)
    if backend != "serial":
        raise ValueError(
            f"unknown execution backend {config.backend!r}; known: {', '.join(BACKENDS)}"
        )
    # Always 1: ``workers`` doubles as the "is this parallel" signal for
    # fan-out gates (e.g. InvertedIndex.add_pages), and a serial executor
    # must never make them take the fan-out path.
    return SerialExecutor(1)
