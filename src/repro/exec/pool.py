"""Pluggable worker pools behind one ``Executor`` API.

The execution subsystem's lower half: three interchangeable backends run
the same *ordered fan-out* contract, so every caller (link discovery,
duplicate detection, bulk import, index tokenization) is written once and
parallelizes by configuration:

* ``serial`` — everything inline, zero concurrency. The reference
  backend: parallel results are required to be byte-identical to it.
* ``thread`` — a per-call :class:`ThreadPoolExecutor`. Threads share the
  interpreter, so coordination tasks (the task graph) can overlap and
  I/O-bound work (snapshot checkpoints) leaves the critical path; pure
  Python CPU work stays GIL-bound.
* ``process`` — a per-call fork-based :class:`ProcessPoolExecutor`.
  Workers inherit the parent's memory at fork time, so large shared
  read-only state (the link engine with every registered source) crosses
  into workers without being pickled; only task specs and results travel.
* ``auto`` — :class:`AutoExecutor`: serial or the configured pool *per
  stage kind*, decided from measured per-fanout timings (the
  :class:`~repro.obs.timing.WorkloadCalibration` record). Results are
  byte-identical either way, so calibration only moves time.

Determinism contract: :meth:`Executor.map_ordered` returns results in
*item order*, never in completion order, and a failing item raises
:class:`ExecError` for the first failed item in item order — regardless
of backend and scheduling. Callers merge results in a fixed order, which
is what makes parallel runs byte-identical to serial ones.

Resident mode (``ExecConfig.resident`` / ``REPRO_EXEC_RESIDENT``): the
thread and process pools above are created *per fan-out*, which is simple
and always-fresh but makes every small scan pay pool spin-up — for the
process backend a whole round of forks. :class:`ResidentThreadExecutor`
and :class:`ResidentProcessExecutor` keep one long-lived pool across
fan-outs instead, with two extra contract points:

* ``refresh_state()`` — shared state crossed into process workers by fork
  inheritance, so a resident fork pool holds a *snapshot*. Callers that
  mutate the shared state (registering, removing, or refreshing a source)
  must call ``refresh_state()`` so the next fan-out re-forks from current
  memory. Thread workers read the live heap, so for them it is a no-op.
* idle teardown — a resident pool that has not run a fan-out for
  ``idle_seconds`` releases its workers; the next fan-out transparently
  re-creates them. Long-lived systems do not hold worker processes
  hostage between maintenance bursts.

The determinism contract is unchanged in resident mode: results arrive in
item order and a failure raises :class:`ExecError` for the first failed
task in submission order, even when pool-level errors (a dead worker, an
unpicklable result) strike a later chunk first.

Observability: every executor carries optional ``metrics`` / ``events``
/ ``tracer`` handles (all ``None`` by default — the owning ``Aladin``
wires them).  The public :meth:`Executor.map_ordered` is an instrumented
wrapper around the per-backend ``_map_impl``: it derives the fan-out's
*stage kind* from its labels (``link:...`` -> ``link``), times the whole
fan-out with ``perf_counter``, and records per-stage fan-out histograms,
worker utilization (summed in-worker busy seconds over ``wall x
slots``), and dispatch/merge overhead. Resident pools additionally emit
``pool.spawned`` / ``pool.teardown`` lifecycle events.

Tracing: with a ``tracer`` wired, each fan-out opens a ``fanout.{stage}``
span under the caller's active span, and the picklable parent context
``(trace_id, span_id)`` travels *inside the task spec* to the chunk
runners.  Workers — inline, thread, or forked process — record one
``task`` span per item with a :class:`~repro.obs.trace.WorkerSpanRecorder`
(plain dicts) and ship them back as the last element of the existing
outcome tuples; ``_collect`` gathers them in deterministic submission
order and the wrapper re-parents them under the fan-out span via
``Tracer.adopt``.  With ``metrics``/``tracer`` unset the wrapper is two
``is None`` checks — the disabled path stays zero-cost.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import multiprocessing
import os
import threading
import weakref
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.events import POOL_SPAWNED, POOL_TEARDOWN
from repro.obs.timing import PARALLEL, SERIAL, WorkloadCalibration
from repro.obs.trace import WorkerSpanRecorder

BACKENDS = ("serial", "thread", "process", "auto")

_DEFAULT_WORKERS = 4


def _env_backend() -> str:
    backend = os.environ.get("REPRO_EXEC_BACKEND", "serial").strip().lower()
    return backend if backend in BACKENDS else "serial"


def _env_workers() -> int:
    raw = os.environ.get("REPRO_EXEC_WORKERS", "")
    try:
        workers = int(raw)
    except ValueError:
        return _DEFAULT_WORKERS
    return max(1, workers) if workers else _DEFAULT_WORKERS


_DEFAULT_IDLE_SECONDS = 30.0


def _env_resident() -> bool:
    raw = os.environ.get("REPRO_EXEC_RESIDENT", "").strip().lower()
    return raw in ("1", "true", "yes", "on")


def _env_idle_seconds() -> float:
    raw = os.environ.get("REPRO_EXEC_IDLE_SECONDS", "").strip()
    if not raw:
        return _DEFAULT_IDLE_SECONDS
    try:
        return float(raw)
    except ValueError:
        return _DEFAULT_IDLE_SECONDS


def _env_auto_parallel() -> str:
    raw = os.environ.get("REPRO_EXEC_AUTO_PARALLEL", "process").strip().lower()
    return raw if raw in ("thread", "process") else "process"


@dataclass
class ExecConfig:
    """The execution knob: which backend, how many workers.

    Defaults come from ``REPRO_EXEC_BACKEND`` / ``REPRO_EXEC_WORKERS`` so
    an entire test suite (or CI job) can be rerun under another backend
    without touching code. ``serial`` remains the default default: the
    system behaves exactly as before unless parallelism is asked for.

    ``resident`` (``REPRO_EXEC_RESIDENT``) keeps the thread/process pool
    alive across fan-outs instead of creating one per call;
    ``idle_seconds`` (``REPRO_EXEC_IDLE_SECONDS``) is how long a resident
    pool may sit unused before its workers are released.

    ``backend="auto"`` picks serial or a pool per stage kind from
    measured timings; ``auto_parallel`` (``REPRO_EXEC_AUTO_PARALLEL``)
    names the pool backend the auto executor's parallel arm uses.
    """

    backend: str = field(default_factory=_env_backend)
    workers: int = field(default_factory=_env_workers)
    resident: bool = field(default_factory=_env_resident)
    idle_seconds: float = field(default_factory=_env_idle_seconds)
    auto_parallel: str = field(default_factory=_env_auto_parallel)


class ExecError(RuntimeError):
    """One task of a fan-out or task graph failed.

    ``task`` names the failed unit (its label); the original exception is
    chained as ``__cause__``. Schedulers capture per-task failures and
    re-raise the *first failed task in submission order*, so the surfaced
    error does not depend on completion timing.
    """

    def __init__(self, message: str, task: Optional[str] = None):
        super().__init__(message)
        self.task = task


# ----------------------------------------------------------------------
# worker-side trampoline (module level: picklable by reference)
# ----------------------------------------------------------------------

# Fork-inherited state: set in the parent immediately before the worker
# processes fork, read by every task in the children. Guarded by a lock so
# two concurrent fan-outs cannot clobber each other's state mid-fork.
_FORK_STATE: Any = None
_FORK_LOCK = threading.Lock()


def _run_chunk_with_state(
    fn: Callable[[Any, Any], Any],
    state: Any,
    chunk: Sequence[Any],
    offset: int,
    trace: Optional[Tuple[str, str]] = None,
) -> Tuple[Any, ...]:
    """Run one chunk of items; never raise — failures become values.

    Capturing the exception (instead of letting the pool surface it in
    completion order) is what lets the coordinator raise deterministically
    for the first failed *item*, and lets sibling tasks finish cleanly.

    Successful outcomes ``("ok", results, busy, spans)`` carry the
    chunk's in-worker wall seconds (``perf_counter``), which the
    coordinator sums into the fan-out's busy time for the utilization
    metric, plus the worker-recorded ``task`` spans (``None`` when
    untraced): ``trace`` is the fan-out span's picklable
    ``(trace_id, span_id)`` context, serialized into the task spec, and
    the spans travel home on this same result channel for the
    coordinator to re-parent.  Failures are
    ``("err", index, rendered, exc, spans)``.
    """
    recorder = None if trace is None else WorkerSpanRecorder(trace)
    started = perf_counter()
    results = []
    for position, item in enumerate(chunk):
        try:
            if recorder is None:
                results.append(fn(state, item))
            else:
                with recorder.task(offset + position):
                    results.append(fn(state, item))
        except BaseException as exc:  # noqa: BLE001 - transported, not hidden
            spans = None if recorder is None else recorder.spans
            return ("err", offset + position, repr(exc), exc, spans)
    spans = None if recorder is None else recorder.spans
    return ("ok", results, perf_counter() - started, spans)


def _run_chunk_forked(
    fn: Callable[[Any, Any], Any],
    chunk: Sequence[Any],
    offset: int,
    trace: Optional[Tuple[str, str]] = None,
) -> Tuple[Any, ...]:
    """Process-pool entry point: state comes from the forked snapshot."""
    return _run_chunk_with_state(fn, _FORK_STATE, chunk, offset, trace)


def _stage_kind(fn: Callable, labels: Optional[Sequence[str]]) -> str:
    """The fan-out's stage family, e.g. ``link:pair:a->b`` -> ``link``.

    Callers that pass no labels are classified by the task function's
    name — good enough to keep their timings in their own bucket.
    """
    if labels:
        first = labels[0]
        return first.split(":", 1)[0] if ":" in first else first
    return getattr(fn, "__name__", "task").strip("_") or "task"


# ----------------------------------------------------------------------
# executors
# ----------------------------------------------------------------------
class Executor:
    """Ordered fan-out over a worker pool.

    ``map_ordered(fn, items, state=...)`` calls ``fn(state, item)`` for
    every item and returns the results in item order. ``fn`` must be a
    module-level function when the process backend may run it (it crosses
    the pool pickled by reference); ``state`` is shared worker state —
    passed directly under serial/thread, inherited via fork under process.

    Subclasses implement ``_map_impl`` (returning ``(results, busy,
    worker_spans)``); the public ``map_ordered`` wraps it with the
    optional per-stage instrumentation described in the module
    docstring.
    """

    name = "serial"
    resident = False
    # Observability handles, wired by the owning Aladin. None means the
    # instrumented wrapper short-circuits to the raw implementation.
    metrics = None
    events = None
    tracer = None

    def __init__(self, workers: int = 1):
        self.workers = max(1, int(workers))
        self._submit_pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._submit_lock = threading.Lock()

    @property
    def parallel_graph(self) -> bool:
        """May the task graph overlap independent coordination tasks?

        Only the thread backend says yes: coordination tasks are closures
        over shared state (no process can run them), and forking *while*
        sibling threads mutate the heap would hand workers a torn memory
        snapshot — so the process backend keeps the graph sequential and
        parallelizes inside each fan-out instead.
        """
        return False

    @property
    def cpu_parallel(self) -> bool:
        """Do fan-outs actually run pure-Python CPU work concurrently?

        Only the process backend: threads share the GIL, so purely
        CPU-bound fan-outs (e.g. index tokenization) should stay inline
        rather than pay dispatch overhead for no speedup.
        """
        return False

    def refresh_state(self) -> None:
        """Invalidate worker-held shared state.

        Callers must invoke this after mutating state they previously
        shipped into a fan-out. Per-call pools always re-capture state, so
        this is a no-op everywhere except the resident process pool, which
        holds a fork-time snapshot until told otherwise.
        """

    def submit(self, fn: Callable[..., Any], *args: Any) -> "concurrent.futures.Future":
        """Run one callable on a pool thread; returns a real Future.

        The serving layer's bridge into asyncio: ``loop.run_in_executor``
        accepts any object with a ``submit`` returning a
        :class:`concurrent.futures.Future`. Every backend answers from
        one lazily created thread pool sized to ``workers`` — per-request
        query work is SQLite faults plus list scans (I/O and C calls,
        which threads serve well), and forked pools could not see the
        live warehouse heap anyway. Released by :meth:`shutdown`; a
        later submit transparently re-creates the pool.
        """
        pool = self._submit_pool
        if pool is None:
            with self._submit_lock:
                pool = self._submit_pool
                if pool is None:
                    pool = concurrent.futures.ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix=f"repro-{self.name}-submit",
                    )
                    self._submit_pool = pool
        return pool.submit(fn, *args)

    def _release_submit_pool(self) -> None:
        with self._submit_lock:
            pool, self._submit_pool = self._submit_pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def shutdown(self) -> None:
        """Release any long-lived workers. No-op for per-call pools."""
        self._release_submit_pool()

    def map_ordered(
        self,
        fn: Callable[[Any, Any], Any],
        items: Iterable[Any],
        state: Any = None,
        labels: Optional[Sequence[str]] = None,
        chunksize: int = 1,
        stage: Optional[str] = None,
    ) -> List[Any]:
        items = list(items)
        metrics = self.metrics
        tracer = self.tracer
        if metrics is None and tracer is None:
            results, _busy, _spans = self._map_impl(fn, items, state, labels, chunksize)
            return results
        stage = stage or _stage_kind(fn, labels)
        handle = None
        if tracer is not None:
            handle = tracer.start_span(
                f"fanout.{stage}", backend=self.name, items=len(items)
            )
        started = perf_counter()
        try:
            results, busy, spans = self._map_impl(
                fn, items, state, labels, chunksize,
                trace=None if handle is None else handle.context(),
            )
        except ExecError as exc:
            if metrics is not None:
                metrics.counter("pool.failures").inc()
                metrics.counter(f"pool.failures.{stage}").inc()
            if handle is not None:
                tracer.finish(handle, error=exc)
            raise
        wall = perf_counter() - started
        if metrics is not None:
            self._record_fanout(metrics, stage, len(items), wall, busy)
        if handle is not None:
            if spans:
                tracer.adopt(spans, handle, labels=list(labels) if labels else None)
            tracer.finish(handle)
        return results

    def _record_fanout(
        self, metrics, stage: str, item_count: int, wall: float, busy: float
    ) -> None:
        metrics.counter("pool.fanouts").inc()
        metrics.counter("pool.tasks").inc(item_count)
        metrics.histogram(f"pool.fanout.{stage}").observe(wall)
        # Slots actually available to this fan-out: 1 when it ran inline.
        slots = 1 if item_count <= 1 or self.workers <= 1 else self.workers
        if wall > 0:
            metrics.histogram("pool.utilization").observe(
                min(1.0, busy / (wall * slots))
            )
        # Time not spent inside workers, assuming perfect packing:
        # dispatch, pickling, and ordered merge.
        metrics.histogram("pool.overhead_seconds").observe(
            max(0.0, wall - busy / slots)
        )

    def _map_impl(
        self,
        fn: Callable[[Any, Any], Any],
        items: List[Any],
        state: Any = None,
        labels: Optional[Sequence[str]] = None,
        chunksize: int = 1,
        trace: Optional[Tuple[str, str]] = None,
    ) -> Tuple[List[Any], float, Optional[List[Dict[str, Any]]]]:
        recorder = None if trace is None else WorkerSpanRecorder(trace)
        started = perf_counter()
        results: List[Any] = []
        for index, item in enumerate(items):
            try:
                if recorder is None:
                    results.append(fn(state, item))
                else:
                    with recorder.task(index):
                        results.append(fn(state, item))
            except ExecError:
                raise
            except BaseException as exc:
                raise ExecError(
                    f"task {_label(labels, index)!r} failed: {exc!r}",
                    task=_label(labels, index),
                ) from exc
        return (
            results,
            perf_counter() - started,
            None if recorder is None else recorder.spans,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} workers={self.workers}>"


class SerialExecutor(Executor):
    """Inline execution; the determinism reference."""


class ThreadExecutor(Executor):
    """Per-call thread pool: overlapping stages and I/O off the critical path."""

    name = "thread"

    @property
    def parallel_graph(self) -> bool:
        return True

    def _map_impl(self, fn, items, state=None, labels=None, chunksize=1, trace=None):
        if len(items) <= 1 or self.workers <= 1:
            return Executor._map_impl(self, fn, items, state, labels, trace=trace)
        chunks = _chunk(items, chunksize)
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=min(self.workers, len(chunks))
        ) as pool:
            futures = [
                pool.submit(_run_chunk_with_state, fn, state, chunk, offset, trace)
                for chunk, offset in chunks
            ]
            outcomes = [future.result() for future in futures]
        return _collect(outcomes, chunks, labels)


class ProcessExecutor(Executor):
    """Per-call fork pool: CPU-bound fan-outs across real processes.

    The pool is created *per fan-out* so the children always fork from the
    caller's current state — no staleness tracking, no leaked processes.
    Fork is required (state crosses by memory inheritance, not pickling);
    where fork is unavailable the executor degrades to inline execution
    rather than failing.
    """

    name = "process"

    @property
    def cpu_parallel(self) -> bool:
        return True

    def _map_impl(self, fn, items, state=None, labels=None, chunksize=1, trace=None):
        if len(items) <= 1 or self.workers <= 1:
            return Executor._map_impl(self, fn, items, state, labels, trace=trace)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            return Executor._map_impl(self, fn, items, state, labels, trace=trace)
        chunks = _chunk(items, chunksize)
        global _FORK_STATE
        with _FORK_LOCK:
            _FORK_STATE = state
            try:
                with concurrent.futures.ProcessPoolExecutor(
                    max_workers=min(self.workers, len(chunks)), mp_context=context
                ) as pool:
                    futures = [
                        pool.submit(_run_chunk_forked, fn, chunk, offset, trace)
                        for chunk, offset in chunks
                    ]
                    outcomes = []
                    for index, future in enumerate(futures):
                        try:
                            outcomes.append(future.result())
                        except BaseException as exc:  # noqa: BLE001 - transported, not hidden
                            # The pool itself failed for this chunk
                            # (unpicklable result, dead worker): record it
                            # as a transported failure at the chunk's first
                            # item, so _collect surfaces the first failed
                            # task in submission order even when an earlier
                            # chunk carried a transported error.
                            offset = chunks[index][1]
                            outcomes.append(("err", offset, repr(exc), exc, None))
            finally:
                _FORK_STATE = None
        return _collect(outcomes, chunks, labels)


# ----------------------------------------------------------------------
# resident pools: one long-lived pool across fan-outs
# ----------------------------------------------------------------------

_WARMUP_TIMEOUT = 30.0  # seconds a fork warm-up may take before degrading

# Every live resident executor, so interpreter exit can release their
# workers: without this, a resident pool that was simply abandoned (no
# explicit shutdown) leaks its processes/threads past the parent's exit
# handlers. WeakSet: the registry must never keep an executor alive.
_LIVE_RESIDENT: "weakref.WeakSet" = weakref.WeakSet()


def _atexit_shutdown_all() -> None:
    """Tear down every still-live resident pool at interpreter exit.

    Failures are swallowed: at this point the interpreter is dismantling
    itself and a pool that already half-died must not mask the process's
    real exit status.
    """
    for executor in list(_LIVE_RESIDENT):
        try:
            executor.shutdown()
        except Exception:  # noqa: BLE001 - exit path, nothing to recover
            pass


atexit.register(_atexit_shutdown_all)


def _warmup_barrier_init(barrier, timeout: float) -> None:
    """Worker initializer: hold every worker at a barrier until all forked.

    The point is *when* workers fork, not what they run: a resident fork
    pool must spawn every worker while the parent's ``_FORK_STATE`` is
    set, or a worker forked later (after the parent cleared it) would run
    tasks against the wrong state. Blocking each newly spawned worker here
    keeps it from going idle, which forces the pool to spawn a fresh
    process for every warm-up task — all inside the fork window.
    """
    try:
        barrier.wait(timeout)
    except Exception:  # noqa: BLE001 - a broken barrier only delays, fork is done
        pass


def _warmup_noop() -> None:
    return None


class _ResidencyUnavailable(RuntimeError):
    """The resident fork pool could not spawn all workers deterministically."""


class _IdleTimerMixin:
    """Idle teardown shared by the resident pools.

    Hosts provide ``self._lock``, ``self.idle_seconds``, ``self._pool``,
    and ``self._teardown()``; ``_idle_blocked()`` lets a host veto a
    firing timer (the thread pool does, while fan-outs are in flight).
    The generation counter invalidates a timer that fired but lost the
    lock race against new work, so a fresh burst is never torn down.
    """

    def _init_idle_timer(self) -> None:
        self._timer: Optional[threading.Timer] = None
        self._timer_generation = 0

    def _idle_blocked(self) -> bool:
        return False

    def _arm_timer(self) -> None:
        if self.idle_seconds <= 0 or self._pool is None:
            return
        self._timer_generation += 1
        generation = self._timer_generation
        self._timer = threading.Timer(
            self.idle_seconds, self._idle_teardown, args=(generation,)
        )
        self._timer.daemon = True
        self._timer.start()

    def _cancel_timer(self) -> None:
        self._timer_generation += 1  # invalidate any timer already firing
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _idle_teardown(self, generation: int) -> None:
        # Runs on the timer's thread, possibly racing shutdown() or the
        # interpreter's own exit sequence. The generation check makes a
        # timer that lost the race a no-op, and the blanket except keeps
        # a teardown that fires *during* interpreter shutdown (daemon
        # timer threads may still run while modules are being torn down)
        # from propagating into the timer thread. Idempotent by
        # construction: _teardown on an already-released pool is a no-op.
        try:
            with self._lock:
                if generation != self._timer_generation or self._idle_blocked():
                    return
                self._teardown(reason="idle")
        except Exception:  # noqa: BLE001 - timer thread, nothing to recover
            pass

    def _emit_pool_event(self, kind: str, **payload: Any) -> None:
        """Resident pool lifecycle onto the owning system's bus.

        May run on a timer thread; the bus serializes emission, and a
        missing bus (observability disabled, or a bare executor) is one
        attribute check.
        """
        events = self.events
        if events is not None:
            events.emit(kind, backend=self.name, workers=self.workers, **payload)


class ResidentThreadExecutor(_IdleTimerMixin, ThreadExecutor):
    """A thread pool kept alive across fan-outs.

    Threads read the ``state`` argument passed to each call directly from
    the live heap, so there is no staleness to manage — residency here
    only removes per-call pool construction and thread spawn. Concurrent
    fan-outs (the task graph overlaps link and duplicate stages) share the
    one pool; an idle timer releases the threads between bursts.
    """

    resident = True

    def __init__(self, workers: int, idle_seconds: float = _DEFAULT_IDLE_SECONDS):
        super().__init__(workers)
        self.idle_seconds = idle_seconds
        self.pools_started = 0  # observability: how often workers spun up
        self._lock = threading.Lock()
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._active = 0
        self._init_idle_timer()
        _LIVE_RESIDENT.add(self)  # released at interpreter exit if leaked

    @property
    def pool_alive(self) -> bool:
        return self._pool is not None

    def _map_impl(self, fn, items, state=None, labels=None, chunksize=1, trace=None):
        if len(items) <= 1 or self.workers <= 1:
            return Executor._map_impl(self, fn, items, state, labels, trace=trace)
        chunks = _chunk(items, chunksize)
        with self._lock:
            self._cancel_timer()
            if self._pool is None:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.workers
                )
                self.pools_started += 1
                self._emit_pool_event(POOL_SPAWNED, spins=self.pools_started)
            pool = self._pool
            self._active += 1
        try:
            futures = []
            for chunk, offset in chunks:
                try:
                    futures.append(
                        pool.submit(
                            _run_chunk_with_state, fn, state, chunk, offset, trace
                        )
                    )
                except RuntimeError:
                    # shutdown() closed the pool under an in-flight
                    # overlap: the contract still holds — finish the
                    # remaining chunks inline, same results, same order.
                    break
            outcomes = [future.result() for future in futures]
            for chunk, offset in chunks[len(futures):]:
                outcomes.append(_run_chunk_with_state(fn, state, chunk, offset, trace))
        finally:
            with self._lock:
                self._active -= 1
                if self._active == 0:
                    self._arm_timer()
        return _collect(outcomes, chunks, labels)

    def shutdown(self) -> None:
        with self._lock:
            self._cancel_timer()
            self._teardown(reason="shutdown")
        self._release_submit_pool()

    def _idle_blocked(self) -> bool:
        return bool(self._active)

    def _teardown(self, reason: str = "shutdown") -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
            self._emit_pool_event(POOL_TEARDOWN, reason=reason)


class ResidentProcessExecutor(_IdleTimerMixin, ProcessExecutor):
    """A fork pool kept alive across fan-outs — one fork per state change.

    Workers hold the shared state they inherited when the pool forked, so
    the pool is reusable for every fan-out that passes the *same* state
    object (``state is`` identity) and for stateless fan-outs (``state
    None`` travels pickled per task). A fan-out with a different state, or
    any call after :meth:`refresh_state`, tears the pool down and re-forks
    from current memory. This is what turns N fan-outs of an incremental
    maintenance session from N rounds of forks into one.

    Calls are serialized on an internal lock: the process backend never
    overlaps coordination stages anyway (``parallel_graph`` is False), and
    serializing keeps teardown/re-fork atomic with respect to in-flight
    work.
    """

    resident = True

    def __init__(self, workers: int, idle_seconds: float = _DEFAULT_IDLE_SECONDS):
        super().__init__(workers)
        self.idle_seconds = idle_seconds
        self.pools_forked = 0  # observability: how often workers re-forked
        self._lock = threading.RLock()
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._state: Any = None  # strong ref: the state the pool forked with
        self._degraded = False  # could not pre-spawn: fall back to per-call
        self._init_idle_timer()
        _LIVE_RESIDENT.add(self)  # released at interpreter exit if leaked

    @property
    def pool_alive(self) -> bool:
        return self._pool is not None

    def refresh_state(self) -> None:
        with self._lock:
            self._cancel_timer()
            self._teardown(reason="refresh_state")

    def shutdown(self) -> None:
        with self._lock:
            self._cancel_timer()
            self._teardown(reason="shutdown")
        self._release_submit_pool()

    def _map_impl(self, fn, items, state=None, labels=None, chunksize=1, trace=None):
        if len(items) <= 1 or self.workers <= 1:
            return Executor._map_impl(self, fn, items, state, labels, trace=trace)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            return Executor._map_impl(self, fn, items, state, labels, trace=trace)
        if self._degraded:
            # Deterministic pre-spawn failed once on this host: behave as
            # the per-call executor from here on rather than risk a
            # wrong-state worker.
            return super()._map_impl(
                fn, items, state=state, labels=labels, chunksize=chunksize,
                trace=trace,
            )
        with self._lock:
            self._cancel_timer()
            try:
                pool = self._ensure_pool(context, state)
            except _ResidencyUnavailable:
                self._degraded = True
                self._teardown(reason="degraded")
                return super()._map_impl(
                    fn, items, state=state, labels=labels, chunksize=chunksize,
                    trace=trace,
                )
            chunks = _chunk(items, chunksize)
            if state is not None and state is self._state:
                # The workers inherited this exact state at fork time.
                futures = [
                    pool.submit(_run_chunk_forked, fn, chunk, offset, trace)
                    for chunk, offset in chunks
                ]
            else:
                # Stateless fan-out on a pool forked for something else:
                # ship the (trivial) state pickled per task instead of
                # paying a re-fork.
                futures = [
                    pool.submit(
                        _run_chunk_with_state, fn, state, chunk, offset, trace
                    )
                    for chunk, offset in chunks
                ]
            outcomes = []
            pool_failure = False
            for index, future in enumerate(futures):
                try:
                    outcomes.append(future.result())
                except BaseException as exc:  # noqa: BLE001 - transported, not hidden
                    # Pool-level failure (dead worker, unpicklable result):
                    # record it as a transported failure at the chunk's
                    # first item, so _collect still surfaces the first
                    # failed task in *submission order* even when a later
                    # chunk's pool error completes before an earlier
                    # chunk's transported one.
                    offset = chunks[index][1]
                    outcomes.append(("err", offset, repr(exc), exc, None))
                    pool_failure = True
            if pool_failure:
                # The pool may be broken; re-fork next call.
                self._teardown(reason="pool_failure")
            else:
                self._arm_timer()
        return _collect(outcomes, chunks, labels)

    # -- pool lifecycle -------------------------------------------------
    def _ensure_pool(self, context, state: Any):
        if self._pool is not None and (state is None or state is self._state):
            return self._pool
        self._teardown(reason="state_change")
        self._pool = self._fork_pool(context, state)
        self._state = state
        self.pools_forked += 1
        self._emit_pool_event(POOL_SPAWNED, forks=self.pools_forked)
        return self._pool

    def _fork_pool(self, context, state: Any):
        """Fork a full complement of workers while the state is visible.

        Every worker must fork inside the window where ``_FORK_STATE`` is
        set — a worker spawned lazily on some later submit would inherit
        nothing. The barrier initializer keeps each warm-up worker busy so
        the pool's on-demand spawner starts a new process for every
        warm-up task; after the warm-ups drain we verify the full worker
        count actually exists and refuse residency otherwise.
        """
        global _FORK_STATE
        with _FORK_LOCK:
            _FORK_STATE = state
            try:
                barrier = context.Barrier(self.workers)
                pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=context,
                    initializer=_warmup_barrier_init,
                    initargs=(barrier, _WARMUP_TIMEOUT),
                )
                try:
                    warmups = [
                        pool.submit(_warmup_noop) for _ in range(self.workers)
                    ]
                    for future in warmups:
                        future.result(timeout=_WARMUP_TIMEOUT)
                except BaseException as exc:
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise _ResidencyUnavailable(repr(exc)) from exc
                processes = getattr(pool, "_processes", None)
                if processes is None or len(processes) < self.workers:
                    # Could not prove every worker forked in the window.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise _ResidencyUnavailable(
                        f"spawned {0 if processes is None else len(processes)}"
                        f"/{self.workers} workers inside the fork window"
                    )
            finally:
                _FORK_STATE = None
        return pool

    def _teardown(self, reason: str = "shutdown") -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._emit_pool_event(POOL_TEARDOWN, reason=reason)
        self._state = None


class AutoExecutor(Executor):
    """Measurement-driven backend selection, per stage kind.

    Holds two arms — an inline :class:`SerialExecutor` and the configured
    pool (``auto_parallel`` backend, same workers/residency) — and routes
    each fan-out to one of them based on the owning system's
    :class:`~repro.obs.timing.WorkloadCalibration`:

    * single-item fan-outs always run inline (no pool could help);
    * while a stage kind is uncalibrated the arms are explored in a fixed
      order (serial first, then parallel, :data:`~repro.obs.timing.MIN_RUNS`
      fan-outs each);
    * once calibrated, the faster arm is chosen and **cached for the
      session** — a stage kind never flip-flops mid-run, and given the
      same calibration sidecar the choices are fully deterministic.

    Every routed fan-out's wall time feeds back into the calibration, so
    the record sharpens as the warehouse works. Results are byte-identical
    across arms by the executor determinism contract; only wall-clock
    changes. Capability properties (``cpu_parallel``, ``parallel_graph``,
    ``resident``) mirror the parallel arm so fan-out *shape* gates
    upstream behave as if the pool were always on — auto then decides
    whether the shape actually fans out.
    """

    name = "auto"

    def __init__(self, config: ExecConfig):
        self._metrics = None
        self._events = None
        self._tracer = None
        super().__init__(config.workers)
        parallel_backend = config.auto_parallel
        if parallel_backend not in ("thread", "process"):
            parallel_backend = "process"
        self._serial = SerialExecutor(1)
        self._parallel = create_executor(
            ExecConfig(
                backend=parallel_backend,
                workers=config.workers,
                resident=config.resident,
                idle_seconds=config.idle_seconds,
                auto_parallel=parallel_backend,
            )
        )
        self.calibration = WorkloadCalibration()
        #: Stage kind -> arm, frozen at first calibrated choice.
        self.decisions: Dict[str, str] = {}

    # -- observability handles propagate to both arms -------------------
    @property
    def metrics(self):
        return self._metrics

    @metrics.setter
    def metrics(self, value):
        self._metrics = value
        self._serial.metrics = value
        self._parallel.metrics = value

    @property
    def events(self):
        return self._events

    @events.setter
    def events(self, value):
        self._events = value
        self._serial.events = value
        self._parallel.events = value

    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, value):
        self._tracer = value
        self._serial.tracer = value
        self._parallel.tracer = value

    # -- capabilities mirror the parallel arm ----------------------------
    @property
    def parallel_graph(self) -> bool:
        return self._parallel.parallel_graph

    @property
    def cpu_parallel(self) -> bool:
        return self._parallel.cpu_parallel

    @property
    def resident(self) -> bool:
        return self._parallel.resident

    @property
    def pool_alive(self) -> bool:
        return bool(getattr(self._parallel, "pool_alive", False))

    @property
    def pools_started(self) -> int:
        return getattr(self._parallel, "pools_started", 0)

    @property
    def pools_forked(self) -> int:
        return getattr(self._parallel, "pools_forked", 0)

    @property
    def parallel_backend(self) -> str:
        return self._parallel.name

    def refresh_state(self) -> None:
        self._parallel.refresh_state()

    def shutdown(self) -> None:
        self._parallel.shutdown()
        self._serial.shutdown()
        self._release_submit_pool()

    # -- calibration persistence ----------------------------------------
    def load_calibration(self, path: str) -> None:
        """Replace the in-memory record with the sidecar's (missing or
        corrupt file -> empty record) and forget cached decisions."""
        self.calibration = WorkloadCalibration.load(path)
        self.decisions = {}

    def save_calibration(self, path: str) -> None:
        self.calibration.save(path)

    # -- routing ---------------------------------------------------------
    def _choose(self, stage: str) -> str:
        arm = self.decisions.get(stage)
        if arm is not None:
            return arm
        arm, calibrated = self.calibration.choose(stage)
        if calibrated:
            self.decisions[stage] = arm
        return arm

    def map_ordered(self, fn, items, state=None, labels=None, chunksize=1, stage=None):
        items = list(items)
        if len(items) <= 1:
            # Inline, and unrecorded: neither arm could differ here.
            return self._serial.map_ordered(
                fn, items, state=state, labels=labels, chunksize=chunksize,
                stage=stage,
            )
        stage = stage or _stage_kind(fn, labels)
        arm = self._choose(stage)
        delegate = self._parallel if arm == PARALLEL else self._serial
        metrics = self._metrics
        if metrics is not None:
            metrics.counter(f"auto.{stage}.{arm}").inc()
        started = perf_counter()
        results = delegate.map_ordered(
            fn, items, state=state, labels=labels, chunksize=chunksize, stage=stage
        )
        self.calibration.record(stage, arm, len(items), perf_counter() - started)
        return results

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<AutoExecutor workers={self.workers} "
            f"parallel={self._parallel!r} decisions={self.decisions}>"
        )


def _chunk(items: List[Any], chunksize: int) -> List[Tuple[List[Any], int]]:
    chunksize = max(1, int(chunksize))
    return [
        (items[start : start + chunksize], start)
        for start in range(0, len(items), chunksize)
    ]


def _label(labels: Optional[Sequence[str]], index: int) -> str:
    if labels is not None and index < len(labels):
        return labels[index]
    return f"task[{index}]"


def _collect(
    outcomes, chunks, labels
) -> Tuple[List[Any], float, Optional[List[Dict[str, Any]]]]:
    """Flatten chunk outcomes in item order; raise for the first failure.

    Returns ``(results, busy_seconds, worker_spans)`` where busy is the
    sum of the chunks' in-worker wall times — the numerator of pool
    utilization — and worker_spans gathers the chunks' recorded ``task``
    spans in deterministic *submission* order (chunks were submitted in
    item order and are iterated here in that same order), ready for
    ``Tracer.adopt``.  ``None`` when the fan-out was untraced.
    """
    failure: Optional[Tuple[int, str, BaseException]] = None
    results: List[Any] = []
    busy = 0.0
    spans: Optional[List[Dict[str, Any]]] = None
    for outcome in outcomes:
        chunk_spans = outcome[3] if outcome[0] == "ok" else outcome[4]
        if chunk_spans:
            spans = chunk_spans if spans is None else spans + chunk_spans
        if outcome[0] == "ok":
            results.extend(outcome[1])
            busy += outcome[2]
            continue
        _, index, rendered, exc, _spans = outcome
        if failure is None or index < failure[0]:
            failure = (index, rendered, exc)
    if failure is not None:
        index, rendered, exc = failure
        raise ExecError(
            f"task {_label(labels, index)!r} failed: {rendered}",
            task=_label(labels, index),
        ) from exc
    return results, busy, spans


def create_executor(config: Optional[ExecConfig] = None) -> Executor:
    """Build the executor a configuration asks for."""
    config = config or ExecConfig()
    backend = (config.backend or "serial").lower()
    resident = bool(getattr(config, "resident", False))
    idle_seconds = getattr(config, "idle_seconds", _DEFAULT_IDLE_SECONDS)
    if backend == "thread":
        if resident:
            return ResidentThreadExecutor(config.workers, idle_seconds=idle_seconds)
        return ThreadExecutor(config.workers)
    if backend == "process":
        if resident:
            return ResidentProcessExecutor(config.workers, idle_seconds=idle_seconds)
        return ProcessExecutor(config.workers)
    if backend == "auto":
        return AutoExecutor(config)
    if backend != "serial":
        raise ValueError(
            f"unknown execution backend {config.backend!r}; known: {', '.join(BACKENDS)}"
        )
    # Always 1: ``workers`` doubles as the "is this parallel" signal for
    # fan-out gates (e.g. InvertedIndex.add_pages), and a serial executor
    # must never make them take the fan-out path.
    return SerialExecutor(1)
