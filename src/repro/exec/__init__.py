"""Parallel execution subsystem: task graphs over pluggable worker pools.

Two halves: :mod:`repro.exec.pool` provides the ``Executor`` API with
serial, thread, and fork-process backends behind one ordered fan-out
contract; :mod:`repro.exec.graph` schedules named task DAGs onto it.
Everything above (link discovery fan-out, the pipelined ``add_source``
graph, bulk ``integrate_many``) is written against these two and is
byte-identical across backends by construction.
"""

from repro.exec.graph import Task, TaskGraph
from repro.exec.pool import (
    BACKENDS,
    AutoExecutor,
    ExecConfig,
    ExecError,
    Executor,
    ProcessExecutor,
    ResidentProcessExecutor,
    ResidentThreadExecutor,
    SerialExecutor,
    ThreadExecutor,
    create_executor,
)

__all__ = [
    "AutoExecutor",
    "BACKENDS",
    "ExecConfig",
    "ExecError",
    "Executor",
    "ProcessExecutor",
    "ResidentProcessExecutor",
    "ResidentThreadExecutor",
    "SerialExecutor",
    "Task",
    "TaskGraph",
    "ThreadExecutor",
    "create_executor",
]
