"""Project-specific static analysis + runtime sanitizers.

A leaf package (like ``obs``): it imports nothing from the rest of
``repro``, so every layer — and CI — can run it without dragging the
pipeline in.  The pieces:

* :mod:`repro.analysis.engine` — one-walk AST engine with pluggable
  checkers and inline ``# repro-lint: allow[...]`` suppressions;
* :mod:`repro.analysis.checkers` — the rule battery (layering,
  fork/thread-safety, lock-order, determinism, canonical-JSON,
  obs-seam, broad-except);
* :mod:`repro.analysis.baseline` — grandfathering for legacy findings,
  each with a written justification;
* :mod:`repro.analysis.lockwatch` — the opt-in runtime lock-order
  sanitizer (``REPRO_ANALYSIS_LOCKWATCH=1``).

Entry point: ``repro lint`` (see :mod:`repro.cli`).
"""

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.engine import (
    AnalysisEngine,
    Checker,
    ModuleContext,
    iter_python_files,
    module_name_for,
    parse_suppressions,
)
from repro.analysis.model import Finding, Report, make_finding

__all__ = [
    "AnalysisEngine",
    "Baseline",
    "BaselineError",
    "Checker",
    "Finding",
    "ModuleContext",
    "Report",
    "iter_python_files",
    "make_finding",
    "module_name_for",
    "parse_suppressions",
]
