"""The static-analysis engine: one AST walk, pluggable checkers.

The engine parses every Python file once, walks the tree once, and
dispatches each node to every registered checker that declared interest
in that node type — so adding a checker costs a dict lookup per node,
not another walk.  Checkers see a :class:`ModuleContext` (path, dotted
module name, source lines, parent links, suppression table) and report
through ``ctx.report(...)``; project-scoped checkers (layering tables,
the lock-order graph) additionally get an ``end_project`` pass after
every module has been visited.

Inline suppression syntax, recognized on the offending line or the line
directly above it::

    # repro-lint: allow[rule-id] justification for the exemption
    # repro-lint: allow[rule-a,rule-b] one comment may allow several

The ``broad-except`` rule additionally honors the repo's pre-existing
``# noqa: BLE001`` idiom, so intentional broad handlers annotated before
this engine existed keep their annotations.

Findings that survive suppression are matched against a
:class:`~repro.analysis.baseline.Baseline`; matches are reported
separately and do not fail a lint run, so legacy findings can be
grandfathered (with a written justification) without blocking CI.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.baseline import Baseline
from repro.analysis.model import Finding, Report, make_finding

#: ``# repro-lint: allow[rule-a,rule-b] free-text justification``
_ALLOW_RE = re.compile(r"#\s*repro-lint:\s*allow\[([a-zA-Z0-9_,\-\s]+)\]")
#: The repo's pre-existing broad-except annotation idiom.
_NOQA_BLE_RE = re.compile(r"#\s*noqa:\s*BLE001")

#: Rules silenced by ``# noqa: BLE001`` (the legacy spelling).
_NOQA_BLE_RULES = ("broad-except",)


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of rule ids allowed on that line.

    A comment suppresses its own line *and* the following line, so an
    annotation may sit above a long statement::

        # repro-lint: allow[raw-json-dumps] legacy bytes must replay
        data = json.dumps(list(tup), separators=(",", ":"))
    """
    table: Dict[int, Set[str]] = {}

    def allow(line: int, rules: Iterable[str]) -> None:
        for target in (line, line + 1):
            table.setdefault(target, set()).update(rules)

    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(token.string)
            if match:
                rules = {
                    rule.strip()
                    for rule in match.group(1).split(",")
                    if rule.strip()
                }
                allow(token.start[0], rules)
            if _NOQA_BLE_RE.search(token.string):
                allow(token.start[0], _NOQA_BLE_RULES)
    except tokenize.TokenError:
        pass  # a half-written file still gets checked, just unsuppressed
    return table


def module_name_for(path: str) -> str:
    """Dotted module name derived from the file path.

    The name starts at the *last* path component named ``repro`` so the
    same file resolves identically whether scanned as ``src/repro/...``,
    an installed tree, or a test fixture under ``<tmp>/repro/...``.
    Files outside any ``repro`` directory fall back to their stem.
    """
    parts = os.path.normpath(path).split(os.sep)
    base = None
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            base = index
            break
    if base is None:
        return os.path.splitext(parts[-1])[0]
    dotted = parts[base:]
    dotted[-1] = os.path.splitext(dotted[-1])[0]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


class ModuleContext:
    """Everything a checker may want to know about the file being walked."""

    def __init__(self, path: str, display_path: str, source: str, tree: ast.AST):
        self.path = path
        #: Path as reported in findings (repo-relative when possible).
        self.display_path = display_path
        self.module = module_name_for(path)
        self.source_lines = source.splitlines()
        self.tree = tree
        self.suppressions = parse_suppressions(source)
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.findings: List[Finding] = []
        self.suppressed = 0

    @property
    def package(self) -> str:
        """Top-level package under ``repro`` (``repro.serve.cache`` ->
        ``serve``); top-level modules return their own name (``cli``)."""
        parts = self.module.split(".")
        if parts[0] != "repro" or len(parts) == 1:
            return parts[0]
        return parts[1]

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def is_suppressed(self, line: int, rule: str) -> bool:
        return rule in self.suppressions.get(line, ())

    def report(
        self, rule: str, node: ast.AST, message: str, hint: str = ""
    ) -> None:
        line = getattr(node, "lineno", 1)
        if self.is_suppressed(line, rule):
            self.suppressed += 1
            return
        self.findings.append(
            make_finding(
                rule,
                self.display_path,
                line,
                message,
                hint=hint,
                source_lines=self.source_lines,
            )
        )


class Checker:
    """Base class for pluggable rules.

    ``rule`` is the id findings carry; ``interests`` the AST node types
    the engine dispatches to :meth:`visit` (empty means every node).
    Module-scoped state belongs in :meth:`begin_module`; project-scoped
    aggregation (cross-file graphs) in :meth:`end_project`, which
    reports through the engine's project-finding hook.
    """

    rule: str = ""
    interests: Tuple[type, ...] = ()

    def begin_module(self, ctx: ModuleContext) -> None:  # pragma: no cover
        pass

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:  # pragma: no cover
        pass

    def end_module(self, ctx: ModuleContext) -> None:  # pragma: no cover
        pass

    def end_project(self, engine: "AnalysisEngine") -> List[Finding]:
        return []


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if d not in ("__pycache__", ".git")
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    found.append(os.path.join(root, name))
    return sorted(found)


class AnalysisEngine:
    """Run a battery of checkers over a file set in one AST walk each."""

    def __init__(
        self,
        checkers: Sequence[Checker],
        baseline: Optional[Baseline] = None,
        root: Optional[str] = None,
    ):
        self.checkers = list(checkers)
        self.baseline = baseline or Baseline()
        #: Paths in findings are made relative to this (default: cwd).
        self.root = os.path.abspath(root or os.getcwd())
        self._dispatch: Dict[type, List[Checker]] = {}
        self._everything: List[Checker] = []
        for checker in self.checkers:
            if not checker.interests:
                self._everything.append(checker)
                continue
            for node_type in checker.interests:
                self._dispatch.setdefault(node_type, []).append(checker)

    def _display_path(self, path: str) -> str:
        absolute = os.path.abspath(path)
        if absolute.startswith(self.root + os.sep):
            relative = os.path.relpath(absolute, self.root)
        else:
            relative = path
        return relative.replace(os.sep, "/")

    def check_source(self, path: str, source: str) -> ModuleContext:
        """Walk one already-read module; returns its context (findings
        included, suppressions applied, baseline NOT yet applied)."""
        tree = ast.parse(source, filename=path)
        ctx = ModuleContext(path, self._display_path(path), source, tree)
        for checker in self.checkers:
            checker.begin_module(ctx)
        for node in ast.walk(tree):
            for checker in self._dispatch.get(type(node), ()):
                checker.visit(node, ctx)
            for checker in self._everything:
                checker.visit(node, ctx)
        for checker in self.checkers:
            checker.end_module(ctx)
        return ctx

    def run(self, paths: Sequence[str]) -> Report:
        """Check every file under ``paths`` and fold in project passes."""
        findings: List[Finding] = []
        suppressed = 0
        checked = 0
        for path in iter_python_files(paths):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    source = fh.read()
            except (OSError, UnicodeDecodeError):
                continue
            try:
                ctx = self.check_source(path, source)
            except SyntaxError as exc:
                findings.append(
                    Finding(
                        rule="syntax-error",
                        path=self._display_path(path),
                        line=exc.lineno or 1,
                        message=f"file does not parse: {exc.msg}",
                        context=str(exc.msg),
                    )
                )
                checked += 1
                continue
            findings.extend(ctx.findings)
            suppressed += ctx.suppressed
            checked += 1
        for checker in self.checkers:
            findings.extend(checker.end_project(self))
        live, baselined, stale = self.baseline.split(findings)
        return Report(
            findings=live,
            baselined=baselined,
            suppressed=suppressed,
            checked_files=checked,
            stale_baseline=stale,
        )
