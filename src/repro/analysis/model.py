"""The findings model of the static-analysis engine.

A :class:`Finding` is one rule violation at one source location:
``file:line``, the rule id, a one-line message, and a fix hint telling
the author what the compliant code looks like.  Findings carry a
*fingerprint* — a stable hash over the rule, the file, and the
(whitespace-normalized) offending source line — which is what the
baseline file matches on, so a finding survives unrelated edits that
shift line numbers but stops matching the moment the offending line
itself changes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


def _normalize(text: str) -> str:
    return " ".join(text.split())


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative where possible, always forward slashes
    line: int
    message: str
    hint: str = ""
    #: The offending source line, whitespace-normalized; the stable part
    #: of the fingerprint.
    context: str = ""
    #: Populated when the finding matched a baseline entry.
    baselined: bool = field(default=False, compare=False)

    @property
    def fingerprint(self) -> str:
        payload = f"{self.rule}\x1f{self.path}\x1f{_normalize(self.context)}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
            "baselined": self.baselined,
        }

    def render(self) -> str:
        text = f"{self.location}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class Report:
    """The outcome of one engine run over a file set."""

    findings: list  # List[Finding], baselined ones excluded
    baselined: list  # List[Finding] matched by the baseline
    suppressed: int  # findings silenced by inline allow comments
    checked_files: int
    stale_baseline: list  # baseline fingerprints that matched nothing

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, Any]:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "suppressed": self.suppressed,
            "checked_files": self.checked_files,
            "stale_baseline": list(self.stale_baseline),
            "clean": self.clean,
        }

    def render(self, verbose: bool = False) -> str:
        lines = []
        for finding in self.findings:
            lines.append(finding.render())
        if verbose:
            for finding in self.baselined:
                lines.append(f"(baselined) {finding.render()}")
        summary = (
            f"{len(self.findings)} finding(s), {len(self.baselined)} "
            f"baselined, {self.suppressed} suppressed, "
            f"{self.checked_files} file(s) checked"
        )
        if self.stale_baseline:
            summary += f", {len(self.stale_baseline)} stale baseline entr(ies)"
        lines.append(summary)
        return "\n".join(lines)


def make_finding(
    rule: str,
    path: str,
    line: int,
    message: str,
    hint: str = "",
    context: Optional[str] = None,
    source_lines: Optional[list] = None,
) -> Finding:
    """Build a finding, deriving ``context`` from the source when given."""
    if context is None and source_lines and 1 <= line <= len(source_lines):
        context = source_lines[line - 1]
    return Finding(
        rule=rule,
        path=path,
        line=line,
        message=message,
        hint=hint,
        context=context or "",
    )
