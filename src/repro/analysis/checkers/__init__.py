"""The checker battery: project-specific rules for the ALADIN repro.

``DEFAULT_CHECKER_TYPES`` is the registry the CLI builds from; each
entry is a zero-argument class so every run gets fresh project state
(the lock-order graph accumulates across files within one run).
"""

from __future__ import annotations

from typing import List, Sequence, Type

from repro.analysis.engine import Checker
from repro.analysis.checkers.broadexcept import BroadExceptChecker
from repro.analysis.checkers.canonjson import CanonicalJsonChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.forksafety import ForkSafetyChecker
from repro.analysis.checkers.layering import LayeringChecker
from repro.analysis.checkers.lockorder import LockOrderChecker
from repro.analysis.checkers.obsseam import ObsSeamChecker

DEFAULT_CHECKER_TYPES: Sequence[Type[Checker]] = (
    LayeringChecker,
    ForkSafetyChecker,
    LockOrderChecker,
    DeterminismChecker,
    CanonicalJsonChecker,
    BroadExceptChecker,
    ObsSeamChecker,
)


def build_checkers() -> List[Checker]:
    """A fresh instance of every default checker."""
    return [checker_type() for checker_type in DEFAULT_CHECKER_TYPES]


__all__ = [
    "BroadExceptChecker",
    "CanonicalJsonChecker",
    "DeterminismChecker",
    "ForkSafetyChecker",
    "LayeringChecker",
    "LockOrderChecker",
    "ObsSeamChecker",
    "DEFAULT_CHECKER_TYPES",
    "build_checkers",
]
