"""Determinism checker: no unordered iteration on merge paths.

The parallel pipeline's contract is byte-identical output on every
backend, which holds because fan-outs merge in *fixed* order.  Iterating
a bare ``set`` (literal, constructor, comprehension, or set algebra) —
whose order depends on string-hash randomization — or a bare
``dict.keys()`` view inside the linking/exec/core merge layers is how
that contract silently breaks: the iteration feeds an output whose order
changes run to run unless it passes through ``sorted``.

The rule is scoped to the packages whose iteration order reaches merged
output (``linking``, ``exec``, ``core``); wrapping the expression in
``sorted(...)`` — or any explicit ordering — satisfies it.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Checker, ModuleContext

RULE = "unordered-iteration"

#: Packages whose iteration order can reach merged, pinned output.
SCOPED_PACKAGES = frozenset({"linking", "exec", "core"})

_SET_CALLS = frozenset({"set", "frozenset"})


def _is_unordered(expr: ast.AST) -> bool:
    """Is ``expr`` a syntactic form whose iteration order is unordered?"""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in _SET_CALLS:
            return True
        if isinstance(func, ast.Attribute) and func.attr == "keys":
            return True
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # Set algebra produces a set whenever either operand is set-like.
        return _is_unordered(expr.left) or _is_unordered(expr.right)
    return False


def _describe(expr: ast.AST) -> str:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "a set expression"
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        return "a dict.keys() view"
    if isinstance(expr, ast.BinOp):
        return "a set-algebra result"
    return "a set constructor"


class DeterminismChecker(Checker):
    rule = RULE
    interests = (ast.For, ast.comprehension)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if ctx.package not in SCOPED_PACKAGES:
            return
        expr = node.iter
        if not _is_unordered(expr):
            return
        report_node = node if isinstance(node, ast.For) else expr
        ctx.report(
            RULE,
            report_node,
            f"iteration over {_describe(expr)} on a merge path",
            hint="wrap the iterable in sorted(...) (or iterate an "
            "ordered structure): unordered iteration here can leak "
            "hash-randomized order into pinned byte-identical output",
        )
