"""Lock-order checker: the static acquisition graph must be acyclic.

Every lexically nested ``with <lock>:`` pair contributes a directed edge
*held -> acquired* to a project-wide graph.  Two threads taking the same
pair of locks in opposite orders is the textbook deadlock, and it is
visible statically: a cycle in the acquisition graph.  This checker
records edges per module (stopping at function boundaries, so a callback
defined inside a critical section does not count as held-across-call)
and reports each cycle once, at the location of the edge that closes it.

Lock identity is the attribute path qualified by module and enclosing
class — ``repro.exec.pool.ResidentPool._lock`` — so ``self._lock`` in
two different classes stays two different locks.  Only names that look
like locks (``lock``/``guard``/``mutex`` substrings) participate;
arbitrary context managers (files, connections) are ignored.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.analysis.engine import AnalysisEngine, Checker, ModuleContext
from repro.analysis.model import Finding

RULE = "lock-order-cycle"

_LOCKISH_MARKERS = ("lock", "guard", "mutex")


def _lock_expr(item: ast.withitem) -> Optional[ast.AST]:
    """The lock expression of a with-item, or None if not lock-like."""
    expr = item.context_expr
    # ``with lock.acquire_timeout(...)`` style: look at the call target.
    target = expr.func if isinstance(expr, ast.Call) else expr
    name = None
    if isinstance(target, ast.Attribute):
        name = target.attr
    elif isinstance(target, ast.Name):
        name = target.id
    if name is None:
        return None
    lowered = name.lower()
    if any(marker in lowered for marker in _LOCKISH_MARKERS):
        return target
    return None


def _enclosing_class(node: ast.AST, ctx: ModuleContext) -> Optional[str]:
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor.name
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # keep climbing: methods live inside classes
            continue
    return None


def _lock_identity(expr: ast.AST, ctx: ModuleContext) -> str:
    """Stable cross-file identity for a lock expression."""
    text = ast.unparse(expr)
    if text.startswith("self."):
        cls = _enclosing_class(expr, ctx)
        scope = cls if cls is not None else "<module>"
        return f"{ctx.module}.{scope}.{text[len('self.'):]}"
    return f"{ctx.module}.{text}"


class LockOrderChecker(Checker):
    rule = RULE
    interests = (ast.With, ast.AsyncWith)

    def __init__(self) -> None:
        #: (held, acquired) -> (display_path, line, source line text)
        self.edges: Dict[Tuple[str, str], Tuple[str, int, str]] = {}

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        acquired = [
            _lock_identity(expr, ctx)
            for item in node.items
            for expr in [_lock_expr(item)]
            if expr is not None
        ]
        if not acquired:
            return
        held = self._held_locks(node, ctx)
        # Multi-item ``with a, b:`` acquires left-to-right: a is held
        # when b is taken.
        ordered = list(held)
        for lock in acquired:
            for prior in ordered:
                self._record_edge(prior, lock, node, ctx)
            ordered.append(lock)

    def _held_locks(self, node: ast.AST, ctx: ModuleContext) -> List[str]:
        """Locks held lexically at ``node``, outermost first, within the
        same function scope."""
        held: List[str] = []
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break  # an enclosing def is a separate dynamic scope
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    expr = _lock_expr(item)
                    if expr is not None:
                        held.append(_lock_identity(expr, ctx))
        held.reverse()
        return held

    def _record_edge(
        self, held: str, acquired: str, node: ast.AST, ctx: ModuleContext
    ) -> None:
        if held == acquired:
            return  # re-entrant RLock acquisition, not an ordering edge
        line = getattr(node, "lineno", 1)
        if ctx.is_suppressed(line, RULE):
            return
        key = (held, acquired)
        if key not in self.edges:
            text = ""
            if 1 <= line <= len(ctx.source_lines):
                text = ctx.source_lines[line - 1]
            self.edges[key] = (ctx.display_path, line, text)

    def end_project(self, engine: AnalysisEngine) -> List[Finding]:
        adjacency: Dict[str, List[str]] = {}
        for held, acquired in self.edges:
            adjacency.setdefault(held, []).append(acquired)
        for targets in adjacency.values():
            targets.sort()

        findings: List[Finding] = []
        seen_cycles = set()
        for start in sorted(adjacency):
            cycle = self._find_cycle(start, adjacency)
            if cycle is None:
                continue
            canonical = self._canonical(cycle)
            if canonical in seen_cycles:
                continue
            seen_cycles.add(canonical)
            findings.append(self._cycle_finding(cycle))
        return findings

    @staticmethod
    def _canonical(cycle: List[str]) -> Tuple[str, ...]:
        """Rotate a cycle so it starts at its smallest node."""
        pivot = cycle.index(min(cycle))
        return tuple(cycle[pivot:] + cycle[:pivot])

    @staticmethod
    def _find_cycle(
        start: str, adjacency: Dict[str, List[str]]
    ) -> Optional[List[str]]:
        """DFS from ``start``; the first cycle reached, or None."""
        stack: List[Tuple[str, List[str]]] = [(start, [start])]
        visited = set()
        while stack:
            node, path = stack.pop()
            for target in adjacency.get(node, ()):
                if target in path:
                    return path[path.index(target):]
                if target in visited:
                    continue
                visited.add(target)
                stack.append((target, path + [target]))
        return None

    def _cycle_finding(self, cycle: List[str]) -> Finding:
        ordered = list(self._canonical(cycle))
        loop = ordered + [ordered[0]]
        edge_locs = []
        for held, acquired in zip(loop, loop[1:]):
            path, line, _text = self.edges[(held, acquired)]
            edge_locs.append(f"{held} -> {acquired} at {path}:{line}")
        first_path, first_line, first_text = self.edges[(loop[0], loop[1])]
        return Finding(
            rule=RULE,
            path=first_path,
            line=first_line,
            message=(
                "lock acquisition cycle: " + " -> ".join(loop)
                + "; edges: " + "; ".join(edge_locs)
            ),
            hint="pick one global order for these locks and acquire them "
            "in that order everywhere, or collapse them into one lock",
            context=f"cycle:{'|'.join(ordered)}",
        )
