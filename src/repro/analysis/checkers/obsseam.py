"""Obs-seam checker: hot-path telemetry access must be None-guarded.

The zero-cost-when-disabled contract: ``Observability.metrics_or_none``
/ ``events_or_none`` / ``trace_or_none`` return ``None`` when telemetry
is off, so instrumented hot paths pay one identity check.  Chaining a
call or attribute straight off the accessor —
``aladin.obs.metrics_or_none.counter("x").inc()`` — crashes the moment
someone sets ``REPRO_OBS=0``.  The compliant shape binds the handle
first and guards it::

    metrics = aladin.obs.metrics_or_none
    if metrics is not None:
        metrics.counter("x").inc()
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Checker, ModuleContext

RULE = "unguarded-obs"

_ACCESSORS = frozenset({"metrics_or_none", "events_or_none", "trace_or_none"})


class ObsSeamChecker(Checker):
    rule = RULE
    interests = (ast.Attribute,)

    def visit(self, node: ast.Attribute, ctx: ModuleContext) -> None:
        if node.attr not in _ACCESSORS:
            return
        parent = ctx.parent(node)
        # Direct chaining: the accessor is itself the object of another
        # attribute access (``...metrics_or_none.counter``) or subscript.
        chained = (
            isinstance(parent, ast.Attribute) and parent.value is node
        ) or (isinstance(parent, ast.Subscript) and parent.value is node)
        # ``...metrics_or_none(...)`` — calling the property result.
        called = isinstance(parent, ast.Call) and parent.func is node
        if not (chained or called):
            return
        ctx.report(
            RULE,
            node,
            f"telemetry accessor '{node.attr}' used without a None guard",
            hint="bind it first (handle = obj.obs."
            f"{node.attr}) and guard with 'if handle is not None' — the "
            "accessor returns None when observability is disabled",
        )
