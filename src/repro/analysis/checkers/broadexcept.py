"""Broad-except checker: every ``except Exception`` must be deliberate.

Concurrent code that swallows everything hides real races.  The rule
flags bare ``except:``, ``except Exception``, and ``except
BaseException`` handlers unless one of the following holds:

* the handler body re-raises (``raise`` with no argument) or wraps and
  chains (``raise Other(...) from exc`` naming the caught exception) —
  both keep the failure alive instead of swallowing it;
* the line carries ``# noqa: BLE001`` (the repo's pre-existing
  annotation idiom for intentional guard seams) or a
  ``# repro-lint: allow[broad-except]`` comment.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Checker, ModuleContext

RULE = "broad-except"

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True  # bare except
    node = handler.type
    if isinstance(node, ast.Name):
        return node.id in _BROAD_NAMES
    if isinstance(node, ast.Tuple):
        return any(
            isinstance(e, ast.Name) and e.id in _BROAD_NAMES for e in node.elts
        )
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Does the handler body end by propagating the caught exception —
    either a bare ``raise`` or ``raise Other(...) from exc``?"""
    body = handler.body
    if not body:
        return False
    last = body[-1]
    if not isinstance(last, ast.Raise):
        return False
    if last.exc is None:
        return True
    return (
        handler.name is not None
        and isinstance(last.cause, ast.Name)
        and last.cause.id == handler.name
    )


class BroadExceptChecker(Checker):
    rule = RULE
    interests = (ast.ExceptHandler,)

    def visit(self, node: ast.ExceptHandler, ctx: ModuleContext) -> None:
        if not _is_broad(node) or _reraises(node):
            return
        caught = "bare except" if node.type is None else ast.unparse(node.type)
        ctx.report(
            RULE,
            node,
            f"broad handler ({caught}) without an annotation",
            hint="narrow to the exception types the block can actually "
            "raise, or — for an intentional guard seam — annotate with "
            "# noqa: BLE001 and the reason",
        )
