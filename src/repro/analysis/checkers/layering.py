"""Layering checker: each package imports only layers below it.

The rank table is the machine-readable form of the ROADMAP architecture
map.  Rank 0 packages are leaves (``obs`` and ``analysis`` may import
nothing from ``repro`` at all — that is what lets every other layer
depend on them without cycles); every other package may import strictly
lower-ranked packages only.  Equal-rank packages are siblings and must
not import each other either — a sideways import is how cycles start.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.engine import Checker, ModuleContext

RULE = "layering"

#: Import rank per top-level package under ``repro`` (plus the top-level
#: modules ``cli``/``__main__``).  Lower rank = lower layer.  Mirrors the
#: ROADMAP table: storage/substrate (relational) and the obs + analysis
#: leaves at the bottom, the pipeline layers in consumption order, then
#: persist under core, with the serving/eval/CLI surfaces on top.
LAYER_RANKS = {
    "obs": 0,
    "analysis": 0,
    "relational": 0,
    "dataimport": 1,
    "discovery": 1,
    "exec": 1,
    "linking": 2,
    "synth": 2,
    "duplicates": 3,
    "metadata": 4,
    "access": 5,
    "persist": 6,
    "core": 7,
    "serve": 8,
    "eval": 8,
    "cli": 9,
    "__main__": 10,
}

#: Leaf packages: may not import *anything* from repro outside themselves.
LEAVES = frozenset({"obs", "analysis"})


def _import_targets(node: ast.AST, ctx: ModuleContext):
    """Yield the top-level repro package each import statement touches."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split(".")
            if parts[0] == "repro":
                yield parts[1] if len(parts) > 1 else "repro"
    elif isinstance(node, ast.ImportFrom):
        if node.level == 0:
            if node.module and node.module.split(".")[0] == "repro":
                parts = node.module.split(".")
                yield parts[1] if len(parts) > 1 else "repro"
        else:
            resolved = _resolve_relative(node, ctx)
            if resolved is not None:
                yield resolved


def _resolve_relative(node: ast.ImportFrom, ctx: ModuleContext) -> Optional[str]:
    """Top-level repro package a relative import lands in, or None."""
    parts = ctx.module.split(".")
    if parts[0] != "repro":
        return None
    # ``from . import x`` in repro/a/b.py: level 1 -> repro.a
    base = parts[:-1]
    hops = node.level - 1
    if hops >= len(base):
        return None
    if hops:
        base = base[:-hops]
    if node.module:
        base = base + node.module.split(".")
    if len(base) < 2 or base[0] != "repro":
        return None
    return base[1]


class LayeringChecker(Checker):
    rule = RULE
    interests = (ast.Import, ast.ImportFrom)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        own = ctx.package
        own_rank = LAYER_RANKS.get(own)
        if own_rank is None:
            return  # a package outside the layer map is not checked
        for target in _import_targets(node, ctx):
            if target == own or target == "repro":
                continue
            if own in LEAVES:
                ctx.report(
                    RULE,
                    node,
                    f"leaf package '{own}' imports 'repro.{target}'",
                    hint="obs/analysis are leaves: move the dependency up "
                    "a layer or pass the value in from the caller",
                )
                continue
            target_rank = LAYER_RANKS.get(target)
            if target_rank is None:
                ctx.report(
                    RULE,
                    node,
                    f"import of 'repro.{target}', which is not in the "
                    "layer map",
                    hint="add the package to LAYER_RANKS in "
                    "repro/analysis/checkers/layering.py (and the ROADMAP "
                    "table) when a new layer is introduced",
                )
                continue
            if target_rank >= own_rank:
                ctx.report(
                    RULE,
                    node,
                    f"'{own}' (rank {own_rank}) imports 'repro.{target}' "
                    f"(rank {target_rank}); layers may only import below "
                    "themselves",
                    hint="move the shared code into a lower layer or "
                    "invert the dependency",
                )
