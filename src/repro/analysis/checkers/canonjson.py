"""Canonical-JSON checker: no raw ``json.dumps`` outside the codec.

Snapshot content hashes are computed over ``persist.codec``'s canonical
encoding; a stray ``json.dumps`` elsewhere re-introduces
non-deterministic key order, loose separators, and bare ``NaN`` tokens.
Every serialization site must route through
:func:`repro.persist.codec.canonical_json` (or its display twin) — or
carry an explicit ``# repro-lint: allow[raw-json-dumps]`` exemption with
the reason it cannot (the obs leaf, byte-exact legacy replay).
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Checker, ModuleContext

RULE = "raw-json-dumps"

#: The one module allowed to call json.dumps freely: it *is* the codec.
_EXEMPT_MODULES = frozenset({"repro.persist.codec"})

_DUMP_NAMES = frozenset({"dumps", "dump"})


class CanonicalJsonChecker(Checker):
    rule = RULE
    interests = (ast.Call,)

    def visit(self, node: ast.Call, ctx: ModuleContext) -> None:
        if ctx.module in _EXEMPT_MODULES:
            return
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _DUMP_NAMES
            and isinstance(func.value, ast.Name)
            and func.value.id == "json"
        ):
            return
        ctx.report(
            RULE,
            node,
            f"raw json.{func.attr} outside persist/codec.py",
            hint="route through repro.persist.codec.canonical_json (or "
            "display_json for human-facing output); annotate with "
            "# repro-lint: allow[raw-json-dumps] only when the layer "
            "cannot import persist (obs) or the bytes must replay a "
            "legacy encoding exactly",
        )
