"""Fork/thread-safety checker.

Two rules for the two concurrency substrates the pipeline mixes:

``sqlite-thread-share``
    A ``sqlite3.connect(...)`` result stored on ``self`` is a handle
    that outlives the creating call — and sqlite connections refuse (or
    worse, corrupt) cross-thread use.  A class holding one must either
    open it per-thread (``threading.local()``) or opt in explicitly with
    ``check_same_thread=False`` / the repo's ``cross_thread=`` seam and
    its own serialization.

``lock-across-fork``
    ``os.fork()`` (or ``multiprocessing`` fork-context pool creation)
    while a lock is held copies the *held* lock into the child, where no
    thread will ever release it.  Any fork reached lexically inside a
    ``with <lock>:`` block is flagged unless the site is annotated —
    the one legitimate shape (a dedicated fork guard with
    ``os.register_at_fork`` hygiene) documents itself.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.engine import Checker, ModuleContext

RULE_SQLITE = "sqlite-thread-share"
RULE_FORK = "lock-across-fork"

_LOCKISH_MARKERS = ("lock", "guard", "mutex")


def _is_sqlite_connect(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "connect"
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "sqlite3"
    )


def _connect_opts_out(call: ast.Call) -> bool:
    """Does the connect call opt in to cross-thread use explicitly?"""
    for kw in call.keywords:
        if kw.arg == "check_same_thread":
            return True
        if kw.arg == "cross_thread":
            return True
    return False


def _class_uses_threading_local(cls: ast.ClassDef) -> bool:
    for node in ast.walk(cls):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "local"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "threading"
        ):
            return True
    return False


def _lockish_name(expr: ast.AST) -> bool:
    """Does the with-item expression look like a lock acquisition?"""
    name = None
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    elif isinstance(expr, ast.Call):
        return _lockish_name(expr.func)
    if name is None:
        return False
    lowered = name.lower()
    return any(marker in lowered for marker in _LOCKISH_MARKERS)


def _is_fork_call(node: ast.Call) -> bool:
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "fork"
        and isinstance(func.value, ast.Name)
        and func.value.id == "os"
    ):
        return True
    return False


class ForkSafetyChecker(Checker):
    rule = RULE_SQLITE  # primary rule id; RULE_FORK reported explicitly
    interests = (ast.ClassDef, ast.Call)

    def begin_module(self, ctx: ModuleContext) -> None:
        self._classes_seen: List[ast.ClassDef] = []

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if isinstance(node, ast.ClassDef):
            self._check_class(node, ctx)
        elif isinstance(node, ast.Call) and _is_fork_call(node):
            self._check_fork(node, ctx)

    # -- sqlite connections stored on self ---------------------------------
    def _check_class(self, cls: ast.ClassDef, ctx: ModuleContext) -> None:
        uses_local = _class_uses_threading_local(cls)
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            if not _is_sqlite_connect(node.value):
                continue
            stored_on_self = any(
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
                for t in node.targets
            )
            if not stored_on_self:
                continue
            if uses_local or _connect_opts_out(node.value):
                continue
            ctx.report(
                RULE_SQLITE,
                node,
                f"sqlite3.connect result stored on self in class "
                f"'{cls.name}' without a cross-thread strategy",
                hint="open the connection per-thread via threading.local(),"
                " or pass check_same_thread=False / the cross_thread seam "
                "and serialize access yourself",
            )

    # -- fork while a lock is held -----------------------------------------
    def _check_fork(self, node: ast.Call, ctx: ModuleContext) -> None:
        held = None
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.With):
                for item in ancestor.items:
                    if _lockish_name(item.context_expr):
                        held = ast.unparse(item.context_expr)
                        break
            if held:
                break
        if held is None:
            return
        ctx.report(
            RULE_FORK,
            node,
            f"os.fork() reached while '{held}' is held",
            hint="release the lock before forking, or register "
            "os.register_at_fork hygiene and annotate the site with "
            "# repro-lint: allow[lock-across-fork] and the reason",
        )
