"""Runtime lock-order sanitizer: a mini-TSan for the repro's locks.

The static lock-order checker sees lexically nested ``with`` blocks;
this watcher sees what actually happens at runtime — locks acquired
across call boundaries, in worker threads, under whichever interleaving
the test run produced.  Every instrumented acquisition records an edge
*currently-held -> being-acquired* into a process-global graph; the
moment an edge closes a cycle, two call sites have taken the same locks
in opposite orders and a deadlock is one unlucky schedule away.

Opt-in, zero overhead when off:

* ``REPRO_ANALYSIS_LOCKWATCH=1`` — the root ``conftest.py`` calls
  :func:`install`, which monkeypatches ``threading.Lock`` /
  ``threading.RLock`` so locks *created by repro code* (decided by the
  caller's filename) come back instrumented.  Everything else —
  stdlib internals, third-party code — gets the real constructors.
* ``REPRO_ANALYSIS_LOCKWATCH_MODE=raise|warn`` — ``raise`` (default)
  throws :class:`LockOrderInversion` at the acquisition that closes the
  cycle; ``warn`` records it and prints to stderr, for surveying.

Fork hygiene: a forked child inherits the parent's graph and the forking
thread's held-stack, but no other thread survives the fork — the child
would see phantom "held" locks forever.  ``install`` registers an
``os.register_at_fork`` hook that clears the per-thread held state in
the child (the edge graph is kept: edges already observed are still
true of the code).
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Dict, List, Optional, Tuple

ENV_KNOB = "REPRO_ANALYSIS_LOCKWATCH"
ENV_MODE = "REPRO_ANALYSIS_LOCKWATCH_MODE"

_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock


class LockOrderInversion(RuntimeError):
    """Two locks were taken in opposite orders on different paths."""


def _creation_site(depth: int = 2) -> str:
    frame = sys._getframe(depth)
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


class LockWatch:
    """The process-global acquisition graph and per-thread held stacks."""

    def __init__(self, mode: str = "raise"):
        self.mode = mode
        #: (held lock name) -> {acquired lock name: observed-at site}
        self.edges: Dict[str, Dict[str, str]] = {}
        self.inversions: List[str] = []
        self._graph_guard = _REAL_LOCK()
        self._held = threading.local()

    # -- per-thread held stack ---------------------------------------------
    def _stack(self) -> List["WatchedLock"]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def held_names(self) -> List[str]:
        return [lock.name for lock in self._stack()]

    def reset_thread_holds(self) -> None:
        """Drop this thread's held-stack (fork-child hygiene)."""
        self._held.stack = []

    # -- recording ---------------------------------------------------------
    def on_acquired(self, lock: "WatchedLock", site: str) -> None:
        stack = self._stack()
        if any(held is lock for held in stack):
            stack.append(lock)  # re-entrant RLock: no new edges
            return
        cycle: Optional[List[str]] = None
        with self._graph_guard:
            for held in stack:
                if held.name == lock.name:
                    continue
                targets = self.edges.setdefault(held.name, {})
                if lock.name not in targets:
                    targets[lock.name] = site
                    found = self._find_cycle(lock.name, held.name)
                    if found is not None and cycle is None:
                        cycle = found
        stack.append(lock)
        if cycle is not None:
            self._report(cycle, site)

    def on_released(self, lock: "WatchedLock") -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is lock:
                del stack[index]
                return

    # -- cycle detection ---------------------------------------------------
    def _find_cycle(self, start: str, target: str) -> Optional[List[str]]:
        """Path start -> ... -> target in the edge graph (caller just
        added target -> start, so such a path closes a cycle)."""
        work: List[Tuple[str, List[str]]] = [(start, [start])]
        visited = {start}
        while work:
            node, path = work.pop()
            for nxt in self.edges.get(node, ()):
                if nxt == target:
                    return path + [nxt]
                if nxt not in visited:
                    visited.add(nxt)
                    work.append((nxt, path + [nxt]))
        return None

    def _report(self, cycle: List[str], site: str) -> None:
        with self._graph_guard:
            detail_parts = []
            loop = [cycle[-1]] + cycle
            for held, acquired in zip(loop, loop[1:]):
                where = self.edges.get(held, {}).get(acquired, "?")
                detail_parts.append(f"{held} -> {acquired} (at {where})")
        message = (
            "lock-order inversion: "
            + " ; ".join(detail_parts)
            + f" ; closing acquisition at {site}"
        )
        self.inversions.append(message)
        if self.mode == "raise":
            raise LockOrderInversion(message)
        print(f"[lockwatch] {message}", file=sys.stderr)


class WatchedLock:
    """A lock proxy that reports acquisitions/releases to a LockWatch."""

    def __init__(self, inner, name: str, watch: LockWatch):
        self._inner = inner
        self.name = name
        self._watch = watch

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._watch.on_acquired(self, _creation_site())
        return got

    def release(self) -> None:
        self._inner.release()
        self._watch.on_released(self)

    def __enter__(self) -> bool:
        got = self._inner.acquire()
        if got:
            self._watch.on_acquired(self, _creation_site())
        return got

    def __exit__(self, exc_type, exc, tb) -> None:
        self._inner.release()
        self._watch.on_released(self)

    def locked(self) -> bool:
        return self._inner.locked()

    def __repr__(self) -> str:
        return f"WatchedLock({self.name}, {self._inner!r})"


_ACTIVE: Optional[LockWatch] = None
_INSTALL_GUARD = _REAL_LOCK()
_FORK_HOOKED = False


def active() -> Optional[LockWatch]:
    return _ACTIVE


def _should_watch(filename: str) -> bool:
    normalized = filename.replace(os.sep, "/")
    return "/repro/" in normalized or normalized.endswith("/repro")


def _make_factory(real, kind: str, watch: LockWatch):
    def factory():
        caller = sys._getframe(1).f_code.co_filename
        inner = real()
        if not _should_watch(caller):
            return inner
        name = f"{kind}@{_creation_site()}"
        return WatchedLock(inner, name, watch)

    return factory


def install(mode: Optional[str] = None) -> LockWatch:
    """Patch ``threading.Lock``/``RLock`` to hand repro code watched
    locks.  Idempotent; returns the active watch."""
    global _ACTIVE, _FORK_HOOKED
    with _INSTALL_GUARD:
        if _ACTIVE is not None:
            return _ACTIVE
        resolved = mode or os.environ.get(ENV_MODE, "raise")
        if resolved not in ("raise", "warn"):
            resolved = "raise"
        watch = LockWatch(mode=resolved)
        threading.Lock = _make_factory(_REAL_LOCK, "Lock", watch)
        threading.RLock = _make_factory(_REAL_RLOCK, "RLock", watch)
        if not _FORK_HOOKED and hasattr(os, "register_at_fork"):
            os.register_at_fork(after_in_child=_after_fork_in_child)
            _FORK_HOOKED = True
        _ACTIVE = watch
        return watch


def _after_fork_in_child() -> None:
    watch = _ACTIVE
    if watch is not None:
        watch.reset_thread_holds()


def uninstall() -> None:
    """Restore the real constructors (already-created watched locks keep
    reporting to their watch; new locks come back plain)."""
    global _ACTIVE
    with _INSTALL_GUARD:
        threading.Lock = _REAL_LOCK
        threading.RLock = _REAL_RLOCK
        _ACTIVE = None


def install_from_env() -> Optional[LockWatch]:
    """Install iff ``REPRO_ANALYSIS_LOCKWATCH`` is a truthy value."""
    value = os.environ.get(ENV_KNOB, "").strip().lower()
    if value in ("", "0", "false", "no", "off"):
        return None
    return install()
