"""The lint baseline: grandfathered findings that do not fail CI.

A baseline entry names a finding by *fingerprint* (rule + file +
normalized offending line — see :class:`~repro.analysis.model.Finding`)
and carries a written justification.  Matching by fingerprint rather
than line number means unrelated edits never invalidate the baseline,
while any change to the offending line itself un-baselines the finding
— exactly the moment a human should re-decide whether it is still
justified.

The file is deterministic JSON (sorted entries, sorted keys) so diffs
review cleanly; stale entries (fingerprints that matched nothing this
run) are reported so the baseline shrinks instead of fossilizing.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Sequence, Tuple

BASELINE_VERSION = 1

#: Default baseline file name, looked up in the working directory.
DEFAULT_BASELINE = "analysis-baseline.json"


class BaselineError(ValueError):
    """The baseline file is malformed."""


class Baseline:
    """Fingerprint -> justification map with split/merge helpers."""

    def __init__(self, entries: Dict[str, Dict[str, Any]] = None):
        #: fingerprint -> {"rule", "path", "justification"}
        self.entries: Dict[str, Dict[str, Any]] = dict(entries or {})

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        if (
            not isinstance(payload, dict)
            or payload.get("version") != BASELINE_VERSION
            or not isinstance(payload.get("entries"), list)
        ):
            raise BaselineError(
                f"{path}: not a version-{BASELINE_VERSION} lint baseline"
            )
        entries: Dict[str, Dict[str, Any]] = {}
        for entry in payload["entries"]:
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                raise BaselineError(f"{path}: malformed baseline entry {entry!r}")
            if not str(entry.get("justification", "")).strip():
                raise BaselineError(
                    f"{path}: baseline entry {entry['fingerprint']} needs a "
                    "written justification"
                )
            entries[entry["fingerprint"]] = {
                "rule": entry.get("rule", ""),
                "path": entry.get("path", ""),
                "justification": entry["justification"],
            }
        return cls(entries)

    @classmethod
    def load_or_empty(cls, path: str) -> "Baseline":
        if path and os.path.exists(path):
            return cls.load(path)
        return cls()

    def save(self, path: str) -> None:
        entries = [
            {
                "fingerprint": fingerprint,
                "rule": meta.get("rule", ""),
                "path": meta.get("path", ""),
                "justification": meta.get("justification", ""),
            }
            for fingerprint, meta in self.entries.items()
        ]
        entries.sort(key=lambda e: (e["path"], e["rule"], e["fingerprint"]))
        payload = {"version": BASELINE_VERSION, "entries": entries}
        with open(path, "w", encoding="utf-8") as fh:
            # repro-lint: allow[raw-json-dumps] leaf package, cannot import persist; sorted keys keep the file deterministic
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def add(self, finding, justification: str) -> None:
        self.entries[finding.fingerprint] = {
            "rule": finding.rule,
            "path": finding.path,
            "justification": justification,
        }

    def split(self, findings: Sequence) -> Tuple[List, List, List[str]]:
        """Partition findings into (live, baselined) and name stale
        baseline fingerprints that matched nothing."""
        live, baselined = [], []
        matched = set()
        for finding in findings:
            if finding.fingerprint in self.entries:
                matched.add(finding.fingerprint)
                baselined.append(
                    type(finding)(
                        rule=finding.rule,
                        path=finding.path,
                        line=finding.line,
                        message=finding.message,
                        hint=finding.hint,
                        context=finding.context,
                        baselined=True,
                    )
                )
            else:
                live.append(finding)
        stale = sorted(set(self.entries) - matched)
        return live, baselined, stale
