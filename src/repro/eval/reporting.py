"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width ASCII table (the benches print paper-style tables)."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            columns[i].append(str(cell))
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)
