"""Precision / recall / F1 over fact sets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set, Tuple


@dataclass(frozen=True)
class PRF:
    """One evaluation outcome."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    false_positives: int
    false_negatives: int

    def row(self) -> Tuple[float, float, float]:
        return (self.precision, self.recall, self.f1)


def f1_score(precision: float, recall: float) -> float:
    if precision + recall == 0.0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def confusion(found: Set, truth: Set) -> Tuple[int, int, int]:
    """(true positives, false positives, false negatives)."""
    tp = len(found & truth)
    return tp, len(found) - tp, len(truth) - tp


def precision_recall_f1(found: Set, truth: Set) -> PRF:
    """PRF of a found fact set against a gold fact set.

    An empty truth with empty findings counts as perfect (nothing to find,
    nothing invented); an empty truth with findings is all-false-positive.
    """
    tp, fp, fn = confusion(found, truth)
    precision = tp / (tp + fp) if (tp + fp) else (1.0 if not truth else 0.0)
    recall = tp / (tp + fn) if (tp + fn) else 1.0
    return PRF(
        precision=round(precision, 4),
        recall=round(recall, 4),
        f1=round(f1_score(precision, recall), 4),
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
    )
