"""Table 1 quantified: cost and quality of the integration approaches.

The paper's Table 1 compares data-focused, schema-focused, and ALADIN
integration qualitatively (focus, structure, cost). We operationalize the
*cost of integration* as the number of manual specification actions a
human must perform to integrate the scenario's sources, and *quality* as
the link coverage each approach can deliver:

* **data-focused** (Swiss-Prot-style curation) — every record is touched
  by a curator; links and duplicates are curated, so quality is the gold
  standard itself; cost scales with record count.
* **schema-focused mediator** (TAMBIS/OPM-style) — per source: one
  wrapper plus one semantic mapping per attribute into the global schema;
  answers structured queries but materializes no object links and detects
  no duplicates.
* **SRS-like** — per source: one Icarus-style parser, explicit
  declarations of primary/secondary structure and of every link-bearing
  field ("all structures and links need to be explicitly specified");
  explicit links work, implicit links and duplicates do not.
* **GenMapper-like** — per source: one manual mapping into the 4-table
  generic model; explicit cross-references only.
* **ALADIN** — per source: at most one parser *selection*; everything
  else is discovered. Quality is whatever the pipeline achieved
  (measured, not assumed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.aladin import Aladin
from repro.dataimport import registry
from repro.eval.experiments import evaluate_crossref_links, evaluate_duplicates
from repro.synth.sources import Scenario


@dataclass
class BaselineOutcome:
    """One Table-1 row."""

    approach: str
    manual_actions: int
    explicit_link_recall: float
    implicit_links: bool
    duplicates_flagged: bool
    structured_queries: bool

    def row(self) -> List[object]:
        return [
            self.approach,
            self.manual_actions,
            f"{self.explicit_link_recall:.2f}",
            "yes" if self.implicit_links else "no",
            "yes" if self.duplicates_flagged else "no",
            "yes" if self.structured_queries else "no",
        ]


def _count_attributes(scenario: Scenario) -> Dict[str, int]:
    """Attributes per source (the mediator's mapping effort unit)."""
    counts = {}
    for source in scenario.sources:
        importer = registry.create(source.facts.format_name, source.name, True)
        for key, value in source.facts.import_options.items():
            setattr(importer, key, value)
        database = importer.import_text(source.text).database
        counts[source.name] = sum(
            len(t.schema.columns) for t in database.tables()
        )
    return counts


def _count_records(scenario: Scenario) -> int:
    return sum(len(s.facts.accession_to_uid) for s in scenario.sources)


def run_baselines(scenario: Scenario, aladin: Aladin) -> List[BaselineOutcome]:
    """All Table-1 rows for one integrated scenario."""
    attribute_counts = _count_attributes(scenario)
    n_sources = len(scenario.sources)
    n_tables = {
        source.name: len(source.facts.accession_to_uid) for source in scenario.sources
    }
    gold_attr_links = scenario.gold.attribute_links()
    outcomes: List[BaselineOutcome] = []
    # Data-focused: curators touch every record (and get everything right).
    outcomes.append(
        BaselineOutcome(
            approach="data-focused",
            manual_actions=_count_records(scenario),
            explicit_link_recall=1.0,
            implicit_links=True,
            duplicates_flagged=True,
            structured_queries=False,
        )
    )
    # Schema-focused mediator: wrapper + per-attribute mapping per source.
    outcomes.append(
        BaselineOutcome(
            approach="schema-focused (mediator)",
            manual_actions=n_sources + sum(attribute_counts.values()),
            explicit_link_recall=0.0,  # no materialized object links
            implicit_links=False,
            duplicates_flagged=False,
            structured_queries=True,
        )
    )
    # SRS-like: parser + explicit structure/link declarations per source.
    outcomes.append(
        BaselineOutcome(
            approach="SRS-like",
            manual_actions=n_sources * 2 + len(gold_attr_links),
            explicit_link_recall=1.0,  # declared links resolve perfectly
            implicit_links=False,
            duplicates_flagged=False,
            structured_queries=False,
        )
    )
    # GenMapper-like: one manual mapping per source into the 4-table model.
    outcomes.append(
        BaselineOutcome(
            approach="GenMapper-like",
            manual_actions=n_sources,
            explicit_link_recall=1.0,
            implicit_links=False,
            duplicates_flagged=False,
            structured_queries=True,
        )
    )
    # ALADIN: parser selection only; measured quality.
    crossref = evaluate_crossref_links(scenario, aladin).metric("object_links")
    duplicates = evaluate_duplicates(scenario, aladin).metric("duplicates")
    outcomes.append(
        BaselineOutcome(
            approach="ALADIN",
            manual_actions=n_sources,  # choose a registered parser per source
            explicit_link_recall=crossref.recall,
            implicit_links=True,
            duplicates_flagged=duplicates.recall > 0,
            structured_queries=True,
        )
    )
    return outcomes
