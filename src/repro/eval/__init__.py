"""Evaluation harness: the paper's proposed P/R methodology plus baselines.

Section 3: "The standard procedure in such situations is to estimate the
amount of errors of the system using performance measures, such as
precision and recall. We show in Section 6 how such measures can be
estimated using an existing integrated database." The synthetic gold
standard plays COLUMBA's role; :mod:`experiments` computes P/R/F1 for
every discovery step; :mod:`baselines` quantifies Table 1's
cost-of-integration spectrum.
"""

from repro.eval.metrics import PRF, confusion, f1_score, precision_recall_f1
from repro.eval.experiments import (
    ExperimentResult,
    evaluate_crossref_links,
    evaluate_duplicates,
    evaluate_fk_discovery,
    evaluate_primary_discovery,
    evaluate_sequence_links,
    integrate_scenario,
)
from repro.eval.baselines import BaselineOutcome, run_baselines
from repro.eval.reporting import format_table

__all__ = [
    "BaselineOutcome",
    "ExperimentResult",
    "PRF",
    "confusion",
    "evaluate_crossref_links",
    "evaluate_duplicates",
    "evaluate_fk_discovery",
    "evaluate_primary_discovery",
    "evaluate_sequence_links",
    "f1_score",
    "format_table",
    "integrate_scenario",
    "precision_recall_f1",
    "run_baselines",
]
