"""Experiment runners: each discovery step measured against gold truth.

These functions back both the test suite's quality gates and the
benchmark harness (experiments E1-E9 of DESIGN.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.aladin import Aladin
from repro.core.config import AladinConfig
from repro.dataimport import registry
from repro.discovery.pipeline import discover_structure
from repro.eval.metrics import PRF, precision_recall_f1
from repro.synth.sources import Scenario


@dataclass
class ExperimentResult:
    """One experiment's outcome with its headline metric rows."""

    name: str
    metrics: Dict[str, PRF] = field(default_factory=dict)
    details: Dict[str, object] = field(default_factory=dict)

    def metric(self, key: str) -> PRF:
        return self.metrics[key]


# ----------------------------------------------------------------------
# scenario integration
# ----------------------------------------------------------------------
def integrate_scenario(
    scenario: Scenario, config: Optional[AladinConfig] = None
) -> Aladin:
    """Feed every scenario source through the full pipeline."""
    aladin = Aladin(config)
    for source in scenario.sources:
        aladin.add_source(
            source.name,
            source.facts.format_name,
            source.text,
            **source.facts.import_options,
        )
    return aladin


# ----------------------------------------------------------------------
# E1: primary-relation discovery
# ----------------------------------------------------------------------
def evaluate_primary_discovery(scenario: Scenario, aladin: Aladin) -> ExperimentResult:
    """Exact-match accuracy of primary-relation selection per source."""
    correct = []
    wrong = []
    for name in aladin.source_names():
        predicted = aladin.repository.structure(name).primary_relation
        expected = scenario.gold.primary_relation(name)
        (correct if predicted == expected else wrong).append(
            (name, predicted, expected)
        )
    found = {(name, predicted) for name, predicted, _ in correct + wrong}
    truth = {
        (name, scenario.gold.primary_relation(name)) for name in aladin.source_names()
    }
    result = ExperimentResult(name="primary_discovery")
    result.metrics["primary"] = precision_recall_f1(found, truth)
    result.details["wrong"] = wrong
    return result


# ----------------------------------------------------------------------
# E2: foreign-key / secondary discovery
# ----------------------------------------------------------------------
def evaluate_fk_discovery(scenario: Scenario) -> ExperimentResult:
    """Mined FK edges vs. the importers' declared (true) constraints.

    Declared FKs whose source column holds no values (empty annotation
    tables) are excluded from the truth: containment over an empty set is
    vacuous, so such constraints are fundamentally undiscoverable from
    data — and irrelevant for linking.
    """
    result = ExperimentResult(name="fk_discovery")
    all_found: Set[Tuple[str, str, str]] = set()
    all_truth: Set[Tuple[str, str, str]] = set()
    for source in scenario.sources:
        importer = registry.create(source.facts.format_name, source.name, True)
        for key, value in source.facts.import_options.items():
            setattr(importer, key, value)
        declared_db = importer.import_text(source.text).database
        truth = {
            (source.name, f"{t.name}.{fk.columns[0]}",
             f"{fk.target_table}.{fk.target_columns[0]}")
            for t in declared_db.tables()
            for fk in t.schema.foreign_keys
            if len(fk.columns) == 1 and t.non_null_values(fk.columns[0])
        }
        bare = declared_db.strip_constraints()
        structure = discover_structure(bare)
        found = {
            (source.name, pair[0], pair[1])
            for pair in structure.relationship_pairs()
        }
        all_truth |= truth
        # Only count found pairs that could be true FKs (credit exact).
        all_found |= found
    # Precision over all mined edges punishes accidental containments;
    # recall measures recovery of true constraints.
    result.metrics["fk_edges"] = precision_recall_f1(all_found, all_truth)
    # Recall-oriented view (the operative number: are true FKs recovered?)
    recovered = all_found & all_truth
    result.details["recovered"] = len(recovered)
    result.details["declared"] = len(all_truth)
    return result


# ----------------------------------------------------------------------
# E3: cross-reference discovery
# ----------------------------------------------------------------------
def evaluate_crossref_links(scenario: Scenario, aladin: Aladin) -> ExperimentResult:
    """Object-level explicit-link P/R vs. the gold cross-references."""
    gold = {
        (f.source_a, f.accession_a, f.source_b, f.accession_b)
        for f in scenario.gold.xref_links()
    }
    gold_normalized = {_normalize_pair(*g) for g in gold}
    found = set()
    for link in aladin.repository.object_links(kind="crossref"):
        found.add(
            _normalize_pair(link.source_a, link.accession_a, link.source_b, link.accession_b)
        )
    result = ExperimentResult(name="crossref_links")
    result.metrics["object_links"] = precision_recall_f1(found, gold_normalized)
    # Attribute-level correspondences.
    gold_attrs = {
        (f.source_a, f.attribute_a, f.source_b, f.attribute_b)
        for f in scenario.gold.attribute_links()
    }
    found_attrs = {
        (l.source, l.source_attribute.qualified, l.target, l.target_attribute.qualified)
        for l in aladin.repository.attribute_links()
        if l.kind == "crossref"
    }
    result.metrics["attribute_links"] = precision_recall_f1(found_attrs, gold_attrs)
    return result


# ----------------------------------------------------------------------
# E4: duplicate detection
# ----------------------------------------------------------------------
def evaluate_duplicates(scenario: Scenario, aladin: Aladin) -> ExperimentResult:
    gold = {
        _normalize_pair(f.source_a, f.accession_a, f.source_b, f.accession_b)
        for f in scenario.gold.duplicate_pairs()
    }
    found = {
        _normalize_pair(l.source_a, l.accession_a, l.source_b, l.accession_b)
        for l in aladin.repository.object_links(kind="duplicate")
    }
    result = ExperimentResult(name="duplicate_detection")
    result.metrics["duplicates"] = precision_recall_f1(found, gold)
    return result


# ----------------------------------------------------------------------
# E5: sequence (homology) links
# ----------------------------------------------------------------------
def evaluate_sequence_links(scenario: Scenario, aladin: Aladin) -> ExperimentResult:
    """Sequence links vs. true homolog pairs across the protein sources."""
    protein_sources = [
        name
        for name, facts in scenario.gold.sources.items()
        if facts.entity_class == "protein" and name in aladin.source_names()
    ]
    result = ExperimentResult(name="sequence_links")
    if len(protein_sources) < 2:
        return result
    a, b = sorted(protein_sources)[:2]
    acc_a = scenario.gold.sources[a].accession_to_uid
    acc_b = scenario.gold.sources[b].accession_to_uid
    proteins = scenario.universe.proteins
    truth = set()
    for accession_a, uid_a in acc_a.items():
        for accession_b, uid_b in acc_b.items():
            if proteins[uid_a].family == proteins[uid_b].family:
                truth.add(_normalize_pair(a, accession_a, b, accession_b))
    found = set()
    for link in aladin.repository.object_links(kind="sequence"):
        if {link.source_a, link.source_b} == {a, b}:
            found.add(
                _normalize_pair(link.source_a, link.accession_a,
                                link.source_b, link.accession_b)
            )
    result.metrics["homologs"] = precision_recall_f1(found, truth)
    result.details["pair"] = (a, b)
    return result


def _normalize_pair(source_a, accession_a, source_b, accession_b):
    if (source_a, accession_a) <= (source_b, accession_b):
        return (source_a, accession_a, source_b, accession_b)
    return (source_b, accession_b, source_a, accession_a)
