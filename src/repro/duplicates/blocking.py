"""Blocking strategies: avoid the quadratic pair explosion.

Duplicate detection compares primary objects across sources; without
blocking the pair count is |A|·|B|. Three standard reducers:

* key blocking — exact equality of a cheap key (e.g., shared accession,
  as in COLUMBA's three PDB flavors, Section 5: "Detecting duplicate
  objects is easy in this case, because the original PDB accession number
  is available in all three representations");
* n-gram blocking — records sharing at least one rare character n-gram;
* sorted neighborhood — slide a window over the key-sorted union.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Sequence, Set, Tuple

from repro.duplicates.record import RecordView

Pair = Tuple[int, int]  # indexes into (records_a, records_b)


def candidate_pairs_by_key(
    records_a: Sequence[RecordView],
    records_b: Sequence[RecordView],
    key: Callable[[RecordView], str],
) -> List[Pair]:
    """All cross-source pairs whose blocking key matches exactly."""
    by_key: Dict[str, List[int]] = defaultdict(list)
    for j, record in enumerate(records_b):
        by_key[key(record)].append(j)
    pairs: List[Pair] = []
    for i, record in enumerate(records_a):
        for j in by_key.get(key(record), ()):
            pairs.append((i, j))
    return pairs


def _record_ngrams(record: RecordView, n: int) -> Set[str]:
    grams: Set[str] = set()
    for value in record.values:
        lowered = value.lower()
        for i in range(max(len(lowered) - n + 1, 0)):
            grams.add(lowered[i : i + n])
    return grams


def candidate_pairs_ngram(
    records_a: Sequence[RecordView],
    records_b: Sequence[RecordView],
    n: int = 4,
    max_gram_frequency: int = 20,
) -> List[Pair]:
    """Pairs sharing at least one sufficiently *rare* n-gram.

    Frequent n-grams (appearing in more than ``max_gram_frequency``
    records per side) are dropped — they would otherwise regenerate the
    full cross product.
    """
    grams_b: Dict[str, List[int]] = defaultdict(list)
    for j, record in enumerate(records_b):
        for gram in _record_ngrams(record, n):
            grams_b[gram].append(j)
    pairs: Set[Pair] = set()
    for i, record in enumerate(records_a):
        for gram in _record_ngrams(record, n):
            hits = grams_b.get(gram)
            if hits is None or len(hits) > max_gram_frequency:
                continue
            for j in hits:
                pairs.add((i, j))
    return sorted(pairs)


def sorted_neighborhood_pairs(
    records_a: Sequence[RecordView],
    records_b: Sequence[RecordView],
    key: Callable[[RecordView], str],
    window: int = 5,
) -> List[Pair]:
    """Classic sorted-neighborhood method over the merged key-sorted list.

    Only cross-source pairs within the sliding window are produced.
    """
    tagged: List[Tuple[str, int, int]] = []  # (key, side, index)
    for i, record in enumerate(records_a):
        tagged.append((key(record), 0, i))
    for j, record in enumerate(records_b):
        tagged.append((key(record), 1, j))
    tagged.sort(key=lambda t: t[0])
    pairs: Set[Pair] = set()
    for pos, (_, side, index) in enumerate(tagged):
        for other_pos in range(pos + 1, min(pos + window, len(tagged))):
            _, other_side, other_index = tagged[other_pos]
            if side == other_side:
                continue
            if side == 0:
                pairs.add((index, other_index))
            else:
                pairs.add((other_index, index))
    return sorted(pairs)
