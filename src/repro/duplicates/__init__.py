"""Duplicate detection: step 5 of the ALADIN pipeline (Section 4.5).

"In the fifth step we search for a special kind of 'links' between
primary objects in different data sources, i.e., those indicating that
the database objects represent the same real world object."

Key paper requirements honored here:

* duplicates are **flagged, never merged** ("here duplicates should be
  only flagged and not merged", Section 2);
* similarity is domain-independent string similarity ("literature defines
  several domain-independent similarity measures usually based on edit
  distance"), lifted to heterogeneously structured records the WN04 way —
  best-match pairing of field values without a priori field
  correspondences;
* blocking keeps the pair count manageable; clusters come from union-find;
  conflicts inside clusters are surfaced, not resolved ("Usually it is up
  to the experts to decide which of the values ... is correct").
"""

from repro.duplicates.similarity import (
    damerau_levenshtein,
    jaccard_ngrams,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    monge_elkan,
    token_cosine,
)
from repro.duplicates.record import RecordView, record_similarity
from repro.duplicates.blocking import (
    candidate_pairs_by_key,
    candidate_pairs_ngram,
    sorted_neighborhood_pairs,
)
from repro.duplicates.clustering import UnionFind, cluster_pairs
from repro.duplicates.detector import DuplicateConfig, DuplicateDetector
from repro.duplicates.conflicts import Conflict, find_conflicts

__all__ = [
    "Conflict",
    "DuplicateConfig",
    "DuplicateDetector",
    "RecordView",
    "UnionFind",
    "candidate_pairs_by_key",
    "candidate_pairs_ngram",
    "cluster_pairs",
    "damerau_levenshtein",
    "find_conflicts",
    "jaccard_ngrams",
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "levenshtein_similarity",
    "monge_elkan",
    "record_similarity",
    "sorted_neighborhood_pairs",
    "token_cosine",
]
