"""Conflict extraction inside duplicate clusters.

Section 4.5: "duplicates give rise to data conflicts. Different sources
might contradict each other in the data they store about an object.
Usually it is up to the experts to decide which of the values (or both)
is correct. ... Exploring such contradictions is of great interest to
biologists." Conflicts are therefore *reported*, never resolved; the
browser highlights them (Section 4.6, link type 3: "Conflicts are
highlighted, and data lineage is shown").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.duplicates.record import RecordView
from repro.duplicates.similarity import jaro_winkler


@dataclass(frozen=True)
class Conflict:
    """Two near-miss values for (presumably) the same fact."""

    source_a: str
    accession_a: str
    value_a: str
    source_b: str
    accession_b: str
    value_b: str
    similarity: float


def find_conflicts(
    a: RecordView,
    b: RecordView,
    near_miss_range: Tuple[float, float] = (0.6, 0.999),
) -> List[Conflict]:
    """Value pairs similar enough to mean the same fact but not equal.

    A conflict is a pair of values whose similarity falls inside
    ``near_miss_range``: close enough that they plausibly describe the
    same fact, different enough that the sources disagree. Exact matches
    are agreements; far-apart values are simply different facts.
    """
    low, high = near_miss_range
    conflicts: List[Conflict] = []
    for value_a in a.values:
        best: Optional[Tuple[float, str]] = None
        for value_b in b.values:
            similarity = jaro_winkler(value_a.lower(), value_b.lower())
            if best is None or similarity > best[0]:
                best = (similarity, value_b)
        if best is None:
            continue
        similarity, value_b = best
        if low <= similarity <= high and value_a.lower() != value_b.lower():
            conflicts.append(
                Conflict(
                    source_a=a.source,
                    accession_a=a.accession,
                    value_a=value_a,
                    source_b=b.source,
                    accession_b=b.accession,
                    value_b=value_b,
                    similarity=round(similarity, 4),
                )
            )
    return conflicts
