"""Duplicate clustering via union-find.

"In answering a query, only one representative of each duplicate cluster
can be returned" (Section 4.5) — the query engine needs clusters, not
just pairs. Pairs above the similarity threshold are merged transitively.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple, TypeVar

T = TypeVar("T", bound=Hashable)


class UnionFind:
    """Path-compressed union-find over arbitrary hashable items."""

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}

    def find(self, item: Hashable) -> Hashable:
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0
            return item
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1

    def groups(self) -> List[List[Hashable]]:
        by_root: Dict[Hashable, List[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), []).append(item)
        return [sorted(group, key=repr) for group in by_root.values()]


def cluster_pairs(pairs: Iterable[Tuple[T, T]]) -> List[List[T]]:
    """Transitive closure of duplicate pairs; clusters sorted by size desc."""
    uf = UnionFind()
    for a, b in pairs:
        uf.union(a, b)
    groups = [g for g in uf.groups() if len(g) > 1]
    groups.sort(key=lambda g: (-len(g), repr(g[0])))
    return groups
