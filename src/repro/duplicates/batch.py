"""Batch-scoped record scoring for the parallel duplicate pass.

The incremental ``add_source`` path scores one source pair at a time with
:func:`~repro.duplicates.record.record_similarity`. The bulk path
(``Aladin.integrate_many``) hands the execution subsystem *chunks* of
pairs that share a source, and this scorer exploits that shape twice —
without changing a single result:

* **Value-pair cache.** Record values repeat heavily inside a source
  (shared GO terms, keywords, organism names), so the same value pair is
  scored again and again across the records of a chunk. The cache is
  keyed on the sorted value pair (every measure used is symmetric) and
  shared across all pairs of the chunk — on worker pools it lives in the
  worker process, so it needs no locking.
* **Best-match bound.** ``record_similarity`` needs, per value, only the
  *maximum* similarity against the other record's values. For the
  expensive long-value path (token cosine blended with Levenshtein) the
  cosine half plus the length-difference Levenshtein bound
  (``distance >= |len(a) - len(b)|``) yields a cheap upper bound; sorted
  best-bound-first, candidates are only scored exactly while their bound
  exceeds the best exact score so far. A skipped candidate's similarity
  is provably <= the running best, so the maximum — and therefore every
  emitted link — is byte-identical to the unbounded scorer.

Exactness over the float domain: the bound and the real score share the
subexpression ``0.5*cos + 0.5*(1 - x/max_len)`` with ``x`` only growing
from the length difference to the true distance, and IEEE division and
addition are monotone, so ``bound >= score`` holds for the computed
floats, not just the real numbers.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.duplicates.record import RecordView
from repro.duplicates.similarity import (
    jaro_winkler,
    levenshtein_similarity,
    token_cosine,
)

_SHORT = 25  # same shape split as record._value_similarity


class BoundedRecordScorer:
    """Drop-in ``record_similarity`` with a shared cache and exact pruning.

    One instance per batch chunk (or per maintenance session; pass it to
    :class:`~repro.duplicates.detector.DuplicateDetector` as ``scorer``).

    ``max_entries`` bounds the value-pair cache with LRU eviction: the
    cache is a pure accelerator keyed on value pairs, so evicting an
    entry can only cost a re-computation, never change a score — which
    is what lets a *session-wide* scorer run for weeks without its cache
    tracking every distinct value pair ever seen. ``None``/``0`` leaves
    the cache unbounded (the right choice for short-lived chunk-local
    scorers, whose lifetime already bounds it).
    """

    def __init__(
        self,
        cache: Optional[Dict[Tuple[str, str], float]] = None,
        max_entries: Optional[int] = None,
    ):
        self.max_entries = int(max_entries) if max_entries else 0
        if self.max_entries:
            # LRU eviction needs recency order; seed entries count as
            # oldest, in their iteration order.
            self.cache: Dict[Tuple[str, str], float] = OrderedDict(cache or {})
        else:
            self.cache = cache if cache is not None else {}
        self.exact_scores = 0  # similarity computations actually performed
        self.pruned = 0  # candidates skipped via the upper bound
        self.cache_hits = 0
        self.evictions = 0  # entries dropped by the LRU bound

    def stats(self) -> Dict[str, int]:
        """The scorer's counters as one JSON-safe dict — the shape the
        ``scorer.*`` gauges and worker span attributes report."""
        return {
            "exact_scores": self.exact_scores,
            "pruned": self.pruned,
            "cache_hits": self.cache_hits,
            "evictions": self.evictions,
            "cache_entries": len(self.cache),
        }

    def _cache_store(self, key: Tuple[str, str], score: float) -> None:
        cache = self.cache
        cache[key] = score
        if self.max_entries and len(cache) > self.max_entries:
            cache.popitem(last=False)  # least recently used
            self.evictions += 1

    # ------------------------------------------------------------------
    def __call__(self, a: RecordView, b: RecordView) -> float:
        if not a.values and not b.values:
            return 1.0
        if not a.values or not b.values:
            return 0.0
        smaller, larger = (a, b) if len(a.values) <= len(b.values) else (b, a)
        total_weight = 0.0
        total_score = 0.0
        for value in smaller.values:
            best = self._best_match(value, larger.values)
            weight = float(len(value))
            total_weight += weight
            total_score += best * weight
        return total_score / total_weight if total_weight else 0.0

    # ------------------------------------------------------------------
    def _best_match(self, value: str, candidates: List[str]) -> float:
        cache = self.cache
        vlen = len(value)
        # The Levenshtein half is scored over *lowercased* strings, and
        # lowercasing can change a string's length (e.g. 'İ' -> 'i̇'), so
        # the length-difference bound must use the lowercased lengths or
        # it stops being an upper bound.
        value_lower = value.lower()
        best = -1.0
        deferred: List[Tuple[float, str, float, Tuple[str, str]]] = []
        bounded = self.max_entries
        for other in candidates:
            key = (value, other) if value <= other else (other, value)
            hit = cache.get(key)
            if hit is not None:
                self.cache_hits += 1
                if bounded:
                    cache.move_to_end(key)  # refresh LRU recency
                if hit > best:
                    best = hit
                continue
            if vlen <= _SHORT and len(other) <= _SHORT:
                # Short values: Jaro-Winkler is cheap, score directly.
                score = jaro_winkler(value_lower, other.lower())
                self._cache_store(key, score)
                self.exact_scores += 1
                if score > best:
                    best = score
            else:
                cosine = token_cosine(value, other)
                other_lower = other.lower()
                longest = max(len(value_lower), len(other_lower))
                bound = 0.5 * cosine + 0.5 * (
                    1.0 - abs(len(value_lower) - len(other_lower)) / longest
                )
                deferred.append((bound, other_lower, cosine, key))
        # Best bound first: as soon as a bound cannot beat the running
        # best, neither can anything after it.
        deferred.sort(key=lambda entry: -entry[0])
        for position, (bound, other_lower, cosine, key) in enumerate(deferred):
            if bound <= best:
                self.pruned += len(deferred) - position
                break
            score = 0.5 * cosine + 0.5 * levenshtein_similarity(
                value_lower, other_lower
            )
            self._cache_store(key, score)
            self.exact_scores += 1
            if score > best:
                best = score
        return best if best >= 0.0 else 0.0
