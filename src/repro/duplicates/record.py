"""Structure-agnostic record similarity (the WN04 idea).

Section 4.5: "It is not a priori clear, which attribute values of one
object to compare with which attribute value of the other object. Thus,
common similarity measures employed to identify duplicates cannot be
applied immediately." Following the duplicate-detection work for nested
XML objects the paper cites [WN04], a record is reduced to its bag of
*values*; similarity is the best-match pairing between the two value
bags, weighted by value length (longer values carry more identity signal)
— no field correspondences required, so differently modelled sources
compare fine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.duplicates.similarity import jaro_winkler, levenshtein_similarity, token_cosine


@dataclass
class RecordView:
    """One object flattened to comparable text values.

    ``values`` holds the object's own fields plus (optionally) values of
    its secondary objects — the nested annotations. ``identifier`` is the
    (source, accession) identity used in links.
    """

    source: str
    accession: str
    values: List[str] = field(default_factory=list)

    @classmethod
    def from_row(cls, source: str, accession: str, row: Dict[str, object],
                 exclude: Sequence[str] = ()) -> "RecordView":
        values = []
        for column, value in row.items():
            if column in exclude or value is None:
                continue
            text = str(value).strip()
            if text:
                values.append(text)
        return cls(source=source, accession=accession, values=values)


def _value_similarity(a: str, b: str) -> float:
    """Similarity of two field values, picking a measure by value shape.

    Short values behave like names (Jaro-Winkler is forgiving of typos);
    long values behave like sentences (token cosine blended with edit
    similarity).
    """
    if len(a) <= 25 and len(b) <= 25:
        return jaro_winkler(a.lower(), b.lower())
    return 0.5 * token_cosine(a, b) + 0.5 * levenshtein_similarity(a.lower(), b.lower())


def record_similarity(
    a: RecordView,
    b: RecordView,
    value_similarity: Callable[[str, str], float] = _value_similarity,
) -> float:
    """Weighted best-match similarity of two records, in [0, 1].

    For every value of the smaller record the best matching value of the
    other record is found; matches are averaged weighted by value length.
    Symmetric by construction (smaller side drives the pairing).
    """
    if not a.values and not b.values:
        return 1.0
    if not a.values or not b.values:
        return 0.0
    smaller, larger = (a, b) if len(a.values) <= len(b.values) else (b, a)
    total_weight = 0.0
    total_score = 0.0
    for value in smaller.values:
        best = max(value_similarity(value, other) for other in larger.values)
        weight = float(len(value))
        total_weight += weight
        total_score += best * weight
    return total_score / total_weight if total_weight else 0.0
