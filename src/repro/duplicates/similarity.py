"""Domain-independent string similarity measures.

The duplicate-detection toolbox of Section 4.5 ("usually based on edit
distance") plus the token-level measures needed for semi-structured text:
Levenshtein, Damerau-Levenshtein, Jaro, Jaro-Winkler, n-gram Jaccard,
token cosine, and Monge-Elkan hybrid matching. All similarities are
normalized to [0, 1] with 1 meaning identical.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, List, Sequence

# Levenshtein is defined one layer down (linking.schemamatch needs it
# too) and re-exported here so the toolbox keeps one public surface.
from repro.linking.editdistance import levenshtein, levenshtein_similarity

__all__ = [
    "damerau_levenshtein",
    "jaccard_ngrams",
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "levenshtein_similarity",
    "monge_elkan",
    "token_cosine",
]


def damerau_levenshtein(a: str, b: str) -> int:
    """Edit distance with adjacent transpositions (restricted Damerau)."""
    if a == b:
        return 0
    n, m = len(a), len(b)
    if n == 0:
        return m
    if m == 0:
        return n
    rows: List[List[int]] = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        rows[i][0] = i
    for j in range(m + 1):
        rows[0][j] = j
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            best = min(
                rows[i - 1][j] + 1,
                rows[i][j - 1] + 1,
                rows[i - 1][j - 1] + cost,
            )
            if (
                i > 1
                and j > 1
                and a[i - 1] == b[j - 2]
                and a[i - 2] == b[j - 1]
            ):
                best = min(best, rows[i - 2][j - 2] + 1)
            rows[i][j] = best
    return rows[n][m]


def jaro(a: str, b: str) -> float:
    """Jaro similarity in [0, 1]."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    matches_a = [False] * len(a)
    matches_b = [False] * len(b)
    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - window)
        hi = min(len(b), i + window + 1)
        for j in range(lo, hi):
            if not matches_b[j] and b[j] == ca:
                matches_a[i] = True
                matches_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, matched in enumerate(matches_a):
        if not matched:
            continue
        while not matches_b[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len(a) + matches / len(b) + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro with common-prefix boost (max prefix 4, standard scaling)."""
    base = jaro(a, b)
    prefix = 0
    for ca, cb in zip(a[:4], b[:4]):
        if ca != cb:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def _ngrams(text: str, n: int) -> Counter:
    padded = f"{'#' * (n - 1)}{text}{'#' * (n - 1)}" if n > 1 else text
    return Counter(padded[i : i + n] for i in range(max(len(padded) - n + 1, 0)))


def jaccard_ngrams(a: str, b: str, n: int = 3) -> float:
    """Jaccard overlap of character n-gram sets."""
    grams_a = set(_ngrams(a, n))
    grams_b = set(_ngrams(b, n))
    if not grams_a and not grams_b:
        return 1.0
    if not grams_a or not grams_b:
        return 0.0
    return len(grams_a & grams_b) / len(grams_a | grams_b)


def token_cosine(a: str, b: str) -> float:
    """Cosine over whitespace-token count vectors."""
    counts_a = Counter(a.lower().split())
    counts_b = Counter(b.lower().split())
    if not counts_a and not counts_b:
        return 1.0
    if not counts_a or not counts_b:
        return 0.0
    dot = sum(counts_a[t] * counts_b[t] for t in counts_a.keys() & counts_b.keys())
    norm = math.sqrt(sum(c * c for c in counts_a.values())) * math.sqrt(
        sum(c * c for c in counts_b.values())
    )
    return dot / norm if norm else 0.0


def monge_elkan(
    a: str, b: str, base: Callable[[str, str], float] = jaro_winkler
) -> float:
    """Monge-Elkan: average best-match similarity of a's tokens against b's.

    Asymmetric by definition; callers wanting symmetry take the max or
    mean of both directions.
    """
    tokens_a = a.lower().split()
    tokens_b = b.lower().split()
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0
    total = 0.0
    for token_a in tokens_a:
        total += max(base(token_a, token_b) for token_b in tokens_b)
    return total / len(tokens_a)
