"""The duplicate detector: flag same-real-world objects across sources.

Builds :class:`~repro.duplicates.record.RecordView`s for every primary
object (own row plus values gathered from secondary tables along the
discovered paths), blocks candidate pairs, scores them with the
structure-agnostic record similarity, and emits ``duplicate``-kind
:class:`~repro.linking.model.ObjectLink`s. Objects are never merged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.discovery.model import SourceStructure
from repro.duplicates.blocking import (
    candidate_pairs_by_key,
    candidate_pairs_ngram,
    sorted_neighborhood_pairs,
)
from repro.duplicates.record import RecordView, record_similarity
from repro.linking.model import ObjectLink
from repro.linking.resolve import ObjectResolver
from repro.relational.database import Database

_SEQUENCE_PREVIEW = 40  # long sequences dominate; keep a prefix only


@dataclass
class DuplicateConfig:
    """Thresholds of the duplicate detector."""

    similarity_threshold: float = 0.75
    blocking: str = "ngram"  # "ngram" | "sorted" | "key" | "none"
    ngram_size: int = 4
    max_gram_frequency: int = 30
    window: int = 7
    include_secondary_values: bool = True
    max_values_per_record: int = 12
    duplicate_certainty_scale: float = 1.0


class DuplicateDetector:
    """Pairwise duplicate flagging between two sources' primary objects.

    ``scorer`` swaps the record-pair similarity function; the default is
    :func:`~repro.duplicates.record.record_similarity`. Both integration
    paths pass a :class:`~repro.duplicates.batch.BoundedRecordScorer` —
    chunk-scoped in ``integrate_many``, session-scoped in the incremental
    ``add_source`` pass — which must (and does) return the identical
    floats.
    """

    def __init__(
        self,
        config: Optional[DuplicateConfig] = None,
        scorer: Optional[Callable[[RecordView, RecordView], float]] = None,
    ):
        self.config = config or DuplicateConfig()
        self.scorer = scorer or record_similarity
        self.pairs_compared = 0  # exposed for the blocking ablation (E6)

    # ------------------------------------------------------------------
    def build_record_views(
        self, database: Database, structure: SourceStructure
    ) -> List[RecordView]:
        """One RecordView per primary object of a source."""
        try:
            resolver = ObjectResolver(database, structure)
        except ValueError:
            return []
        primary = structure.primary_relation
        accession_col = resolver.accession_column
        views: Dict[str, RecordView] = {}
        for row in database.table(primary).rows():
            accession = row.get(accession_col)
            if accession is None:
                continue
            values = []
            for column, value in row.items():
                if column == accession_col or value is None:
                    continue
                text = _clip(str(value))
                if text and not text.isdigit():
                    values.append(text)
            views[accession] = RecordView(
                source=structure.source_name, accession=accession, values=values
            )
        if self.config.include_secondary_values:
            self._attach_secondary_values(database, structure, resolver, views)
        for view in views.values():
            view.values = view.values[: self.config.max_values_per_record]
        return [views[accession] for accession in sorted(views)]

    def _attach_secondary_values(
        self,
        database: Database,
        structure: SourceStructure,
        resolver: ObjectResolver,
        views: Dict[str, RecordView],
    ) -> None:
        for table_name in structure.secondary_paths:
            table = database.table(table_name)
            text_columns = [
                c.name
                for c in table.schema.columns
                if not c.data_type.is_numeric and not c.name.endswith("_id")
            ]
            if not text_columns:
                continue
            for row in table.rows():
                owners = resolver.owners_of_row(table_name, row)
                if not owners:
                    continue
                for column in text_columns:
                    value = row.get(column)
                    if value is None:
                        continue
                    text = _clip(str(value))
                    if not text or text.isdigit():
                        continue
                    for owner in owners:
                        view = views.get(owner)
                        if view is not None and len(view.values) < self.config.max_values_per_record:
                            view.values.append(text)

    # ------------------------------------------------------------------
    def detect(
        self,
        database_a: Database,
        structure_a: SourceStructure,
        database_b: Database,
        structure_b: SourceStructure,
    ) -> List[ObjectLink]:
        """Duplicate links between two sources, deduplicated, best first."""
        if self.config.blocking == "key" and not self._has_shared_accessions(
            database_a, structure_a, database_b, structure_b
        ):
            # Key blocking compares only shared-accession pairs (the
            # COLUMBA case); the cached accession value sets say there are
            # none, so skip record-view construction entirely.
            return []
        records_a = self.build_record_views(database_a, structure_a)
        records_b = self.build_record_views(database_b, structure_b)
        return self._detect_pairs(records_a, records_b)

    def detect_chunk(
        self,
        database_a: Database,
        structure_a: SourceStructure,
        counterparts: Sequence[Tuple[Database, SourceStructure]],
    ) -> List[List[ObjectLink]]:
        """:meth:`detect` of one anchor source against many counterparts.

        Returns one link list per counterpart, in counterpart order, each
        byte-identical to the corresponding :meth:`detect` call. The chunk
        shape is what both integration paths fan out (one chunk per new
        source), and it pays once for what the pairwise loop re-did per
        counterpart: the anchor's record views are built a single time —
        lazily, so the key-blocking short-circuit still skips view
        construction when no counterpart shares an accession.
        """
        records_a: Optional[List[RecordView]] = None
        results: List[List[ObjectLink]] = []
        for database_b, structure_b in counterparts:
            if self.config.blocking == "key" and not self._has_shared_accessions(
                database_a, structure_a, database_b, structure_b
            ):
                results.append([])
                continue
            if records_a is None:
                records_a = self.build_record_views(database_a, structure_a)
            if not records_a:
                results.append([])
                continue
            records_b = self.build_record_views(database_b, structure_b)
            results.append(self._detect_pairs(records_a, records_b))
        return results

    def _detect_pairs(
        self, records_a: Sequence[RecordView], records_b: Sequence[RecordView]
    ) -> List[ObjectLink]:
        """Block, score, and link two prebuilt record-view lists."""
        if not records_a or not records_b:
            return []
        pairs = self._candidate_pairs(records_a, records_b)
        links: List[ObjectLink] = []
        for i, j in pairs:
            self.pairs_compared += 1
            similarity = self.scorer(records_a[i], records_b[j])
            if similarity < self.config.similarity_threshold:
                continue
            links.append(
                ObjectLink(
                    source_a=records_a[i].source,
                    accession_a=records_a[i].accession,
                    source_b=records_b[j].source,
                    accession_b=records_b[j].accession,
                    kind="duplicate",
                    certainty=round(
                        min(1.0, similarity * self.config.duplicate_certainty_scale), 4
                    ),
                    evidence=f"record similarity {similarity:.2f}",
                )
            )
        links.sort(key=lambda l: (-l.certainty, l.accession_a, l.accession_b))
        return links

    def _has_shared_accessions(
        self,
        database_a: Database,
        structure_a: SourceStructure,
        database_b: Database,
        structure_b: SourceStructure,
    ) -> bool:
        """Any accession in both primaries? Cached value sets, no copy."""
        accession_a = structure_a.primary_accession()
        accession_b = structure_b.primary_accession()
        if accession_a is None or accession_b is None:
            return False
        return not database_a.table(accession_a.table).value_set(
            accession_a.column
        ).isdisjoint(
            database_b.table(accession_b.table).value_set(accession_b.column)
        )

    def _candidate_pairs(
        self, records_a: Sequence[RecordView], records_b: Sequence[RecordView]
    ) -> List[Tuple[int, int]]:
        if self.config.blocking == "none":
            return [(i, j) for i in range(len(records_a)) for j in range(len(records_b))]
        if self.config.blocking == "key":
            return candidate_pairs_by_key(
                records_a, records_b, key=lambda r: r.accession
            )
        if self.config.blocking == "sorted":
            return sorted_neighborhood_pairs(
                records_a,
                records_b,
                key=lambda r: (r.values[0].lower() if r.values else ""),
                window=self.config.window,
            )
        if self.config.blocking == "ngram":
            return candidate_pairs_ngram(
                records_a,
                records_b,
                n=self.config.ngram_size,
                max_gram_frequency=self.config.max_gram_frequency,
            )
        raise ValueError(f"unknown blocking strategy {self.config.blocking!r}")


def _clip(text: str) -> str:
    text = text.strip()
    if len(text) > _SEQUENCE_PREVIEW * 4:
        return text[:_SEQUENCE_PREVIEW]
    return text
