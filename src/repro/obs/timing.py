"""Per-stage timing helpers and the workload calibration record.

:class:`WorkloadCalibration` is the data behind ``backend="auto"``:
for every stage kind (``import``, ``link``, ``duplicates``,
``batch_scan``, ``tokenize``, ``encode_rows``) it accumulates measured
per-fanout wall times for the two arms — ``serial`` and ``parallel``
(whatever pool the host configured).  The auto executor consults
:meth:`choose` before each fan-out:

1. While the serial arm has fewer than :data:`MIN_RUNS` samples for a
   stage, run serial (exploration).
2. Then, while the parallel arm has fewer than ``MIN_RUNS`` samples,
   run parallel (exploration).
3. Once both arms are sampled, the decision is final for the stage:
   the arm with the lower mean seconds-per-fanout wins, ties going to
   serial.  The auto executor caches the decision, so a stage kind is
   decided **once per session** and never flip-flops mid-run.

The record persists as a JSON sidecar next to the snapshot
(``<snapshot>.calibration.json``), so a warehouse that has measured its
workload once opens already calibrated: given the same calibration file
the choices are fully deterministic.  Byte-identical *results* are
guaranteed independently by the executor contract (fixed-order merges),
so calibration only ever moves time, never output.

All measurements use ``time.perf_counter()``.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, Optional, Tuple

__all__ = ["ArmSample", "WorkloadCalibration", "MIN_RUNS", "Stopwatch"]

#: Fan-outs each arm must have seen before a stage's choice is final.
MIN_RUNS = 2

SERIAL = "serial"
PARALLEL = "parallel"


class Stopwatch:
    """Tiny ``perf_counter`` stopwatch: ``elapsed`` after ``stop()``."""

    __slots__ = ("started", "elapsed")

    def __init__(self) -> None:
        self.started = perf_counter()
        self.elapsed = 0.0

    def stop(self) -> float:
        self.elapsed = perf_counter() - self.started
        return self.elapsed


@dataclass
class ArmSample:
    """Accumulated measurements for one arm of one stage."""

    runs: int = 0
    items: int = 0
    seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.runs if self.runs else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"runs": self.runs, "items": self.items, "seconds": self.seconds}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ArmSample":
        return cls(
            runs=int(payload.get("runs", 0)),
            items=int(payload.get("items", 0)),
            seconds=float(payload.get("seconds", 0.0)),
        )


class WorkloadCalibration:
    """Serial-vs-parallel per-fanout timings per stage kind."""

    VERSION = 1

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._stages: Dict[str, Dict[str, ArmSample]] = {}

    # -- recording ---------------------------------------------------

    def record(self, stage: str, arm: str, items: int, seconds: float) -> None:
        with self._lock:
            arms = self._stages.setdefault(
                stage, {SERIAL: ArmSample(), PARALLEL: ArmSample()}
            )
            sample = arms.setdefault(arm, ArmSample())
            sample.runs += 1
            sample.items += items
            sample.seconds += seconds

    # -- deciding ----------------------------------------------------

    def choose(self, stage: str) -> Tuple[str, bool]:
        """``(arm, calibrated)`` for the next fan-out of ``stage``.

        ``calibrated`` is False while still exploring; once True the
        answer is stable for this calibration state.
        """
        with self._lock:
            arms = self._stages.get(stage)
            if arms is None:
                return SERIAL, False
            serial = arms.get(SERIAL, ArmSample())
            parallel = arms.get(PARALLEL, ArmSample())
            if serial.runs < MIN_RUNS:
                return SERIAL, False
            if parallel.runs < MIN_RUNS:
                return PARALLEL, False
            if serial.mean_seconds <= parallel.mean_seconds:
                return SERIAL, True
            return PARALLEL, True

    def decisions(self) -> Dict[str, Dict[str, Any]]:
        """Per-stage summary: chosen arm, calibration state, arm means."""
        with self._lock:
            stages = sorted(self._stages)
        summary = {}
        for stage in stages:
            arm, calibrated = self.choose(stage)
            with self._lock:
                arms = self._stages[stage]
                summary[stage] = {
                    "choice": arm,
                    "calibrated": calibrated,
                    "serial": arms.get(SERIAL, ArmSample()).to_dict(),
                    "parallel": arms.get(PARALLEL, ArmSample()).to_dict(),
                }
        return summary

    @property
    def empty(self) -> bool:
        with self._lock:
            return not self._stages

    # -- persistence -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "version": self.VERSION,
                "stages": {
                    stage: {arm: sample.to_dict() for arm, sample in arms.items()}
                    for stage, arms in sorted(self._stages.items())
                },
            }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "WorkloadCalibration":
        calibration = cls()
        stages = payload.get("stages", {})
        if not isinstance(stages, dict):
            return calibration
        for stage, arms in stages.items():
            if not isinstance(arms, dict):
                continue
            for arm, sample in arms.items():
                if arm not in (SERIAL, PARALLEL) or not isinstance(sample, dict):
                    continue
                calibration._stages.setdefault(
                    stage, {SERIAL: ArmSample(), PARALLEL: ArmSample()}
                )[arm] = ArmSample.from_dict(sample)
        return calibration

    def save(self, path: str) -> None:
        """Atomic write (tmp + replace), same crash discipline as the
        snapshot itself."""
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            # repro-lint: allow[raw-json-dumps] obs is a leaf and cannot import persist; the sidecar is advisory, not content-hashed
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "WorkloadCalibration":
        """Load a sidecar; a missing or corrupt file yields an empty
        calibration (the system just re-explores)."""
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return cls()
        if not isinstance(payload, dict):
            return cls()
        return cls.from_dict(payload)
