"""repro.obs — the unified telemetry layer.

A deliberate leaf package: it imports nothing from the rest of
``repro``, so every other layer (exec, persist, relational, core, CLI)
can depend on it without cycles.  Four modules:

``metrics``
    Thread-safe registry of counters, gauges, and duration histograms,
    with a no-op twin for the disabled path and a Prometheus
    text-format renderer for external scrapers.
``events``
    Synchronous lifecycle event bus with typed constants and a
    JSON-lines exporter (events, spans, and a final metrics line).
``trace``
    Hierarchical span trees per top-level operation, propagated across
    thread and fork-process pools, with a bounded slow-span log.
``timing``
    ``perf_counter`` helpers plus :class:`WorkloadCalibration`, the
    persisted record behind ``backend="auto"``.

:class:`Observability` bundles one registry + one bus + one tracer per
``Aladin`` and owns the optional export sinks.  Enablement is decided
once at construction from :class:`ObsConfig` — default **on**, switched
off by ``REPRO_OBS=0`` (or ``false``/``no``/``off``) or per-instance
via ``AladinConfig.observability.enabled = False``.  Disabled, all
three handles are the shared null singletons and hot paths receive
``None`` instead, so the instrumented code compiles down to a handful
of ``is None`` checks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.events import (
    EventBus,
    JsonlExporter,
    NULL_BUS,
    LIFECYCLE_EVENTS,
)
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.timing import WorkloadCalibration
from repro.obs.trace import NULL_TRACER, SLOW_SPAN_SECONDS, Tracer, render_spans

__all__ = [
    "ObsConfig",
    "Observability",
    "MetricsRegistry",
    "EventBus",
    "Tracer",
    "WorkloadCalibration",
    "LIFECYCLE_EVENTS",
    "render_spans",
]

_FALSY = ("0", "false", "no", "off")


def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS", "1").strip().lower() not in _FALSY


def _env_export_path() -> Optional[str]:
    return os.environ.get("REPRO_OBS_EXPORT") or None


def _env_prometheus_path() -> Optional[str]:
    return os.environ.get("REPRO_OBS_PROMETHEUS") or None


def _env_slow_seconds() -> float:
    raw = os.environ.get("REPRO_OBS_SLOW_SECONDS")
    if not raw:
        return SLOW_SPAN_SECONDS
    try:
        return float(raw)
    except ValueError:
        return SLOW_SPAN_SECONDS


@dataclass
class ObsConfig:
    """Host-local observability policy (never persisted in snapshots)."""

    enabled: bool = field(default_factory=_env_enabled)
    #: Optional JSON-lines sink: every event and finished span is
    #: appended (batched flushes), the final metrics snapshot on close.
    export_path: Optional[str] = field(default_factory=_env_export_path)
    #: Optional Prometheus text-format target: the full registry is
    #: rendered to this file on ``close()`` (atomically), ready for a
    #: node-exporter textfile collector.
    prometheus_path: Optional[str] = field(default_factory=_env_prometheus_path)
    #: Spans at least this slow enter the tracer's bounded slow-span
    #: log (``repro trace --slow`` reads it).
    slow_span_seconds: float = field(default_factory=_env_slow_seconds)


class Observability:
    """One registry + one bus + one tracer, wired per ``Aladin``."""

    def __init__(self, config: Optional[ObsConfig] = None) -> None:
        self.config = config or ObsConfig()
        self.enabled = self.config.enabled
        if self.enabled:
            self.metrics = MetricsRegistry()
            self.events = EventBus()
            self.trace = Tracer(slow_seconds=self.config.slow_span_seconds)
        else:
            self.metrics = NULL_REGISTRY
            self.events = NULL_BUS
            self.trace = NULL_TRACER
        self._exporter: Optional[JsonlExporter] = None
        if self.enabled and self.config.export_path:
            self._exporter = JsonlExporter(self.config.export_path)
            self.events.subscribe(self._exporter)
            self.trace.add_sink(self._exporter.write_span)

    @property
    def metrics_or_none(self):
        """The registry for hot paths: ``None`` when disabled, so
        instrumentation costs one identity check."""
        return self.metrics if self.enabled else None

    @property
    def events_or_none(self):
        return self.events if self.enabled else None

    @property
    def trace_or_none(self):
        """The tracer for hot paths: ``None`` when disabled."""
        return self.trace if self.enabled else None

    def close(self) -> None:
        """Flush the final metrics line, write the Prometheus target,
        and release the export sink.  Idempotent."""
        exporter = self._exporter
        if exporter is not None:
            exporter.write_metrics(self.metrics.snapshot())
            exporter.close()
            self._exporter = None
        path = self.config.prometheus_path
        if self.enabled and path:
            self._write_prometheus(path)

    def _write_prometheus(self, path: str) -> None:
        """Atomic write so a concurrent scraper never reads a torn file."""
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(self.metrics.render_prometheus())
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
