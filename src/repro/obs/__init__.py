"""repro.obs — the unified telemetry layer.

A deliberate leaf package: it imports nothing from the rest of
``repro``, so every other layer (exec, persist, relational, core, CLI)
can depend on it without cycles.  Three modules:

``metrics``
    Thread-safe registry of counters, gauges, and duration histograms,
    with a no-op twin for the disabled path.
``events``
    Synchronous lifecycle event bus with typed constants and a
    JSON-lines exporter.
``timing``
    ``perf_counter`` helpers plus :class:`WorkloadCalibration`, the
    persisted record behind ``backend="auto"``.

:class:`Observability` bundles one registry + one bus per ``Aladin``
and owns the optional export sink.  Enablement is decided once at
construction from :class:`ObsConfig` — default **on**, switched off by
``REPRO_OBS=0`` (or ``false``/``no``/``off``) or per-instance via
``AladinConfig.observability.enabled = False``.  Disabled, both handles
are the shared null singletons and hot paths receive ``None`` instead,
so the instrumented code compiles down to a handful of ``is None``
checks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.events import (
    EventBus,
    JsonlExporter,
    NULL_BUS,
    LIFECYCLE_EVENTS,
)
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.timing import WorkloadCalibration

__all__ = [
    "ObsConfig",
    "Observability",
    "MetricsRegistry",
    "EventBus",
    "WorkloadCalibration",
    "LIFECYCLE_EVENTS",
]

_FALSY = ("0", "false", "no", "off")


def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS", "1").strip().lower() not in _FALSY


def _env_export_path() -> Optional[str]:
    return os.environ.get("REPRO_OBS_EXPORT") or None


@dataclass
class ObsConfig:
    """Host-local observability policy (never persisted in snapshots)."""

    enabled: bool = field(default_factory=_env_enabled)
    #: Optional JSON-lines sink: every event is appended eagerly, the
    #: final metrics snapshot on close.
    export_path: Optional[str] = field(default_factory=_env_export_path)


class Observability:
    """One registry + one bus, wired per ``Aladin`` instance."""

    def __init__(self, config: Optional[ObsConfig] = None) -> None:
        self.config = config or ObsConfig()
        self.enabled = self.config.enabled
        if self.enabled:
            self.metrics = MetricsRegistry()
            self.events = EventBus()
        else:
            self.metrics = NULL_REGISTRY
            self.events = NULL_BUS
        self._exporter: Optional[JsonlExporter] = None
        if self.enabled and self.config.export_path:
            self._exporter = JsonlExporter(self.config.export_path)
            self.events.subscribe(self._exporter)

    @property
    def metrics_or_none(self):
        """The registry for hot paths: ``None`` when disabled, so
        instrumentation costs one identity check."""
        return self.metrics if self.enabled else None

    @property
    def events_or_none(self):
        return self.events if self.enabled else None

    def close(self) -> None:
        """Flush the final metrics line and release the export sink.
        Idempotent."""
        exporter = self._exporter
        if exporter is not None:
            exporter.write_metrics(self.metrics.snapshot())
            exporter.close()
            self._exporter = None
