"""Synchronous lifecycle event bus with typed event constants.

Every state transition the warehouse goes through emits exactly one
event on its owning :class:`~repro.core.aladin.Aladin`'s bus:

========================  =====================================================
constant                  emitted when
========================  =====================================================
``SOURCE_ADDED``          a source's five-step integration fully completes
                          (links, duplicates, index, and checkpoint included)
``SOURCE_UPDATED``        ``update_source`` finishes (payload says whether the
                          change stayed below threshold or forced re-analysis)
``SOURCE_REMOVED``        ``remove_source`` finishes unlinking a source
``CHECKPOINT_COMMITTED``  a per-source checkpoint (write or remove) lands in
                          the attached snapshot
``COMPACTION_RAN``        online compaction rewrote the snapshot
``SNAPSHOT_OPENED``       ``Aladin.open`` produced a warm-started system
``HYDRATION_FAULTED``     a lazy stub's rows were materialized on first touch
``POOL_SPAWNED``          a resident worker pool was built (or re-forked)
``POOL_TEARDOWN``         a resident worker pool was torn down (idle or close)
========================  =====================================================

The bus is synchronous and thread-safe: ``emit`` assigns a monotonically
increasing sequence number under the lock, appends to a bounded history,
and invokes subscribers in subscription order before returning.  Events
carry a wall-clock timestamp *and* a ``perf_counter`` reference — the
former for humans reading an export, the latter for ordering arithmetic
that must survive clock steps (the same dual-stamp rule the snapshot
lock sidecar follows).

Like the metrics registry, the bus has a null twin for the disabled
path: :data:`NULL_BUS` swallows everything and reports empty history.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "SOURCE_ADDED",
    "SOURCE_UPDATED",
    "SOURCE_REMOVED",
    "CHECKPOINT_COMMITTED",
    "COMPACTION_RAN",
    "SNAPSHOT_OPENED",
    "HYDRATION_FAULTED",
    "POOL_SPAWNED",
    "POOL_TEARDOWN",
    "SERVE_STARTED",
    "SERVE_GENERATION_SWAPPED",
    "SERVE_DRAINED",
    "LIFECYCLE_EVENTS",
    "Event",
    "EventBus",
    "NullEventBus",
    "NULL_BUS",
    "JsonlExporter",
]

SOURCE_ADDED = "source.added"
SOURCE_UPDATED = "source.updated"
SOURCE_REMOVED = "source.removed"
CHECKPOINT_COMMITTED = "checkpoint.committed"
COMPACTION_RAN = "compaction.ran"
SNAPSHOT_OPENED = "snapshot.opened"
HYDRATION_FAULTED = "hydration.faulted"
POOL_SPAWNED = "pool.spawned"
POOL_TEARDOWN = "pool.teardown"
SERVE_STARTED = "serve.started"
SERVE_GENERATION_SWAPPED = "serve.generation_swapped"
SERVE_DRAINED = "serve.drained"

LIFECYCLE_EVENTS = (
    SOURCE_ADDED,
    SOURCE_UPDATED,
    SOURCE_REMOVED,
    CHECKPOINT_COMMITTED,
    COMPACTION_RAN,
    SNAPSHOT_OPENED,
    HYDRATION_FAULTED,
    POOL_SPAWNED,
    POOL_TEARDOWN,
    SERVE_STARTED,
    SERVE_GENERATION_SWAPPED,
    SERVE_DRAINED,
)

#: Events kept in the in-memory history ring.
HISTORY_LIMIT = 4096


@dataclass(frozen=True)
class Event:
    """One lifecycle transition with its structured payload."""

    seq: int
    kind: str
    wall_time: float
    monotonic: float
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "event",
            "seq": self.seq,
            "kind": self.kind,
            "wall_time": self.wall_time,
            "monotonic": self.monotonic,
            "payload": self.payload,
        }


class EventBus:
    """Synchronous, thread-safe publish/subscribe with bounded history."""

    def __init__(self, history_limit: int = HISTORY_LIMIT) -> None:
        self._lock = threading.RLock()
        self._seq = 0
        self._history: deque = deque(maxlen=history_limit)
        self._subscribers: List[Callable[[Event], None]] = []
        self._kind_subscribers: Dict[str, List[Callable[[Event], None]]] = {}

    @property
    def enabled(self) -> bool:
        return True

    def subscribe(
        self, handler: Callable[[Event], None], kind: Optional[str] = None
    ) -> Callable[[Event], None]:
        """Register ``handler`` for every event (or only ``kind``).
        Returns the handler so it can be passed to :meth:`unsubscribe`."""
        with self._lock:
            if kind is None:
                self._subscribers.append(handler)
            else:
                self._kind_subscribers.setdefault(kind, []).append(handler)
        return handler

    def unsubscribe(self, handler: Callable[[Event], None]) -> None:
        with self._lock:
            if handler in self._subscribers:
                self._subscribers.remove(handler)
            for handlers in self._kind_subscribers.values():
                if handler in handlers:
                    handlers.remove(handler)

    def emit(self, kind: str, **payload: Any) -> Event:
        """Record one event and deliver it to subscribers synchronously.

        Emission order *is* lifecycle order: the sequence number is
        assigned under the bus lock, so concurrent emitters (resident
        pool teardown timers, overlapped graph nodes) serialize here.
        """
        with self._lock:
            self._seq += 1
            event = Event(
                seq=self._seq,
                kind=kind,
                wall_time=time.time(),
                monotonic=time.perf_counter(),
                payload=payload,
            )
            self._history.append(event)
            handlers = list(self._subscribers)
            handlers.extend(self._kind_subscribers.get(kind, ()))
        for handler in handlers:
            handler(event)
        return event

    def history(self, kind: Optional[str] = None) -> List[Event]:
        with self._lock:
            events = list(self._history)
        if kind is None:
            return events
        return [event for event in events if event.kind == kind]

    def kinds(self) -> List[str]:
        """Distinct event kinds seen, in first-occurrence order."""
        seen: Dict[str, None] = {}
        for event in self.history():
            seen.setdefault(event.kind, None)
        return list(seen)

    def clear(self) -> None:
        with self._lock:
            self._history.clear()


class NullEventBus:
    """The disabled bus: emits vanish, history is empty."""

    __slots__ = ()

    @property
    def enabled(self) -> bool:
        return False

    def subscribe(self, handler, kind=None):
        return handler

    def unsubscribe(self, handler) -> None:
        pass

    def emit(self, kind: str, **payload: Any) -> None:
        return None

    def history(self, kind: Optional[str] = None) -> List[Event]:
        return []

    def kinds(self) -> List[str]:
        return []

    def clear(self) -> None:
        pass


NULL_BUS = NullEventBus()


#: Records buffered between exporter flushes.  One syscall per batch
#: instead of one per lifecycle event; ``write_metrics`` and ``close()``
#: always flush, so a finished run never loses tail records.
EXPORT_FLUSH_EVERY = 64


class JsonlExporter:
    """Append-only JSON-lines sink for events, spans, and a final
    metrics line.

    Subscribed to a bus it writes each event (``"type": "event"``);
    registered as a tracer sink (:meth:`write_span`) it interleaves
    finished spans (``"type": "span"``) into the same stream;
    ``write_metrics`` appends the final registry snapshot
    (``"type": "metrics"``) — ``Aladin.close()`` calls it so an exported
    run always ends with its totals.  Writes are buffered and flushed
    every :data:`EXPORT_FLUSH_EVERY` records plus on ``write_metrics``
    and ``close()``.  IO failures disable the exporter rather than
    break the pipeline.
    """

    def __init__(self, path: str, flush_every: int = EXPORT_FLUSH_EVERY) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._fh = open(path, "a", encoding="utf-8")
        self._closed = False
        self._flush_every = max(1, flush_every)
        self._pending = 0

    def __call__(self, event: Event) -> None:
        self._write(event.to_dict())

    def write_span(self, span) -> None:
        """Tracer sink: interleave one finished span into the stream."""
        self._write(span.to_dict())

    def write_metrics(self, snapshot: Dict[str, Any]) -> None:
        self._write({"type": "metrics", "metrics": snapshot}, flush=True)

    def _write(self, record: Dict[str, Any], flush: bool = False) -> None:
        with self._lock:
            if self._closed:
                return
            try:
                # repro-lint: allow[raw-json-dumps] obs is a leaf and cannot import persist; export lines are not content-hashed
                self._fh.write(json.dumps(record) + "\n")
                self._pending += 1
                if flush or self._pending >= self._flush_every:
                    self._fh.flush()
                    self._pending = 0
            except (OSError, ValueError):
                self._closed = True

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                try:
                    self._fh.close()  # closing flushes buffered records
                except OSError:
                    pass
