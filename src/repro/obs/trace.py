"""Hierarchical tracing: span trees across serial, thread, and fork pools.

Metrics say *what* happened and events say *when*; spans say *why it
took that long and under which operation*.  Every top-level operation
(``integrate_many``, ``add_source``, ``Aladin.open``, a search, a
checkpoint, a compaction) opens a **root span**; the layers below it —
task-graph nodes, executor fan-outs, per-task worker bodies, hydration
faults, pushdown decisions — open child spans, producing one connected
tree per operation:

``trace_id``
    Shared by every span of one top-level operation.
``span_id`` / ``parent_id``
    Tree edges.  Root spans have ``parent_id = None``.
``name`` + ``attributes``
    ``op.integrate_many``, ``fanout.link``, ``task``, … with structured
    attributes (source, stage kind, backend arm, chunk index).
``wall_time`` + ``duration``
    Start is wall-clock for humans; the duration is measured with
    ``perf_counter`` per the repo's timing policy.
``status``
    ``"ok"`` or ``"error"`` (with the exception type name).

**Context propagation.**  A module-level :data:`contextvars.ContextVar`
carries the active span through serial code and — via
:meth:`Tracer.activate` — across thread-pool submission boundaries
(``ThreadPoolExecutor`` does *not* copy context into reused worker
threads, so the task-graph scheduler captures the context at submit
time and re-activates it in the worker).  Fork-process pools cannot
share a contextvar at all: the parent span context is serialized into
the task spec as a plain ``(trace_id, parent_span_id)`` tuple, workers
record their subspans locally with :class:`WorkerSpanRecorder` (plain
picklable dicts), ship them back on the existing ``map_ordered``
result channel, and :meth:`Tracer.adopt` re-parents them under the
fan-out span in deterministic submission order with freshly assigned
span ids.

**Zero-cost when disabled.**  :data:`NULL_TRACER` is the twin for
cool paths (top-level operations); hot paths (fan-outs, graph nodes,
chunk runners) receive literally ``None`` and pay one identity check —
the seam is held under 1% by ``benchmarks/bench_obs.py``.

Finished spans land in a bounded ring plus a separate bounded
**slow-span log** (spans whose duration crosses
``ObsConfig.slow_span_seconds``), so tail offenders survive ring
eviction; ``repro trace --slow`` reads the latter.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from time import perf_counter, time as wall_clock
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "WorkerSpanRecorder",
    "render_spans",
]

#: Finished spans kept in the in-memory ring.
SPAN_HISTORY = 4096
#: Spans kept in the slow-span log (they also live in the ring until
#: evicted; the slow log is what survives churn).
SLOW_LOG_LIMIT = 256
#: Default duration threshold for the slow-span log, seconds.
SLOW_SPAN_SECONDS = 1.0

#: The active span, as ``(tracer, trace_id, span_id)``.  One module-level
#: contextvar (per the contextvars documentation) — the tracer identity
#: is part of the value so two live ``Aladin`` instances never adopt
#: each other's spans as parents.
_ACTIVE: ContextVar[Optional[Tuple["Tracer", str, str]]] = ContextVar(
    "repro_obs_active_span", default=None
)


class Span:
    """One finished span.  Immutable once recorded."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "wall_time",
        "duration",
        "attributes",
        "status",
        "error",
        "order",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        wall_time: float,
        duration: float,
        attributes: Dict[str, Any],
        status: str = "ok",
        error: Optional[str] = None,
        order: int = 0,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.wall_time = wall_time
        self.duration = duration
        self.attributes = attributes
        self.status = status
        self.error = error
        #: Ring insertion index; renderers use it to order siblings
        #: deterministically (adopted worker spans enter in submission
        #: order, inline children in completion order).
        self.order = order

    def to_dict(self) -> Dict[str, Any]:
        record = {
            "type": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "wall_time": self.wall_time,
            "duration": self.duration,
            "attributes": self.attributes,
            "status": self.status,
        }
        if self.error is not None:
            record["error"] = self.error
        return record


class _SpanHandle:
    """A span in flight.  Handed out by :meth:`Tracer.span` /
    :meth:`Tracer.start_span`; mutate attributes freely until finish."""

    __slots__ = (
        "tracer",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "attributes",
        "wall_time",
        "_started",
        "_token",
    )

    def __init__(self, tracer, trace_id, span_id, parent_id, name, attributes):
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attributes = attributes
        self.wall_time = wall_clock()
        self._started = perf_counter()
        self._token = None

    def set(self, **attributes: Any) -> None:
        self.attributes.update(attributes)

    def context(self) -> Tuple[str, str]:
        """Picklable span context for shipping into fork workers."""
        return (self.trace_id, self.span_id)


class _NullSpanHandle:
    """Shared no-op handle yielded by the null tracer's ``span()``."""

    __slots__ = ()
    trace_id = ""
    span_id = ""
    parent_id = None

    def set(self, **attributes: Any) -> None:
        pass

    def context(self) -> None:
        return None


_NULL_HANDLE = _NullSpanHandle()


class Tracer:
    """Per-``Aladin`` span recorder with bounded history and sinks."""

    def __init__(
        self,
        history_limit: int = SPAN_HISTORY,
        slow_seconds: float = SLOW_SPAN_SECONDS,
        slow_log_limit: int = SLOW_LOG_LIMIT,
    ) -> None:
        self._lock = threading.RLock()
        self._spans: deque = deque(maxlen=history_limit)
        self._slow: deque = deque(maxlen=slow_log_limit)
        self.slow_seconds = slow_seconds
        self._next = 0
        self._order = 0
        self._sinks: List[Any] = []

    @property
    def enabled(self) -> bool:
        return True

    # -- id + context plumbing ------------------------------------------

    def _new_id(self, prefix: str) -> str:
        with self._lock:
            self._next += 1
            return f"{prefix}{self._next:x}"

    def current(self) -> Optional[Tuple[str, str]]:
        """The active ``(trace_id, span_id)`` in this context, if it
        belongs to *this* tracer."""
        active = _ACTIVE.get()
        if active is not None and active[0] is self:
            return (active[1], active[2])
        return None

    @contextmanager
    def activate(self, context: Optional[Tuple[str, str]]) -> Iterator[None]:
        """Re-activate a captured span context in another thread, so
        spans opened there become its children."""
        if context is None:
            yield
            return
        token = _ACTIVE.set((self, context[0], context[1]))
        try:
            yield
        finally:
            _ACTIVE.reset(token)

    # -- recording ------------------------------------------------------

    def start_span(self, name: str, **attributes: Any) -> _SpanHandle:
        """Open a span under the active context (or a fresh trace) and
        make it the active context until :meth:`finish`."""
        parent = self.current()
        if parent is None:
            trace_id = self._new_id("t")
            parent_id: Optional[str] = None
        else:
            trace_id, parent_id = parent
        handle = _SpanHandle(
            self, trace_id, self._new_id("s"), parent_id, name, attributes
        )
        handle._token = _ACTIVE.set((self, trace_id, handle.span_id))
        return handle

    def finish(self, handle: _SpanHandle, error: Optional[BaseException] = None) -> None:
        duration = perf_counter() - handle._started
        if handle._token is not None:
            try:
                _ACTIVE.reset(handle._token)
            except ValueError:
                pass  # finished in a different context; parentage still holds
            handle._token = None
        self._record(
            Span(
                handle.trace_id,
                handle.span_id,
                handle.parent_id,
                handle.name,
                handle.wall_time,
                duration,
                handle.attributes,
                status="ok" if error is None else "error",
                error=None if error is None else type(error).__name__,
            )
        )

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[_SpanHandle]:
        handle = self.start_span(name, **attributes)
        try:
            yield handle
        except BaseException as exc:
            self.finish(handle, error=exc)
            raise
        self.finish(handle)

    def adopt(
        self,
        records: List[Dict[str, Any]],
        parent: _SpanHandle,
        labels: Optional[List[str]] = None,
    ) -> None:
        """Re-parent worker-recorded span dicts under ``parent``.

        ``records`` arrive in deterministic submission order (the
        ``map_ordered`` collection order); worker-local ids are mapped
        to fresh global ids, worker-root spans become children of the
        fan-out span, and per-task ``index`` attributes are resolved to
        their labels when the caller has them.
        """
        if not records:
            return
        id_map: Dict[str, str] = {}
        for record in records:
            id_map[record["span_id"]] = self._new_id("s")
        for record in records:
            local_parent = record.get("parent_id")
            attributes = dict(record.get("attributes") or {})
            if labels is not None:
                index = attributes.get("index")
                if isinstance(index, int) and 0 <= index < len(labels):
                    attributes["label"] = labels[index]
            self._record(
                Span(
                    parent.trace_id,
                    id_map[record["span_id"]],
                    id_map.get(local_parent, parent.span_id),
                    record["name"],
                    record["wall_time"],
                    record["duration"],
                    attributes,
                    status=record.get("status", "ok"),
                    error=record.get("error"),
                )
            )

    def record_complete(
        self,
        name: str,
        wall_time: float,
        duration: float,
        error: Optional[str] = None,
        **attributes: Any,
    ) -> None:
        """Record an already-measured root span (used by ``Aladin.open``,
        whose timing starts before the tracer exists)."""
        self._record(
            Span(
                self._new_id("t"),
                self._new_id("s"),
                None,
                name,
                wall_time,
                duration,
                attributes,
                status="ok" if error is None else "error",
                error=error,
            )
        )

    def _record(self, span: Span) -> None:
        with self._lock:
            self._order += 1
            span.order = self._order
            self._spans.append(span)
            if span.duration >= self.slow_seconds:
                self._slow.append(span)
            sinks = list(self._sinks)
        for sink in sinks:
            try:
                sink(span)
            except Exception:  # noqa: BLE001 - a broken sink must not break the traced operation
                pass

    def add_sink(self, sink) -> None:
        """Register a callable invoked with every finished :class:`Span`
        (the JSONL exporter interleaves them as ``"type": "span"``)."""
        with self._lock:
            self._sinks.append(sink)

    # -- reading --------------------------------------------------------

    def spans(self, trace_id: Optional[str] = None) -> List[Span]:
        with self._lock:
            spans = list(self._spans)
        if trace_id is None:
            return spans
        return [span for span in spans if span.trace_id == trace_id]

    def traces(self) -> List[Dict[str, Any]]:
        """All retained spans grouped per trace, in first-span order:
        ``[{"trace_id": ..., "root": name-or-None, "spans": [dict, ...]}]``."""
        grouped: Dict[str, List[Span]] = {}
        for span in self.spans():
            grouped.setdefault(span.trace_id, []).append(span)
        traces = []
        for trace_id, spans in grouped.items():
            root = next((s for s in spans if s.parent_id is None), None)
            traces.append(
                {
                    "trace_id": trace_id,
                    "root": root.name if root is not None else None,
                    "spans": [span.to_dict() for span in spans],
                }
            )
        return traces

    def slow_spans(self, threshold: Optional[float] = None) -> List[Span]:
        """The bounded slow-span log, optionally re-filtered to an even
        higher threshold (the CLI's ``--slow <seconds>``)."""
        with self._lock:
            spans = list(self._slow)
        if threshold is None:
            return spans
        return [span for span in spans if span.duration >= threshold]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._slow.clear()


class NullTracer:
    """The disabled tracer: spans vanish, context never propagates."""

    __slots__ = ()
    enabled = False
    slow_seconds = SLOW_SPAN_SECONDS

    def current(self) -> None:
        return None

    @contextmanager
    def activate(self, context) -> Iterator[None]:
        yield

    def start_span(self, name: str, **attributes: Any) -> _NullSpanHandle:
        return _NULL_HANDLE

    def finish(self, handle, error: Optional[BaseException] = None) -> None:
        pass

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[_NullSpanHandle]:
        yield _NULL_HANDLE

    def adopt(self, records, parent, labels=None) -> None:
        pass

    def record_complete(self, name, wall_time, duration, error=None, **attributes):
        pass

    def add_sink(self, sink) -> None:
        pass

    def spans(self, trace_id: Optional[str] = None) -> List[Span]:
        return []

    def traces(self) -> List[Dict[str, Any]]:
        return []

    def slow_spans(self, threshold: Optional[float] = None) -> List[Span]:
        return []

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()


class WorkerSpanRecorder:
    """Worker-side span recorder: plain dicts, no tracer, picklable.

    Built inside pool workers (threads or forked processes) from the
    ``(trace_id, parent_span_id)`` tuple serialized into the task spec.
    Span ids are worker-local (``w1``, ``w2``, …); :meth:`Tracer.adopt`
    re-assigns them on the coordinator.  A ``parent_id`` of ``None``
    marks a worker-root span, re-parented under the fan-out span.
    """

    __slots__ = ("trace_id", "parent_id", "spans", "_next")

    def __init__(self, context: Tuple[str, str]) -> None:
        self.trace_id, self.parent_id = context
        self.spans: List[Dict[str, Any]] = []
        self._next = 0

    def record(
        self,
        name: str,
        wall_time: float,
        duration: float,
        status: str = "ok",
        error: Optional[str] = None,
        **attributes: Any,
    ) -> None:
        self._next += 1
        record = {
            "span_id": f"w{self._next}",
            "parent_id": None,
            "name": name,
            "wall_time": wall_time,
            "duration": duration,
            "attributes": attributes,
            "status": status,
        }
        if error is not None:
            record["error"] = error
        self.spans.append(record)

    @contextmanager
    def task(self, index: int, **attributes: Any) -> Iterator[None]:
        """Record one per-task span (name ``task``, the fan-out item
        index as an attribute — the coordinator maps it to a label)."""
        wall = wall_clock()
        started = perf_counter()
        try:
            yield
        except BaseException as exc:
            self.record(
                "task",
                wall,
                perf_counter() - started,
                status="error",
                error=type(exc).__name__,
                index=index,
                **attributes,
            )
            raise
        self.record(
            "task", wall, perf_counter() - started, index=index, **attributes
        )


def render_spans(
    spans: List[Any], slow_threshold: Optional[float] = None
) -> str:
    """Render span trees as indented text with durations.

    Accepts :class:`Span` objects or their ``to_dict`` form.  Spans are
    grouped by ``trace_id``; within a trace, children render under
    their parent ordered by ring insertion (deterministic: submission
    order for adopted worker spans).  ``slow_threshold`` prunes spans
    (and their subtrees) faster than the given seconds, keeping any
    ancestor chain that leads to a slow span.
    """
    dicts = [span.to_dict() if hasattr(span, "to_dict") else dict(span) for span in spans]
    for position, record in enumerate(dicts):
        record.setdefault("_order", position)
    lines: List[str] = []
    by_trace: Dict[str, List[Dict[str, Any]]] = {}
    for record in dicts:
        by_trace.setdefault(record["trace_id"], []).append(record)

    def keeps(record, children_of):
        if slow_threshold is None or record["duration"] >= slow_threshold:
            return True
        return any(keeps(child, children_of) for child in children_of.get(record["span_id"], ()))

    for trace_id, records in by_trace.items():
        children: Dict[Optional[str], List[Dict[str, Any]]] = {}
        ids = {record["span_id"] for record in records}
        for record in records:
            parent = record["parent_id"]
            if parent not in ids:
                parent = None  # orphaned (ring-evicted ancestor): render at root
            children.setdefault(parent, []).append(record)
        for siblings in children.values():
            siblings.sort(key=lambda r: r["_order"])
        roots = [r for r in children.get(None, ()) if keeps(r, children)]
        if not roots:
            continue
        lines.append(f"trace {trace_id}")

        def walk(record, depth):
            marker = "" if record["status"] == "ok" else f"  !{record.get('error', 'error')}"
            attributes = record.get("attributes") or {}
            rendered = ""
            if attributes:
                pairs = ", ".join(f"{k}={v}" for k, v in sorted(attributes.items()))
                rendered = f"  [{pairs}]"
            lines.append(
                f"{'  ' * depth}- {record['name']}  "
                f"{record['duration'] * 1000:.2f} ms{rendered}{marker}"
            )
            for child in children.get(record["span_id"], ()):
                if keeps(child, children):
                    walk(child, depth + 1)

        for root in roots:
            walk(root, 1)
    return "\n".join(lines)
