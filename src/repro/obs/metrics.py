"""Thread-safe metrics registry: counters, gauges, duration histograms.

One registry per :class:`~repro.core.aladin.Aladin` instance holds every
counter the system used to scatter across layers.  Three metric kinds:

``Counter``
    Monotonically increasing integer (``pool.fanouts``, ``auto.link.serial``).
``Gauge``
    A point-in-time value.  Either set explicitly or registered with a
    provider callable that is resolved at snapshot time — the provider
    form is how the pre-existing ad-hoc counters
    (``Database.column_cache_stats()``, ``Aladin.hydration_stats()``,
    ``BoundedRecordScorer.cache_hits``) become registry views without
    double bookkeeping.
``Histogram``
    Duration distribution: count/sum/min/max plus p50/p95/p99 over a
    bounded reservoir of the most recent observations.

Disabled observability must be zero-cost, so the registry has a null
twin: :data:`NULL_REGISTRY` hands out shared no-op metric objects whose
methods are empty and whose ``snapshot()`` is ``{}``.  Hot paths
(executor fan-outs, graph nodes) skip even that by receiving ``None``
instead of a registry.

All durations recorded here are measured with ``time.perf_counter()`` —
never wall-clock — per the repo's timing policy.
"""

from __future__ import annotations

import json
import math
import threading
from collections import deque
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Callable, Dict, Iterator, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
]

#: Observations kept per histogram for percentile estimation.  Count,
#: sum, min, and max remain exact over the full stream; p50/p95/p99 are
#: over the most recent window, which is what a "where is time going
#: *now*" question wants anyway.
HISTOGRAM_RESERVOIR = 1024


class Counter:
    """Monotonic integer counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Point-in-time value; explicit ``set`` or provider-resolved."""

    __slots__ = ("_lock", "_value", "_provider", "_on_error")

    def __init__(
        self,
        lock: threading.RLock,
        provider: Optional[Callable[[], Any]] = None,
        on_error: Optional[Callable[[], None]] = None,
    ) -> None:
        self._lock = lock
        self._value: Any = 0
        self._provider = provider
        self._on_error = on_error

    def set(self, value: Any) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> Any:
        provider = self._provider
        if provider is not None:
            try:
                return provider()
            except Exception:  # noqa: BLE001 - a broken provider must not break snapshot()
                on_error = self._on_error
                if on_error is not None:
                    on_error()
                return None
        return self._value


class Histogram:
    """Duration distribution with exact count/sum/min/max and
    reservoir-estimated p50/p95/p99."""

    __slots__ = ("_lock", "_count", "_sum", "_min", "_max", "_recent")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._recent: deque = deque(maxlen=HISTOGRAM_RESERVOIR)

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            self._recent.append(value)

    @contextmanager
    def time(self) -> Iterator[None]:
        started = perf_counter()
        try:
            yield
        finally:
            self.observe(perf_counter() - started)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def stats(self) -> Dict[str, float]:
        with self._lock:
            if self._count == 0:
                return {"count": 0, "sum": 0.0}
            ordered = sorted(self._recent)
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": self._sum / self._count,
                "p50": _percentile(ordered, 0.50),
                "p95": _percentile(ordered, 0.95),
                "p99": _percentile(ordered, 0.99),
            }


def _percentile(ordered: list, q: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _prometheus_name(name: str) -> str:
    """Map a dot-separated family to a legal Prometheus metric name."""
    safe = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    return f"repro_{safe}"


def _prometheus_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


class MetricsRegistry:
    """Name -> metric map with get-or-create accessors.

    Metric names are dot-separated families (``pool.fanout.link``,
    ``persist.checkpoint_seconds``); the README's observability section
    documents the catalog.  One shared re-entrant lock guards every
    mutation — metric updates are tiny, contention is not a concern at
    this fan-out granularity, and a single lock keeps ``snapshot()``
    coherent.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    @property
    def enabled(self) -> bool:
        return True

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(self._lock)
            return metric

    def gauge(self, name: str, provider: Optional[Callable[[], Any]] = None) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(
                    self._lock, provider, on_error=self._count_provider_error
                )
            elif provider is not None:
                metric._provider = provider
            return metric

    def _count_provider_error(self) -> None:
        """A gauge provider raised during resolution: the gauge degrades
        to ``None`` (documented), but the failure is counted so broken
        providers are visible instead of invisible."""
        self.counter("obs.provider_errors").inc()

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(self._lock)
            return metric

    def timer(self, name: str):
        """``with registry.timer("stage.link"): ...`` sugar."""
        return self.histogram(name).time()

    def snapshot(self) -> Dict[str, Any]:
        """One coherent dict of everything: counters, resolved gauges,
        histogram stats.  Safe to ``json.dumps`` directly."""
        with self._lock:
            counters = {name: c.value for name, c in sorted(self._counters.items())}
            gauges = {name: g.value for name, g in sorted(self._gauges.items())}
            histograms = {
                name: h.stats() for name, h in sorted(self._histograms.items())
            }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def export_jsonl(self, path: str) -> None:
        """Append the current snapshot as one JSON line."""
        with open(path, "a", encoding="utf-8") as fh:
            # repro-lint: allow[raw-json-dumps] obs is a leaf and cannot import persist; export lines are not content-hashed
            fh.write(json.dumps({"type": "metrics", "metrics": self.snapshot()}) + "\n")

    def render_prometheus(self) -> str:
        """Render the whole registry in Prometheus text exposition format.

        One family per metric, names prefixed ``repro_`` with dots
        mapped to underscores.  Counters get the conventional ``_total``
        suffix; gauges expose only numeric values (a provider that
        degraded to ``None`` is skipped — and counted in
        ``obs.provider_errors``); histograms render as summaries:
        ``{quantile="0.5|0.95|0.99"}`` sample lines plus ``_sum`` and
        ``_count``.  Families are emitted once each (a sanitization
        collision drops the later family rather than corrupting the
        exposition), so scrapers always see well-formed output.
        """
        snapshot = self.snapshot()
        lines: list = []
        seen: set = set()

        def family(name: str, kind: str) -> Optional[str]:
            fam = _prometheus_name(name)
            if kind == "counter":
                fam += "_total"
            if fam in seen:
                return None
            seen.add(fam)
            lines.append(f"# TYPE {fam} {kind}")
            return fam

        for name, value in snapshot["counters"].items():
            fam = family(name, "counter")
            if fam is not None:
                lines.append(f"{fam} {_prometheus_value(value)}")
        for name, value in snapshot["gauges"].items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            fam = family(name, "gauge")
            if fam is not None:
                lines.append(f"{fam} {_prometheus_value(value)}")
        for name, stats in snapshot["histograms"].items():
            fam = family(name, "summary")
            if fam is None:
                continue
            for quantile in ("p50", "p95", "p99"):
                if quantile in stats:
                    lines.append(
                        f'{fam}{{quantile="0.{quantile[1:]}"}} '
                        f"{_prometheus_value(stats[quantile])}"
                    )
            lines.append(f"{fam}_sum {_prometheus_value(stats['sum'])}")
            lines.append(f"{fam}_count {_prometheus_value(stats['count'])}")
        return "\n".join(lines) + "\n" if lines else ""


class _NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = 0

    def set(self, value: Any) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        pass

    @contextmanager
    def time(self) -> Iterator[None]:
        yield

    def stats(self) -> Dict[str, float]:
        return {"count": 0, "sum": 0.0}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetricsRegistry:
    """The disabled registry: every accessor returns a shared no-op
    metric, nothing is ever stored, ``snapshot()`` is empty."""

    __slots__ = ()

    @property
    def enabled(self) -> bool:
        return False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, provider: Optional[Callable[[], Any]] = None) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def timer(self, name: str):
        return _NULL_HISTOGRAM.time()

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def export_jsonl(self, path: str) -> None:
        pass

    def render_prometheus(self) -> str:
        return ""


NULL_REGISTRY = NullMetricsRegistry()
