"""Link discovery: step 4 of the ALADIN pipeline (Section 4.4).

Two kinds of links between objects of *different* sources:

* **explicit** cross-references — attribute values that are accession
  numbers of another source's primary objects, possibly encoded as
  ``"DB:ACC"`` strings (:mod:`crossref`);
* **implicit** relationships — similarity between sequence fields
  (:mod:`seqlinks` via :mod:`blast`/:mod:`alignment`), between long text
  fields (:mod:`textlinks`), names recognized in free text matched against
  unique fields (:mod:`ner`), and shared controlled-vocabulary terms
  (:mod:`ontologylinks`).

Candidate attribute pairs are pruned with per-attribute statistics
(:mod:`stats`, :mod:`pruning`) that are "computed only once for each data
source and can then be reused for subsequently added data sources".
Schema matching (:mod:`schemamatch`) provides the attribute-correspondence
machinery the paper relates this step to.
"""

from repro.linking.model import AttributeLink, LinkConfig, LinkSet, ObjectLink
from repro.linking.stats import AttributeStatistics, collect_statistics
from repro.linking.pruning import is_link_source_candidate, is_link_target_candidate
from repro.linking.resolve import ObjectResolver
from repro.linking.crossref import discover_crossref_links
from repro.linking.seqfields import SequenceField, detect_sequence_fields
from repro.linking.alignment import AlignmentResult, needleman_wunsch, smith_waterman
from repro.linking.blast import BlastHit, BlastIndex
from repro.linking.seqlinks import discover_sequence_links
from repro.linking.textlinks import TfIdfIndex, discover_text_links
from repro.linking.ner import extract_entity_names, discover_name_links
from repro.linking.ontologylinks import discover_ontology_links
from repro.linking.engine import LinkDiscoveryEngine

__all__ = [
    "AlignmentResult",
    "AttributeLink",
    "AttributeStatistics",
    "BlastHit",
    "BlastIndex",
    "LinkConfig",
    "LinkDiscoveryEngine",
    "LinkSet",
    "ObjectLink",
    "ObjectResolver",
    "SequenceField",
    "TfIdfIndex",
    "collect_statistics",
    "detect_sequence_fields",
    "discover_crossref_links",
    "discover_name_links",
    "discover_ontology_links",
    "discover_sequence_links",
    "discover_text_links",
    "extract_entity_names",
    "is_link_source_candidate",
    "is_link_target_candidate",
    "needleman_wunsch",
    "smith_waterman",
]
