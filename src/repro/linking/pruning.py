"""Candidate pruning for cross-reference discovery.

Section 4.4's rules, verbatim:

* "the attribute representing the target of a cross-reference is always a
  primary key in the respective table" — targets are only the accession
  attributes of primary relations of other sources;
* "attributes with few distinct values should be excluded from being a
  link source";
* "as are attributes with purely numeric values to avoid misinterpretation
  of surrogate keys".

Sequence fields are additionally excluded from cross-reference matching
(they are handled by the sequence-similarity channel instead).
"""

from __future__ import annotations

from typing import Optional

from repro.linking.model import LinkConfig
from repro.linking.stats import AttributeStatistics


def is_link_source_candidate(
    stats: AttributeStatistics, config: Optional[LinkConfig] = None
) -> bool:
    """May this attribute hold outgoing cross-references?"""
    config = config or LinkConfig()
    if stats.non_null_count < config.min_source_rows:
        return False
    if stats.distinct_count < config.min_distinct_values:
        return False
    if config.exclude_numeric_sources and stats.numeric_fraction >= 0.999:
        return False
    # Long sequence-like fields are not cross-reference material.
    if stats.avg_length >= config.seq_min_avg_length and (
        stats.protein_alphabet_fraction >= config.seq_alphabet_purity
        or stats.dna_alphabet_fraction >= config.seq_alphabet_purity
    ):
        return False
    return True


def is_link_target_candidate(
    stats: AttributeStatistics, config: Optional[LinkConfig] = None
) -> bool:
    """May this attribute be a link target? (unique accessions only)"""
    config = config or LinkConfig()
    if not stats.is_unique:
        return False
    if stats.distinct_count < config.min_distinct_values:
        return False
    return True
