"""Sequence-similarity links between two sources (implicit links, kind 1).

"First, the values of attributes containing DNA, RNA, or protein
sequences are compared to each other" (Section 4.4). For each pair of
compatible sequence fields the target side is indexed once
(:class:`~repro.linking.blast.BlastIndex`) and every source sequence is
searched against it; hits become object-level links between the owning
primary objects, with certainty scaled by identity.

``LinkConfig.max_sequence_rows`` caps the number of sequences considered
per side — the sampling guard Section 6.2 proposes ("sampling can be
used") for keeping incremental addition affordable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.discovery.model import AttributeRef, SourceStructure
from repro.linking.blast import BlastIndex
from repro.linking.matrices import dna_score, protein_score
from repro.linking.model import LinkConfig, LinkSet, ObjectLink
from repro.linking.resolve import ObjectResolver
from repro.linking.seqfields import SequenceField
from repro.relational.database import Database


def discover_sequence_links(
    source_db: Database,
    source_structure: SourceStructure,
    source_fields: List[SequenceField],
    target_db: Database,
    target_structure: SourceStructure,
    target_fields: List[SequenceField],
    config: Optional[LinkConfig] = None,
) -> LinkSet:
    """Homology links from every source field to every compatible target field."""
    config = config or LinkConfig()
    result = LinkSet()
    if not source_fields or not target_fields:
        return result
    try:
        source_resolver = ObjectResolver(source_db, source_structure)
        target_resolver = ObjectResolver(target_db, target_structure)
    except ValueError:
        return result
    for source_field in source_fields:
        for target_field in target_fields:
            if source_field.alphabet != target_field.alphabet:
                continue
            result.extend(
                _compare_fields(
                    source_db,
                    source_field,
                    source_resolver,
                    source_structure.source_name,
                    target_db,
                    target_field,
                    target_resolver,
                    target_structure.source_name,
                    config,
                )
            )
    return result


def _compare_fields(
    source_db: Database,
    source_field: SequenceField,
    source_resolver: ObjectResolver,
    source_name: str,
    target_db: Database,
    target_field: SequenceField,
    target_resolver: ObjectResolver,
    target_name: str,
    config: LinkConfig,
) -> LinkSet:
    score = dna_score if source_field.alphabet == "dna" else protein_score
    index = BlastIndex(k=config.blast_k, score=score)
    target_owners: List[Tuple[int, List[str]]] = []
    target_table = target_db.table(target_field.attribute.table)
    for row in _sample_rows(target_table, config.max_sequence_rows):
        sequence = row.get(target_field.attribute.column)
        if not sequence:
            continue
        owners = target_resolver.owners_of_row(target_field.attribute.table, row)
        if not owners:
            continue
        target_id = index.add(sequence)
        target_owners.append((target_id, owners))
    owner_lookup = dict(target_owners)
    result = LinkSet()
    seen = set()
    source_table = source_db.table(source_field.attribute.table)
    for row in _sample_rows(source_table, config.max_sequence_rows):
        sequence = row.get(source_field.attribute.column)
        if not sequence:
            continue
        source_owners = source_resolver.owners_of_row(source_field.attribute.table, row)
        if not source_owners:
            continue
        hits = index.search(
            sequence,
            min_seed_hits=config.blast_min_seed_hits,
            min_identity=config.blast_min_identity,
        )
        for hit in hits:
            for owner_a in source_owners:
                for owner_b in owner_lookup.get(hit.target_id, ()):
                    key = (owner_a, owner_b)
                    if key in seen:
                        continue
                    seen.add(key)
                    certainty = min(1.0, max(0.05, hit.identity)) * config.sequence_certainty
                    result.object_links.append(
                        ObjectLink(
                            source_a=source_name,
                            accession_a=owner_a,
                            source_b=target_name,
                            accession_b=owner_b,
                            kind="sequence",
                            certainty=round(certainty, 4),
                            evidence=(
                                f"{source_field.attribute.qualified}~"
                                f"{target_field.attribute.qualified}"
                                f" identity={hit.identity:.2f}"
                            ),
                        )
                    )
    return result


def _sample_rows(table, limit: int):
    """First ``limit`` rows — deterministic sampling guard."""
    for i, row in enumerate(table.rows()):
        if i >= limit:
            break
        yield row
