"""Biological named-entity recognition for name links.

Section 4.4: "methods for finding names of biological entities in natural
text can be used for extracting names that are matched with unique fields
of primary relations potentially holding the name of objects" (citing
GAPSCORE-style recognizers [CSA04] and feature-based recognizers
[HBP+05]).

Reproduction-scale recognizer: token-shape patterns (gene-symbol shapes
like ``KIN2``, ``p53``, ``BRCA1`` — short tokens mixing letters and
digits or all-caps) plus a dictionary matcher fed by the unique name
fields of the target source, which is exactly where the paper says the
dictionary comes from.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Set

from repro.discovery.model import AttributeRef, SourceStructure
from repro.linking.model import LinkConfig, LinkSet, ObjectLink
from repro.linking.resolve import ObjectResolver
from repro.linking.stats import AttributeStatistics
from repro.linking.textlinks import text_attributes
from repro.relational.database import Database

# Gene-symbol-like shapes: uppercase runs with optional digits (KIN2,
# BRCA1, TP53), or lowercase-letter + digits (p53).
_SHAPE_RE = re.compile(r"\b(?:[A-Z]{2,6}[0-9]{0,3}|[a-z][0-9]{2,3})\b")


def extract_entity_names(text: str, min_length: int = 3) -> List[str]:
    """Candidate entity names found in free text, in occurrence order."""
    seen: Set[str] = set()
    names: List[str] = []
    for match in _SHAPE_RE.finditer(text):
        name = match.group(0)
        if len(name) < min_length:
            continue
        if name not in seen:
            seen.add(name)
            names.append(name)
    return names


def _name_dictionary(
    target_db: Database, target_structure: SourceStructure
) -> Dict[str, str]:
    """name -> accession for unique text fields of the target's primary relation.

    Only unique fields qualify ("matched with unique fields of primary
    relations potentially holding the name of objects").
    """
    primary = target_structure.primary_relation
    if primary is None:
        return {}
    accession_attr = target_structure.primary_accession()
    if accession_attr is None:
        return {}
    dictionary: Dict[str, str] = {}
    table = target_db.table(primary)
    for attr in sorted(target_structure.unique_attributes, key=lambda a: a.qualified):
        if attr.table != primary or attr == accession_attr:
            continue
        if table.schema.column(attr.column).data_type.is_numeric:
            continue
        for row in table.rows():
            name = row.get(attr.column)
            accession = row.get(accession_attr.column)
            if isinstance(name, str) and accession is not None:
                dictionary.setdefault(name, accession)
                # Symbols are often embedded in composite names (KIN2_HUMAN):
                # index the leading token too.
                head = re.split(r"[_\s]", name)[0]
                if head and head != name:
                    dictionary.setdefault(head, accession)
    return dictionary


def discover_name_links(
    source_db: Database,
    source_structure: SourceStructure,
    source_stats: Dict[AttributeRef, AttributeStatistics],
    target_db: Database,
    target_structure: SourceStructure,
    config: Optional[LinkConfig] = None,
) -> LinkSet:
    """Links from names recognized in source text to target objects."""
    config = config or LinkConfig()
    result = LinkSet()
    dictionary = _name_dictionary(target_db, target_structure)
    if not dictionary:
        return result
    try:
        resolver = ObjectResolver(source_db, source_structure)
    except ValueError:
        return result
    seen: Set[tuple] = set()
    for attr in text_attributes(source_stats, config):
        table = source_db.table(attr.table)
        for row in table.rows():
            text = row.get(attr.column)
            if not text:
                continue
            names = extract_entity_names(str(text), config.name_min_length)
            if not names:
                continue
            owners = None  # resolved lazily: most rows have no dictionary hit
            for name in names:
                accession_b = dictionary.get(name)
                if accession_b is None:
                    continue
                if owners is None:
                    owners = resolver.owners_of_row(attr.table, row)
                for owner in owners:
                    key = (owner, accession_b)
                    if key in seen:
                        continue
                    seen.add(key)
                    result.object_links.append(
                        ObjectLink(
                            source_a=source_structure.source_name,
                            accession_a=owner,
                            source_b=target_structure.source_name,
                            accession_b=accession_b,
                            kind="name",
                            certainty=config.name_certainty,
                            evidence=f"{attr.qualified} mentions {name!r}",
                        )
                    )
    return result
