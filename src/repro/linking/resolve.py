"""Resolve arbitrary rows to their owning primary object.

Link evidence lives in annotation tables (``dbxref.accession``,
``participant.ref``) but links connect *primary objects* (Section 3's
web-of-objects view). The resolver walks the secondary path discovered in
step 3 from any table back to the primary relation and returns the
accession(s) of the owning primary object(s); the ColumnStore's shared
``value -> row_ids`` hash indexes keep resolution linear (and every
resolver over the same database reuses the same index).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.discovery.model import AttributeRef, SecondaryPath, SourceStructure
from repro.relational.database import Database
from repro.relational.table import Row


class ObjectResolver:
    """Maps rows of any reachable table to primary-object accessions."""

    def __init__(self, database: Database, structure: SourceStructure):
        self._db = database
        self._structure = structure
        primary = structure.primary_relation
        if primary is None:
            raise ValueError(
                f"source {structure.source_name!r} has no primary relation; "
                "links cannot be resolved"
            )
        self._primary = primary
        accession_attr = structure.primary_accession()
        if accession_attr is None:
            raise ValueError(
                f"primary relation {primary!r} has no accession candidate"
            )
        self._accession_column = accession_attr.column

    @property
    def primary_relation(self) -> str:
        return self._primary

    @property
    def accession_column(self) -> str:
        return self._accession_column

    # ------------------------------------------------------------------
    def primary_accessions(self) -> List[str]:
        return [
            v
            for v in self._db.table(self._primary).values(self._accession_column)
            if v is not None
        ]

    def owners_of_row(self, table: str, row: Row) -> List[str]:
        """Accessions of the primary objects owning ``row`` of ``table``.

        The primary relation owns itself; other tables are resolved along
        their shortest discovered path. Unreachable tables resolve to [].
        """
        if table == self._primary:
            accession = row.get(self._accession_column)
            return [accession] if accession is not None else []
        paths = self._structure.secondary_paths.get(table)
        if not paths:
            return []
        path = min(paths, key=lambda p: p.length)
        rows = [row]
        # Path runs primary -> ... -> table; walk it backwards.
        for step in reversed(path.steps):
            # The step connects step.from_table -> step.to_table; current
            # rows live in to_table and must be moved to from_table.
            next_rows: List[Row] = []
            index = self._column_index(step.from_table, self._join_column(step, "from"))
            join_col = self._join_column(step, "to")
            for current in rows:
                value = current.get(join_col)
                if value is None:
                    continue
                next_rows.extend(
                    self._db.table(step.from_table).row_at(i) for i in index.get(value, [])
                )
            rows = next_rows
            if not rows:
                return []
        accessions = []
        seen = set()
        for owner in rows:
            accession = owner.get(self._accession_column)
            if accession is not None and accession not in seen:
                seen.add(accession)
                accessions.append(accession)
        return accessions

    def owners_index(self, table: str) -> Dict[int, List[str]]:
        """``row_id -> owning accessions`` for *every* row of ``table``.

        The bulk counterpart of :meth:`owners_of_row`: instead of walking
        the secondary path backwards once per row, the whole table is
        resolved in one forward sweep per path step over the shared
        ColumnStore structures — the row-ordered value arrays on the
        "from" side and the ``value -> row_ids`` hash index on the "to"
        side. Per-row accession lists are first-seen ordered and
        de-duplicated, and the primary relation owns itself, mirroring the
        per-row method. Tables without a discovered path map to ``{}``.
        """
        if table == self._primary:
            return self._primary_owner_seed()
        paths = self._structure.secondary_paths.get(table)
        if not paths:
            return {}
        path = min(paths, key=lambda p: p.length)
        # Seed: every primary row owns itself. Each step then pushes the
        # ownership one table outward along the path.
        current = self._primary_owner_seed()
        for step in path.steps:
            from_values = self._db.table(step.from_table).columns.values(
                self._join_column(step, "from")
            )
            to_index = self._column_index(step.to_table, self._join_column(step, "to"))
            forwarded: Dict[int, List[str]] = {}
            for from_row_id, accessions in current.items():
                value = from_values[from_row_id]
                if value is None:
                    continue
                for to_row_id in to_index.get(value, ()):
                    bucket = forwarded.setdefault(to_row_id, [])
                    for accession in accessions:
                        if accession not in bucket:
                            bucket.append(accession)
            current = forwarded
            if not current:
                break
        return current

    def _primary_owner_seed(self) -> Dict[int, List[str]]:
        """Every primary row mapped to its own accession (the sweep seed)."""
        return {
            row_id: [value]
            for row_id, value in enumerate(
                self._db.table(self._primary).columns.values(self._accession_column)
            )
            if value is not None
        }

    # ------------------------------------------------------------------
    def _join_column(self, step, side: str) -> str:
        rel = step.relationship
        if step.forward:
            # from_table holds rel.source, to_table holds rel.target.
            return rel.source.column if side == "from" else rel.target.column
        return rel.target.column if side == "from" else rel.source.column

    def _column_index(self, table: str, column: str) -> Dict[object, List[int]]:
        return self._db.table(table).columns.row_ids(column)
