"""Per-attribute statistics for pruning and schema matching.

Section 4.4: "Other pruning strategies ... rely on attribute value
distributions and statistics ... These statistics need to be computed only
once for each data source and can then be reused for subsequently added
data sources." The raw column aggregates live in the storage layer's
:class:`~repro.relational.columns.ColumnProfile` (computed once per column
by the ColumnStore); this module wraps them with the attribute identity
and derived fractions the pruning and matching heuristics consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.discovery.model import AttributeRef
from repro.relational.columns import ColumnProfile
from repro.relational.database import Database
from repro.relational.types import DataType


@dataclass(frozen=True)
class AttributeStatistics:
    """Summary of one attribute's values."""

    attribute: AttributeRef
    data_type: DataType
    row_count: int
    non_null_count: int
    distinct_count: int
    is_unique: bool
    avg_length: float
    min_length: int
    max_length: int
    numeric_fraction: float  # fraction of values that are digit-only text or numbers
    alpha_fraction: float  # fraction of characters that are letters
    protein_alphabet_fraction: float  # chars within the amino-acid alphabet
    dna_alphabet_fraction: float  # chars within the nucleotide alphabet

    @property
    def null_fraction(self) -> float:
        if self.row_count == 0:
            return 0.0
        return 1.0 - self.non_null_count / self.row_count

    @property
    def distinct_fraction(self) -> float:
        if self.non_null_count == 0:
            return 0.0
        return self.distinct_count / self.non_null_count


def statistics_from_profile(
    attribute: AttributeRef, profile: ColumnProfile
) -> AttributeStatistics:
    """Wrap a storage-level ColumnProfile as attribute statistics."""
    return AttributeStatistics(
        attribute=attribute,
        data_type=profile.data_type,
        row_count=profile.row_count,
        non_null_count=profile.non_null_count,
        distinct_count=profile.distinct_count,
        is_unique=profile.is_unique,
        avg_length=profile.avg_length,
        min_length=profile.min_length,
        max_length=profile.max_length,
        numeric_fraction=profile.numeric_fraction,
        alpha_fraction=profile.alpha_fraction,
        protein_alphabet_fraction=profile.protein_alphabet_fraction,
        dna_alphabet_fraction=profile.dna_alphabet_fraction,
    )


def compute_attribute_statistics(
    database: Database, attribute: AttributeRef
) -> AttributeStatistics:
    """One column's statistics, served from the ColumnStore profile cache."""
    profile = database.table(attribute.table).column_profile(attribute.column)
    return statistics_from_profile(attribute, profile)


def collect_profiles(database: Database) -> Dict[AttributeRef, ColumnProfile]:
    """The one-time ColumnProfile of every attribute of every table."""
    profiles: Dict[AttributeRef, ColumnProfile] = {}
    for table_name in database.table_names():
        table = database.table(table_name)
        for column in table.column_names:
            profiles[AttributeRef(table_name, column)] = table.column_profile(column)
    return profiles


def collect_statistics(database: Database) -> Dict[AttributeRef, AttributeStatistics]:
    """Statistics for every attribute of every table — cached per source."""
    return {
        attr: statistics_from_profile(attr, profile)
        for attr, profile in collect_profiles(database).items()
    }
