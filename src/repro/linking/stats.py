"""Per-attribute statistics for pruning and schema matching.

Section 4.4: "Other pruning strategies ... rely on attribute value
distributions and statistics ... These statistics need to be computed only
once for each data source and can then be reused for subsequently added
data sources." They are therefore computed per source and cached in the
metadata repository, never recomputed per source pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.discovery.model import AttributeRef
from repro.relational.database import Database
from repro.relational.types import DataType

_PROTEIN_CHARS = set("ACDEFGHIKLMNPQRSTVWY")
_DNA_CHARS = set("ACGTUN")


@dataclass(frozen=True)
class AttributeStatistics:
    """Summary of one attribute's values."""

    attribute: AttributeRef
    data_type: DataType
    row_count: int
    non_null_count: int
    distinct_count: int
    is_unique: bool
    avg_length: float
    min_length: int
    max_length: int
    numeric_fraction: float  # fraction of values that are digit-only text or numbers
    alpha_fraction: float  # fraction of characters that are letters
    protein_alphabet_fraction: float  # chars within the amino-acid alphabet
    dna_alphabet_fraction: float  # chars within the nucleotide alphabet

    @property
    def null_fraction(self) -> float:
        if self.row_count == 0:
            return 0.0
        return 1.0 - self.non_null_count / self.row_count

    @property
    def distinct_fraction(self) -> float:
        if self.non_null_count == 0:
            return 0.0
        return self.distinct_count / self.non_null_count


def compute_attribute_statistics(
    database: Database, attribute: AttributeRef
) -> AttributeStatistics:
    """One pass over one column."""
    table = database.table(attribute.table)
    data_type = table.schema.column(attribute.column).data_type
    values = table.values(attribute.column)
    non_null = [v for v in values if v is not None]
    texts = [str(v) for v in non_null]
    total_chars = sum(len(t) for t in texts)
    alpha_chars = sum(sum(ch.isalpha() for ch in t) for t in texts)
    protein_chars = sum(sum(ch in _PROTEIN_CHARS for ch in t) for t in texts)
    dna_chars = sum(sum(ch in _DNA_CHARS for ch in t) for t in texts)
    numeric = sum(
        1
        for v in non_null
        if isinstance(v, (int, float)) or (isinstance(v, str) and v.isdigit())
    )
    lengths = [len(t) for t in texts]
    return AttributeStatistics(
        attribute=attribute,
        data_type=data_type,
        row_count=len(values),
        non_null_count=len(non_null),
        distinct_count=len(set(non_null)),
        is_unique=len(non_null) == len(set(non_null)) and bool(non_null),
        avg_length=total_chars / len(texts) if texts else 0.0,
        min_length=min(lengths) if lengths else 0,
        max_length=max(lengths) if lengths else 0,
        numeric_fraction=numeric / len(non_null) if non_null else 0.0,
        alpha_fraction=alpha_chars / total_chars if total_chars else 0.0,
        protein_alphabet_fraction=protein_chars / total_chars if total_chars else 0.0,
        dna_alphabet_fraction=dna_chars / total_chars if total_chars else 0.0,
    )


def collect_statistics(database: Database) -> Dict[AttributeRef, AttributeStatistics]:
    """Statistics for every attribute of every table — one source pass."""
    stats: Dict[AttributeRef, AttributeStatistics] = {}
    for table_name in database.table_names():
        table = database.table(table_name)
        for column in table.column_names:
            attr = AttributeRef(table_name, column)
            stats[attr] = compute_attribute_statistics(database, attr)
    return stats
