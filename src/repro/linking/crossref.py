"""Explicit cross-reference discovery (Section 4.4, first kind).

"Because cross-references use public, globally unique, and stable
identifiers ... target candidates are exactly the previously discovered
unique fields in primary relations of other databases."

For every pruned source attribute we match its values against the
accession values of every target source's primary relation. Two match
modes:

* **direct** — the value *is* a target accession;
* **encoded** — the value embeds the accession in a ``"DB:ACC"`` string
  (Section 4.4's ``"Uniprot:P11140"``); the substring after the last
  separator is matched. "Thus, already here string matching techniques
  are needed, for instance for finding common substrings."

An attribute-level link is declared when enough values match; each
matching value also produces an object-level link from the owning primary
object of the source row to the referenced target object.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.discovery.model import AttributeRef, SourceStructure
from repro.linking.model import AttributeLink, LinkConfig, LinkSet, ObjectLink
from repro.linking.pruning import is_link_source_candidate
from repro.linking.resolve import ObjectResolver
from repro.linking.stats import AttributeStatistics
from repro.relational.database import Database

_SEPARATORS = (":", "|", "/")


def decode_candidates(value: str) -> List[Tuple[str, bool]]:
    """Possible accession readings of one attribute value.

    Returns (candidate, was_encoded) pairs: the raw value first, then the
    suffix after the last separator when one is present.
    """
    candidates: List[Tuple[str, bool]] = [(value, False)]
    for separator in _SEPARATORS:
        if separator in value:
            suffix = value.rsplit(separator, 1)[1].strip()
            if suffix and suffix != value:
                candidates.append((suffix, True))
            break
    return candidates


def discover_crossref_links(
    source_db: Database,
    source_structure: SourceStructure,
    source_stats: Dict[AttributeRef, AttributeStatistics],
    targets: Iterable[Tuple[Database, SourceStructure]],
    config: Optional[LinkConfig] = None,
) -> LinkSet:
    """Match one source's attributes against all targets' accessions."""
    config = config or LinkConfig()
    result = LinkSet()
    try:
        resolver = ObjectResolver(source_db, source_structure)
    except ValueError:
        return result  # no primary relation: nothing to anchor links on
    target_indexes = _build_target_indexes(targets)
    for attr, stats in sorted(source_stats.items(), key=lambda kv: kv[0].qualified):
        if not is_link_source_candidate(stats, config):
            continue
        if (
            attr.table == source_structure.primary_relation
            and source_structure.primary_accession() == attr
        ):
            continue  # the primary accession itself is an identifier, not a reference
        for target_name, (accessions, target_attr, target_structure) in sorted(
            target_indexes.items()
        ):
            if target_name == source_structure.source_name:
                continue
            matches, encoded_any = _match_attribute(
                source_db, attr, accessions, config
            )
            if len(matches) < config.min_absolute_matches:
                continue
            fraction = len(matches) / max(stats.non_null_count, 1)
            if fraction < config.min_match_fraction:
                continue
            result.attribute_links.append(
                AttributeLink(
                    source=source_structure.source_name,
                    source_attribute=attr,
                    target=target_name,
                    target_attribute=target_attr,
                    score=fraction,
                    kind="crossref",
                    encoded=encoded_any,
                )
            )
            result.object_links.extend(
                _materialize_object_links(
                    source_db,
                    attr,
                    matches,
                    resolver,
                    source_structure.source_name,
                    target_name,
                    config,
                )
            )
    return result


# ----------------------------------------------------------------------
def _build_target_indexes(targets):
    indexes = {}
    for target_db, target_structure in targets:
        accession_attr = target_structure.primary_accession()
        if accession_attr is None:
            continue
        # The cached frozen value set of the accession column IS the target
        # index — no per-pair set construction.
        values = target_db.table(accession_attr.table).value_set(accession_attr.column)
        indexes[target_structure.source_name] = (values, accession_attr, target_structure)
    return indexes


def _match_attribute(
    source_db: Database,
    attr: AttributeRef,
    target_accessions: Set[str],
    config: LinkConfig,
) -> Tuple[Dict[str, Tuple[str, bool]], bool]:
    """Distinct source values that resolve to a target accession.

    Returns ({source_value: (matched_accession, encoded)}, any_encoded).
    """
    matches: Dict[str, Tuple[str, bool]] = {}
    encoded_any = False
    for value in source_db.table(attr.table).distinct_values(attr.column):
        if not isinstance(value, str):
            continue
        for candidate, encoded in decode_candidates(value):
            if candidate in target_accessions:
                matches[value] = (candidate, encoded)
                encoded_any = encoded_any or encoded
                break
    return matches, encoded_any


def _materialize_object_links(
    source_db: Database,
    attr: AttributeRef,
    matches: Dict[str, Tuple[str, bool]],
    resolver: ObjectResolver,
    source_name: str,
    target_name: str,
    config: LinkConfig,
) -> List[ObjectLink]:
    links: List[ObjectLink] = []
    seen: Set[Tuple[str, str]] = set()
    table = source_db.table(attr.table)
    # Index-driven: pull only the rows holding a matched value from the
    # ColumnStore's value->row_ids index, in row order (the order the old
    # full scan produced, so first-wins deduplication is unchanged).
    row_ids_index = table.columns.row_ids(attr.column)
    matched_rows: List[Tuple[int, str]] = []
    for value in matches:
        for row_id in row_ids_index.get(value, ()):
            matched_rows.append((row_id, value))
    matched_rows.sort()
    for row_id, value in matched_rows:
        row = table.row_at(row_id)
        accession_b, encoded = matches[value]
        for owner in resolver.owners_of_row(attr.table, row):
            key = (owner, accession_b)
            if key in seen:
                continue
            seen.add(key)
            links.append(
                ObjectLink(
                    source_a=source_name,
                    accession_a=owner,
                    source_b=target_name,
                    accession_b=accession_b,
                    kind="crossref",
                    certainty=config.encoded_certainty if encoded else config.crossref_certainty,
                    evidence=f"{attr.qualified}={value}",
                )
            )
    return links
