"""Exact pairwise alignment: Needleman-Wunsch and Smith-Waterman.

These are the ground-truth comparators for the BLAST-like heuristic
search — exactly the role exact dynamic programming plays relative to
BLAST [AMS+97] in the paper's link-discovery step. Linear gap penalty,
O(n·m) time, two-row memory for scores plus a full traceback matrix for
identity computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.linking.matrices import GAP_PENALTY, dna_score, protein_score


@dataclass(frozen=True)
class AlignmentResult:
    """Outcome of one pairwise alignment."""

    score: int
    identity: float  # identical positions / alignment length
    aligned_length: int
    start_a: int  # 0-based inclusive start in sequence a (local only)
    end_a: int  # 0-based exclusive end
    start_b: int
    end_b: int


ScoreFunction = Callable[[str, str], int]


def needleman_wunsch(
    a: str,
    b: str,
    score: ScoreFunction = protein_score,
    gap: int = GAP_PENALTY,
) -> AlignmentResult:
    """Global alignment with linear gaps."""
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return AlignmentResult(gap * (n + m), 0.0, n + m, 0, n, 0, m)
    # score matrix and traceback (0 diag, 1 up/gap-in-b, 2 left/gap-in-a)
    previous = [j * gap for j in range(m + 1)]
    trace: List[bytes] = []
    for i in range(1, n + 1):
        row = bytearray(m + 1)
        current = [i * gap] + [0] * m
        row[0] = 1
        ca = a[i - 1]
        for j in range(1, m + 1):
            diag = previous[j - 1] + score(ca, b[j - 1])
            up = previous[j] + gap
            left = current[j - 1] + gap
            best = diag
            direction = 0
            if up > best:
                best, direction = up, 1
            if left > best:
                best, direction = left, 2
            current[j] = best
            row[j] = direction
        trace.append(bytes(row))
        previous = current
    identical, length = _walk_global(a, b, trace)
    return AlignmentResult(
        score=previous[m],
        identity=identical / length if length else 0.0,
        aligned_length=length,
        start_a=0,
        end_a=n,
        start_b=0,
        end_b=m,
    )


def _walk_global(a: str, b: str, trace: List[bytes]) -> Tuple[int, int]:
    i, j = len(a), len(b)
    identical = 0
    length = 0
    while i > 0 or j > 0:
        length += 1
        if i > 0 and j > 0 and trace[i - 1][j] == 0:
            if a[i - 1] == b[j - 1]:
                identical += 1
            i -= 1
            j -= 1
        elif i > 0 and (j == 0 or trace[i - 1][j] == 1):
            i -= 1
        else:
            j -= 1
    return identical, length


def smith_waterman(
    a: str,
    b: str,
    score: ScoreFunction = protein_score,
    gap: int = GAP_PENALTY,
) -> AlignmentResult:
    """Local alignment with linear gaps (the exact homology baseline)."""
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return AlignmentResult(0, 0.0, 0, 0, 0, 0, 0)
    previous = [0] * (m + 1)
    trace: List[bytes] = []
    best_score = 0
    best_pos = (0, 0)
    for i in range(1, n + 1):
        row = bytearray(m + 1)  # 3 = stop (local restart)
        current = [0] * (m + 1)
        ca = a[i - 1]
        for j in range(1, m + 1):
            diag = previous[j - 1] + score(ca, b[j - 1])
            up = previous[j] + gap
            left = current[j - 1] + gap
            best = diag
            direction = 0
            if up > best:
                best, direction = up, 1
            if left > best:
                best, direction = left, 2
            if best <= 0:
                best, direction = 0, 3
            current[j] = best
            row[j] = direction
            if best > best_score:
                best_score = best
                best_pos = (i, j)
        trace.append(bytes(row))
        previous = current
    identical, length, start_a, start_b = _walk_local(a, b, trace, best_pos)
    end_a, end_b = best_pos
    return AlignmentResult(
        score=best_score,
        identity=identical / length if length else 0.0,
        aligned_length=length,
        start_a=start_a,
        end_a=end_a,
        start_b=start_b,
        end_b=end_b,
    )


def _walk_local(
    a: str, b: str, trace: List[bytes], best_pos: Tuple[int, int]
) -> Tuple[int, int, int, int]:
    i, j = best_pos
    identical = 0
    length = 0
    while i > 0 and j > 0:
        direction = trace[i - 1][j]
        if direction == 3:
            break
        length += 1
        if direction == 0:
            if a[i - 1] == b[j - 1]:
                identical += 1
            i -= 1
            j -= 1
        elif direction == 1:
            i -= 1
        else:
            j -= 1
    return identical, length, i, j
