"""Instance-based attribute feature classification.

Reproduces the idea of "Attribute Classification Using Feature Analysis"
[NHT+02], which the paper cites as prior work by one of the authors: an
attribute is summarized by a numeric feature vector over its *values*
(length statistics, character-class composition, distinctness), and two
attributes match when their vectors are close — no value overlap needed,
so it also works when sources use disjoint identifier spaces.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.linking.stats import AttributeStatistics

_EPSILON = 1e-9


def attribute_feature_vector(stats: AttributeStatistics) -> List[float]:
    """Numeric feature vector describing an attribute's value population."""
    length_spread = 0.0
    if stats.max_length > 0:
        length_spread = (stats.max_length - stats.min_length) / stats.max_length
    return [
        min(stats.avg_length / 100.0, 1.0),
        length_spread,
        stats.distinct_fraction,
        stats.null_fraction,
        stats.numeric_fraction,
        stats.alpha_fraction,
        1.0 if stats.is_unique else 0.0,
        1.0 if stats.data_type.is_numeric else 0.0,
    ]


def feature_similarity(a: AttributeStatistics, b: AttributeStatistics) -> float:
    """Cosine similarity of the two feature vectors, in [0, 1]."""
    va = attribute_feature_vector(a)
    vb = attribute_feature_vector(b)
    dot = sum(x * y for x, y in zip(va, vb))
    norm = math.sqrt(sum(x * x for x in va)) * math.sqrt(sum(y * y for y in vb))
    if norm < _EPSILON:
        return 1.0 if norm == 0.0 else 0.0
    return max(0.0, min(1.0, dot / norm))
