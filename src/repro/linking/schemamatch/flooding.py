"""Similarity Flooding [MGR02] for schema graphs.

The graph-based matcher the paper cites. Implementation follows the
original algorithm:

1. each schema becomes a directed labeled graph (``table --column-->
   attribute``, ``attribute --type--> datatype``);
2. the *pairwise connectivity graph* (PCG) contains a node (a, b) for
   every pair of nodes connected by same-labeled edges in both graphs;
3. initial similarities come from a string measure on node names;
4. similarities are propagated over the PCG until fixpoint
   (sigma^{i+1} = normalize(sigma^i + sum of weighted neighbors));
5. attribute-pair similarities are read off and filtered.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from repro.discovery.model import AttributeRef
from repro.linking.editdistance import levenshtein_similarity
from repro.linking.schemamatch.model import SchemaCorrespondence
from repro.relational.database import Database

Node = Tuple[str, str]  # (kind, name) — kind in {"table", "attr", "type"}
Edge = Tuple[Node, str, Node]  # (from, label, to)


def _schema_graph(database: Database) -> List[Edge]:
    edges: List[Edge] = []
    for table_name in database.table_names():
        table_node: Node = ("table", table_name)
        table = database.table(table_name)
        for column in table.schema.columns:
            attr_node: Node = ("attr", f"{table_name}.{column.name}")
            edges.append((table_node, "column", attr_node))
            type_node: Node = ("type", column.data_type.value)
            edges.append((attr_node, "type", type_node))
    return edges


def _initial_similarity(a: Node, b: Node) -> float:
    if a[0] != b[0]:
        return 0.0
    if a[0] == "type":
        return 1.0 if a[1] == b[1] else 0.0
    name_a = a[1].split(".")[-1]
    name_b = b[1].split(".")[-1]
    return levenshtein_similarity(name_a, name_b)


def similarity_flooding(
    source_db: Database,
    target_db: Database,
    iterations: int = 50,
    tolerance: float = 1e-4,
    threshold: float = 0.25,
) -> List[SchemaCorrespondence]:
    """Run similarity flooding; return attribute correspondences."""
    edges_a = _schema_graph(source_db)
    edges_b = _schema_graph(target_db)
    # Pairwise connectivity graph: ((a1,b1) --label--> (a2,b2)) iff
    # a1 --label--> a2 and b1 --label--> b2.
    by_label_a: Dict[str, List[Tuple[Node, Node]]] = defaultdict(list)
    by_label_b: Dict[str, List[Tuple[Node, Node]]] = defaultdict(list)
    for from_a, label, to_a in edges_a:
        by_label_a[label].append((from_a, to_a))
    for from_b, label, to_b in edges_b:
        by_label_b[label].append((from_b, to_b))
    pcg_edges: List[Tuple[Node, Node, Node, Node]] = []
    map_pairs: Set[Tuple[Node, Node]] = set()
    for label, pairs_a in by_label_a.items():
        for from_a, to_a in pairs_a:
            for from_b, to_b in by_label_b.get(label, ()):
                pcg_edges.append((from_a, from_b, to_a, to_b))
                map_pairs.add((from_a, from_b))
                map_pairs.add((to_a, to_b))
    if not map_pairs:
        return []
    # Propagation coefficients: each PCG edge distributes 1/out-degree
    # (the original's inverse-average fanout, simplified to inverse fanout).
    out_count: Dict[Tuple[Node, Node], int] = defaultdict(int)
    in_count: Dict[Tuple[Node, Node], int] = defaultdict(int)
    for from_a, from_b, to_a, to_b in pcg_edges:
        out_count[(from_a, from_b)] += 1
        in_count[(to_a, to_b)] += 1
    sigma: Dict[Tuple[Node, Node], float] = {
        pair: _initial_similarity(*pair) for pair in map_pairs
    }
    initial = dict(sigma)
    for _ in range(iterations):
        incoming: Dict[Tuple[Node, Node], float] = defaultdict(float)
        for from_a, from_b, to_a, to_b in pcg_edges:
            from_pair = (from_a, from_b)
            to_pair = (to_a, to_b)
            # propagate both directions (the PCG is treated as undirected
            # for propagation, as in the original's default fixpoint).
            incoming[to_pair] += sigma[from_pair] / out_count[from_pair]
            incoming[from_pair] += sigma[to_pair] / max(in_count[to_pair], 1)
        updated = {
            pair: initial[pair] + sigma[pair] + incoming.get(pair, 0.0)
            for pair in map_pairs
        }
        peak = max(updated.values())
        if peak <= 0:
            break
        updated = {pair: value / peak for pair, value in updated.items()}
        delta = max(abs(updated[p] - sigma[p]) for p in map_pairs)
        sigma = updated
        if delta < tolerance:
            break
    matches: List[SchemaCorrespondence] = []
    for (node_a, node_b), score in sigma.items():
        if node_a[0] != "attr" or node_b[0] != "attr":
            continue
        if score < threshold:
            continue
        matches.append(
            SchemaCorrespondence(
                source=AttributeRef.parse(node_a[1]),
                target=AttributeRef.parse(node_b[1]),
                score=round(min(score, 1.0), 4),
                matcher="flooding",
            )
        )
    matches.sort(key=lambda m: (-m.score, m.source.qualified, m.target.qualified))
    return matches
