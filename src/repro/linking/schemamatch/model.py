"""Shared result type for schema matchers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.discovery.model import AttributeRef


@dataclass(frozen=True)
class SchemaCorrespondence:
    """One attribute-level match between two schemas with a score in [0, 1]."""

    source: AttributeRef
    target: AttributeRef
    score: float
    matcher: str

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise ValueError(f"score must be in [0, 1], got {self.score}")
