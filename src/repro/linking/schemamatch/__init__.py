"""Schema matching (Section 4.4's related machinery).

"The link discovery task is closely related to schema matching,
especially to those projects using instance-based techniques." Three
matchers in the taxonomy of the survey the paper cites [RB01]:

* name-based — string similarity on attribute names (:mod:`namematch`);
* instance-based — attribute feature classification à la [NHT+02] plus
  value overlap (:mod:`features`, :mod:`instancematch`);
* graph-based — Similarity Flooding [MGR02] (:mod:`flooding`).
"""

from repro.linking.schemamatch.namematch import name_similarity, match_by_names
from repro.linking.schemamatch.features import attribute_feature_vector, feature_similarity
from repro.linking.schemamatch.instancematch import instance_match, value_overlap
from repro.linking.schemamatch.flooding import similarity_flooding
from repro.linking.schemamatch.model import SchemaCorrespondence

__all__ = [
    "SchemaCorrespondence",
    "attribute_feature_vector",
    "feature_similarity",
    "instance_match",
    "match_by_names",
    "name_similarity",
    "similarity_flooding",
    "value_overlap",
]
