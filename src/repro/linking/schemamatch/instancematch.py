"""Instance-based schema matching: value overlap blended with features.

The "instance-based techniques" branch of schema matching the paper
relates link discovery to (Section 4.4). Value overlap (Jaccard on
distinct values) is decisive when identifier spaces are shared; the
feature similarity of :mod:`features` carries the match when they are
not.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.discovery.model import AttributeRef
from repro.linking.schemamatch.features import feature_similarity
from repro.linking.schemamatch.model import SchemaCorrespondence
from repro.linking.stats import AttributeStatistics
from repro.relational.database import Database


def _string_value_set(database: Database, attr: AttributeRef) -> frozenset:
    """Distinct values as strings, from the cached column value set."""
    return frozenset(str(v) for v in database.table(attr.table).value_set(attr.column))


def _jaccard(values_a: frozenset, values_b: frozenset) -> float:
    if not values_a and not values_b:
        return 1.0
    if not values_a or not values_b:
        return 0.0
    return len(values_a & values_b) / len(values_a | values_b)


def value_overlap(source_db: Database, a: AttributeRef, target_db: Database, b: AttributeRef) -> float:
    """Jaccard overlap of distinct value sets."""
    return _jaccard(_string_value_set(source_db, a), _string_value_set(target_db, b))


def instance_match(
    source_db: Database,
    source_stats: Dict[AttributeRef, AttributeStatistics],
    target_db: Database,
    target_stats: Dict[AttributeRef, AttributeStatistics],
    threshold: float = 0.5,
    overlap_weight: float = 0.6,
) -> List[SchemaCorrespondence]:
    """Attribute correspondences scored by overlap and feature closeness."""
    matches: List[SchemaCorrespondence] = []
    # String value sets are built once per attribute, not once per pair.
    target_value_sets = {
        attr_b: _string_value_set(target_db, attr_b)
        for attr_b, stats_b in target_stats.items()
        if stats_b.non_null_count > 0
    }
    for attr_a, stats_a in sorted(source_stats.items(), key=lambda kv: kv[0].qualified):
        if stats_a.non_null_count == 0:
            continue
        values_a = _string_value_set(source_db, attr_a)
        for attr_b, stats_b in sorted(target_stats.items(), key=lambda kv: kv[0].qualified):
            if stats_b.non_null_count == 0:
                continue
            overlap = _jaccard(values_a, target_value_sets[attr_b])
            features = feature_similarity(stats_a, stats_b)
            score = overlap_weight * overlap + (1.0 - overlap_weight) * features
            if score >= threshold:
                matches.append(
                    SchemaCorrespondence(
                        source=attr_a,
                        target=attr_b,
                        score=round(score, 4),
                        matcher="instance",
                    )
                )
    matches.sort(key=lambda m: (-m.score, m.source.qualified, m.target.qualified))
    return matches
