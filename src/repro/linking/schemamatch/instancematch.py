"""Instance-based schema matching: value overlap blended with features.

The "instance-based techniques" branch of schema matching the paper
relates link discovery to (Section 4.4). Value overlap (Jaccard on
distinct values) is decisive when identifier spaces are shared; the
feature similarity of :mod:`features` carries the match when they are
not.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.discovery.model import AttributeRef
from repro.linking.schemamatch.features import feature_similarity
from repro.linking.schemamatch.model import SchemaCorrespondence
from repro.linking.stats import AttributeStatistics
from repro.relational.database import Database


def value_overlap(source_db: Database, a: AttributeRef, target_db: Database, b: AttributeRef) -> float:
    """Jaccard overlap of distinct value sets."""
    values_a = {str(v) for v in source_db.table(a.table).distinct_values(a.column)}
    values_b = {str(v) for v in target_db.table(b.table).distinct_values(b.column)}
    if not values_a and not values_b:
        return 1.0
    if not values_a or not values_b:
        return 0.0
    return len(values_a & values_b) / len(values_a | values_b)


def instance_match(
    source_db: Database,
    source_stats: Dict[AttributeRef, AttributeStatistics],
    target_db: Database,
    target_stats: Dict[AttributeRef, AttributeStatistics],
    threshold: float = 0.5,
    overlap_weight: float = 0.6,
) -> List[SchemaCorrespondence]:
    """Attribute correspondences scored by overlap and feature closeness."""
    matches: List[SchemaCorrespondence] = []
    for attr_a, stats_a in sorted(source_stats.items(), key=lambda kv: kv[0].qualified):
        if stats_a.non_null_count == 0:
            continue
        for attr_b, stats_b in sorted(target_stats.items(), key=lambda kv: kv[0].qualified):
            if stats_b.non_null_count == 0:
                continue
            overlap = value_overlap(source_db, attr_a, target_db, attr_b)
            features = feature_similarity(stats_a, stats_b)
            score = overlap_weight * overlap + (1.0 - overlap_weight) * features
            if score >= threshold:
                matches.append(
                    SchemaCorrespondence(
                        source=attr_a,
                        target=attr_b,
                        score=round(score, 4),
                        matcher="instance",
                    )
                )
    matches.sort(key=lambda m: (-m.score, m.source.qualified, m.target.qualified))
    return matches
