"""Name-based schema matching.

The simplest matcher family in [RB01]: compare attribute *names* with
string similarity. Names are tokenized on underscores and digits so that
``entry_id`` vs ``bioentry_id`` and ``seq`` vs ``biosequence_str`` get
partial credit; token-set Jaccard is blended with a normalized edit
similarity on the whole name.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.discovery.model import AttributeRef
from repro.linking.editdistance import levenshtein_similarity
from repro.linking.schemamatch.model import SchemaCorrespondence
from repro.relational.database import Database

_TOKEN_RE = re.compile(r"[a-z]+")


def _tokens(name: str) -> set:
    return set(_TOKEN_RE.findall(name.lower()))


def name_similarity(a: str, b: str) -> float:
    """Blend of token Jaccard and whole-string edit similarity, in [0, 1]."""
    tokens_a, tokens_b = _tokens(a), _tokens(b)
    if tokens_a and tokens_b:
        jaccard = len(tokens_a & tokens_b) / len(tokens_a | tokens_b)
    else:
        jaccard = 0.0
    edit = levenshtein_similarity(a.lower(), b.lower())
    return 0.5 * jaccard + 0.5 * edit


def match_by_names(
    source_db: Database,
    target_db: Database,
    threshold: float = 0.5,
) -> List[SchemaCorrespondence]:
    """All attribute pairs whose names are similar enough, best first."""
    matches: List[SchemaCorrespondence] = []
    for source_table in source_db.table_names():
        for source_col in source_db.table(source_table).column_names:
            for target_table in target_db.table_names():
                for target_col in target_db.table(target_table).column_names:
                    score = name_similarity(
                        f"{source_table} {source_col}", f"{target_table} {target_col}"
                    )
                    if score >= threshold:
                        matches.append(
                            SchemaCorrespondence(
                                source=AttributeRef(source_table, source_col),
                                target=AttributeRef(target_table, target_col),
                                score=round(score, 4),
                                matcher="name",
                            )
                        )
    matches.sort(key=lambda m: (-m.score, m.source.qualified, m.target.qualified))
    return matches
