"""Controlled-vocabulary (ontology) links.

Section 4.4, third comparison type: standardized vocabularies "make
excellent links, connecting proteins with similar function ... provided
that the ontologies are themselves integrated as data sources". We find
attribute pairs whose *value vocabularies* overlap strongly (keyword
fields vs. ontology term names) and link objects sharing a term.

Unlike cross-references the matched values are not unique accessions —
the same term annotates many objects — so the target attribute need not
be unique, but both attributes must look like vocabulary: modest distinct
counts relative to rows, textual, short.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from repro.discovery.model import AttributeRef, SourceStructure
from repro.linking.model import AttributeLink, LinkConfig, LinkSet, ObjectLink
from repro.linking.resolve import ObjectResolver
from repro.linking.stats import AttributeStatistics
from repro.relational.database import Database


def _vocabulary_attributes(
    stats: Dict[AttributeRef, AttributeStatistics], config: LinkConfig
) -> List[AttributeRef]:
    out = []
    for attr, stat in sorted(stats.items(), key=lambda kv: kv[0].qualified):
        if stat.non_null_count == 0 or stat.data_type.is_numeric:
            continue
        if stat.numeric_fraction >= 0.999:
            continue
        if stat.avg_length > 60:  # long prose is the text channel's job
            continue
        if stat.distinct_count < config.min_distinct_values:
            continue
        out.append(attr)
    return out


def _normalize(value: str) -> str:
    return " ".join(value.lower().split())


def discover_ontology_links(
    source_db: Database,
    source_structure: SourceStructure,
    source_stats: Dict[AttributeRef, AttributeStatistics],
    target_db: Database,
    target_structure: SourceStructure,
    target_stats: Dict[AttributeRef, AttributeStatistics],
    config: Optional[LinkConfig] = None,
) -> LinkSet:
    """Shared-vocabulary links between two sources."""
    config = config or LinkConfig()
    result = LinkSet()
    source_attrs = _vocabulary_attributes(source_stats, config)
    target_attrs = _vocabulary_attributes(target_stats, config)
    if not source_attrs or not target_attrs:
        return result
    try:
        source_resolver = ObjectResolver(source_db, source_structure)
        target_resolver = ObjectResolver(target_db, target_structure)
    except ValueError:
        return result
    for source_attr in source_attrs:
        source_values = {
            _normalize(v)
            for v in source_db.table(source_attr.table).distinct_values(source_attr.column)
            if isinstance(v, str)
        }
        if not source_values:
            continue
        for target_attr in target_attrs:
            target_values = {
                _normalize(v)
                for v in target_db.table(target_attr.table).distinct_values(
                    target_attr.column
                )
                if isinstance(v, str)
            }
            if not target_values:
                continue
            overlap = source_values & target_values
            denominator = min(len(source_values), len(target_values))
            score = len(overlap) / denominator if denominator else 0.0
            if score < config.ontology_overlap_threshold:
                continue
            result.attribute_links.append(
                AttributeLink(
                    source=source_structure.source_name,
                    source_attribute=source_attr,
                    target=target_structure.source_name,
                    target_attribute=target_attr,
                    score=round(score, 4),
                    kind="ontology",
                )
            )
            result.object_links.extend(
                _materialize(
                    source_db,
                    source_attr,
                    source_resolver,
                    source_structure.source_name,
                    target_db,
                    target_attr,
                    target_resolver,
                    target_structure.source_name,
                    overlap,
                    config,
                )
            )
    return result


def _materialize(
    source_db,
    source_attr,
    source_resolver,
    source_name,
    target_db,
    target_attr,
    target_resolver,
    target_name,
    shared_values: Set[str],
    config: LinkConfig,
) -> List[ObjectLink]:
    # Index-driven on both sides: only rows holding a shared term are
    # touched, located through the ColumnStore's value->row_ids index.
    by_value: Dict[str, List[str]] = defaultdict(list)
    target_table = target_db.table(target_attr.table)
    target_index = target_table.columns.row_ids(target_attr.column)
    target_hits: List[Tuple[int, str]] = []
    for raw in target_table.distinct_values(target_attr.column):
        if isinstance(raw, str) and _normalize(raw) in shared_values:
            for row_id in target_index.get(raw, ()):
                target_hits.append((row_id, raw))
    target_hits.sort()  # row order, as the old full scan produced
    for row_id, raw in target_hits:
        row = target_table.row_at(row_id)
        for owner in target_resolver.owners_of_row(target_attr.table, row):
            by_value[_normalize(raw)].append(owner)
    links: List[ObjectLink] = []
    seen: Set[Tuple[str, str]] = set()
    source_table = source_db.table(source_attr.table)
    source_index = source_table.columns.row_ids(source_attr.column)
    source_hits: List[Tuple[int, str]] = []
    for raw in source_table.distinct_values(source_attr.column):
        if isinstance(raw, str) and _normalize(raw) in by_value:
            for row_id in source_index.get(raw, ()):
                source_hits.append((row_id, raw))
    source_hits.sort()
    for row_id, value in source_hits:
        row = source_table.row_at(row_id)
        normalized = _normalize(value)
        owners = source_resolver.owners_of_row(source_attr.table, row)
        for owner_a in owners:
            for owner_b in by_value[normalized]:
                key = (owner_a, owner_b)
                if key in seen:
                    continue
                seen.add(key)
                links.append(
                    ObjectLink(
                        source_a=source_name,
                        accession_a=owner_a,
                        source_b=target_name,
                        accession_b=owner_b,
                        kind="ontology",
                        certainty=config.ontology_certainty,
                        evidence=f"shared term {normalized!r}",
                    )
                )
    return links
