"""Edit distance, at the bottom of the linking layer.

Levenshtein lives here — not in ``duplicates`` — because schema matching
(``linking.schemamatch``) needs it and linking sits *below* duplicate
detection in the layer map: attribute links feed object links feed
duplicate detection, never the other way around.
``repro.duplicates.similarity`` re-exports these for its callers, so the
duplicate-detection toolbox keeps its single public surface.
"""

from __future__ import annotations


def levenshtein(a: str, b: str) -> int:
    """Classic edit distance (insert/delete/substitute)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(min(previous[j] + 1, current[-1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """1 - normalized edit distance."""
    if not a and not b:
        return 1.0
    return 1.0 - levenshtein(a, b) / max(len(a), len(b))
