"""Sequence-field detection.

Section 4.4: "Finding sequence fields is simple, as those contain only
strings over a fixed alphabet (A, C, T, G for genes)." Detection uses the
per-attribute statistics: long average length plus near-pure nucleotide or
amino-acid alphabet. DNA is checked first because the DNA alphabet is a
subset of the protein alphabet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.discovery.model import AttributeRef
from repro.linking.model import LinkConfig
from repro.linking.stats import AttributeStatistics


@dataclass(frozen=True)
class SequenceField:
    """An attribute recognized as holding biological sequences."""

    attribute: AttributeRef
    alphabet: str  # "dna" | "protein"
    avg_length: float


def detect_sequence_fields(
    stats: Dict[AttributeRef, AttributeStatistics],
    config: Optional[LinkConfig] = None,
) -> List[SequenceField]:
    """All sequence-like attributes of one source, sorted by name."""
    config = config or LinkConfig()
    fields: List[SequenceField] = []
    for attr, stat in sorted(stats.items(), key=lambda kv: kv[0].qualified):
        if stat.non_null_count == 0:
            continue
        if stat.avg_length < config.seq_min_avg_length:
            continue
        if stat.dna_alphabet_fraction >= config.seq_alphabet_purity:
            alphabet = "dna"
        elif stat.protein_alphabet_fraction >= config.seq_alphabet_purity:
            alphabet = "protein"
        else:
            continue
        fields.append(
            SequenceField(attribute=attr, alphabet=alphabet, avg_length=stat.avg_length)
        )
    return fields
