"""Scoring matrices for sequence alignment.

A compact BLOSUM-style substitution model: identities score high,
substitutions within a physico-chemical group score mildly positive,
everything else negative. Exact BLOSUM62 values are not required for the
reproduction — the linking behaviour depends only on homologs scoring
well above random — but the group structure mirrors the real matrix.
"""

from __future__ import annotations

from typing import Dict, Tuple

# Physico-chemically similar amino-acid groups (as in common reduced
# alphabets of BLOSUM):
_GROUPS = [
    "AGST",  # small
    "ILMV",  # hydrophobic
    "FWY",  # aromatic
    "DENQ",  # acidic/amide
    "KRH",  # basic
    "C",
    "P",
]

MATCH_SCORE = 5
GROUP_SCORE = 1
MISMATCH_SCORE = -2
DNA_MATCH = 2
DNA_MISMATCH = -3
GAP_PENALTY = -4


def _group_of(residue: str) -> int:
    for i, group in enumerate(_GROUPS):
        if residue in group:
            return i
    return -1


def build_protein_matrix() -> Dict[Tuple[str, str], int]:
    """Full 20x20 substitution matrix as a dict."""
    residues = "ACDEFGHIKLMNPQRSTVWY"
    matrix: Dict[Tuple[str, str], int] = {}
    for a in residues:
        for b in residues:
            if a == b:
                score = MATCH_SCORE
            elif _group_of(a) >= 0 and _group_of(a) == _group_of(b):
                score = GROUP_SCORE
            else:
                score = MISMATCH_SCORE
            matrix[(a, b)] = score
    return matrix


_PROTEIN_MATRIX = build_protein_matrix()


def protein_score(a: str, b: str) -> int:
    """Substitution score for one residue pair (unknowns = mismatch)."""
    return _PROTEIN_MATRIX.get((a, b), MISMATCH_SCORE)


def dna_score(a: str, b: str) -> int:
    return DNA_MATCH if a == b else DNA_MISMATCH
