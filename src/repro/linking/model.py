"""Data model and configuration of the linking layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.discovery.model import AttributeRef

LINK_KINDS = ("crossref", "sequence", "text", "name", "ontology", "duplicate")


@dataclass(frozen=True)
class AttributeLink:
    """A discovered attribute-level correspondence.

    ``source_attribute`` of ``source`` stores values drawn from
    ``target_attribute`` of ``target``. ``score`` is the fraction of
    source values that matched; ``encoded`` marks ``DB:ACC`` style values
    that needed decoding.
    """

    source: str
    source_attribute: AttributeRef
    target: str
    target_attribute: AttributeRef
    score: float
    kind: str = "crossref"
    encoded: bool = False

    def key(self) -> Tuple[str, str, str, str]:
        return (
            self.source,
            self.source_attribute.qualified,
            self.target,
            self.target_attribute.qualified,
        )


@dataclass(frozen=True)
class ObjectLink:
    """A discovered object-level link, stored in the metadata repository.

    Objects are identified by (source name, primary-object accession).
    ``certainty`` in (0, 1] reflects the evidence strength of the
    discovery channel — Section 4.6 requires ranking results "according to
    certainty values derived from the different discovery steps".
    """

    source_a: str
    accession_a: str
    source_b: str
    accession_b: str
    kind: str
    certainty: float = 1.0
    evidence: str = ""

    def __post_init__(self) -> None:
        if self.kind not in LINK_KINDS:
            raise ValueError(f"unknown link kind {self.kind!r}")
        if not 0.0 < self.certainty <= 1.0:
            raise ValueError(f"certainty must be in (0, 1], got {self.certainty}")

    def endpoints(self) -> Tuple[Tuple[str, str], Tuple[str, str]]:
        return ((self.source_a, self.accession_a), (self.source_b, self.accession_b))

    def normalized(self) -> "ObjectLink":
        """Direction-normalized copy (for undirected comparisons)."""
        if (self.source_a, self.accession_a) <= (self.source_b, self.accession_b):
            return self
        return ObjectLink(
            self.source_b,
            self.accession_b,
            self.source_a,
            self.accession_a,
            self.kind,
            self.certainty,
            self.evidence,
        )


@dataclass
class LinkSet:
    """All links discovered for one source pair or one pipeline run."""

    attribute_links: List[AttributeLink] = field(default_factory=list)
    object_links: List[ObjectLink] = field(default_factory=list)

    def extend(self, other: "LinkSet") -> None:
        self.attribute_links.extend(other.attribute_links)
        self.object_links.extend(other.object_links)

    def object_pairs(self, kind: Optional[str] = None) -> Set[Tuple[str, str, str, str]]:
        out = set()
        for link in self.object_links:
            if kind is not None and link.kind != kind:
                continue
            normalized = link.normalized()
            out.add(
                (
                    normalized.source_a,
                    normalized.accession_a,
                    normalized.source_b,
                    normalized.accession_b,
                )
            )
        return out

    def by_kind(self, kind: str) -> List[ObjectLink]:
        return [l for l in self.object_links if l.kind == kind]


@dataclass
class LinkConfig:
    """Thresholds of the linking heuristics.

    The paper names the pruning rules but not the numbers; defaults were
    calibrated on the synthetic gold standard (DESIGN.md Section 6).
    """

    # Pruning (Section 4.4 "substantial pruning can be applied").
    min_distinct_values: int = 3  # "attributes with few distinct values"
    exclude_numeric_sources: bool = True  # "purely numeric values"
    min_source_rows: int = 1
    # Cross-reference attribute matching.
    min_match_fraction: float = 0.05
    min_absolute_matches: int = 2
    crossref_certainty: float = 0.95
    encoded_certainty: float = 0.85
    # Sequence links.
    seq_min_avg_length: float = 30.0
    seq_alphabet_purity: float = 0.95
    blast_k: int = 4
    blast_min_seed_hits: int = 2
    blast_min_identity: float = 0.5
    sequence_certainty: float = 0.7
    max_sequence_rows: int = 500  # sampling guard (Section 6.2)
    # Text links.
    text_min_avg_length: float = 20.0
    text_similarity_threshold: float = 0.35
    text_certainty: float = 0.5
    text_top_k: int = 3
    # Name (NER) links.
    name_min_length: int = 3
    name_certainty: float = 0.6
    # Ontology links.
    ontology_overlap_threshold: float = 0.3
    ontology_certainty: float = 0.8
