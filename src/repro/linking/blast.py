"""BLAST-like k-mer seeded homology search.

Section 4.4 names sequence similarity as the prime implicit-link channel
and cites Gapped BLAST [AMS+97]. This module reproduces BLAST's
engineering idea at reproduction scale:

1. index every target sequence by its overlapping k-mers,
2. for a query, collect seed hits and group them by alignment diagonal,
3. extend promising diagonals without gaps, dropping off after the score
   decays (X-drop),
4. optionally rescore survivors with exact Smith-Waterman.

The point preserved from the paper's setting: the heuristic must be much
faster than all-pairs exact alignment at a small recall cost — which is
exactly what experiment E5 measures.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.linking.alignment import smith_waterman
from repro.linking.matrices import protein_score

_X_DROP = 12


@dataclass(frozen=True)
class BlastHit:
    """One candidate homology hit."""

    target_id: int
    score: int
    identity: float
    seed_count: int


class BlastIndex:
    """k-mer index over a set of target sequences."""

    def __init__(self, k: int = 4, score: Callable[[str, str], int] = protein_score):
        self.k = k
        self._score = score
        self._sequences: List[str] = []
        self._kmers: Dict[str, List[Tuple[int, int]]] = defaultdict(list)

    def add(self, sequence: str) -> int:
        """Index one sequence; returns its integer target id."""
        target_id = len(self._sequences)
        self._sequences.append(sequence)
        for pos in range(len(sequence) - self.k + 1):
            self._kmers[sequence[pos : pos + self.k]].append((target_id, pos))
        return target_id

    def __len__(self) -> int:
        return len(self._sequences)

    def sequence(self, target_id: int) -> str:
        return self._sequences[target_id]

    # ------------------------------------------------------------------
    def search(
        self,
        query: str,
        min_seed_hits: int = 2,
        min_identity: float = 0.5,
        max_hits: int = 25,
        exact_rescore: bool = False,
    ) -> List[BlastHit]:
        """Find targets likely homologous to ``query``.

        Args:
            min_seed_hits: minimum shared k-mers on one diagonal band
                before extension is attempted.
            min_identity: identity threshold on the extended segment.
            max_hits: truncate the (score-sorted) hit list.
            exact_rescore: re-align survivors with Smith-Waterman for
                exact identities (slower, higher fidelity).
        """
        diagonals = self._collect_seeds(query)
        hits: List[BlastHit] = []
        for (target_id, _band), seeds in diagonals.items():
            if len(seeds) < min_seed_hits:
                continue
            target = self._sequences[target_id]
            # Extend along the exact diagonal of the median seed — band
            # grouping only tolerates indel drift between seeds.
            q_anchor, t_anchor = sorted(seeds)[len(seeds) // 2]
            score, identity = self._extend(query, target, q_anchor, t_anchor)
            if exact_rescore:
                result = smith_waterman(query, target, self._score)
                score, identity = result.score, result.identity
            if identity >= min_identity:
                hits.append(
                    BlastHit(
                        target_id=target_id,
                        score=score,
                        identity=round(identity, 4),
                        seed_count=len(seeds),
                    )
                )
        hits.sort(key=lambda h: (-h.score, h.target_id))
        return hits[:max_hits]

    # ------------------------------------------------------------------
    def _collect_seeds(
        self, query: str
    ) -> Dict[Tuple[int, int], List[Tuple[int, int]]]:
        """Seed (q_pos, t_pos) hits grouped by (target, diagonal band)."""
        diagonals: Dict[Tuple[int, int], List[Tuple[int, int]]] = defaultdict(list)
        for q_pos in range(len(query) - self.k + 1):
            kmer = query[q_pos : q_pos + self.k]
            for target_id, t_pos in self._kmers.get(kmer, ()):
                # Band diagonals to tolerate small indels between seeds.
                band = (t_pos - q_pos) // 3
                diagonals[(target_id, band)].append((q_pos, t_pos))
        return diagonals

    def _extend(
        self, query: str, target: str, q_anchor: int, t_anchor: int
    ) -> Tuple[int, float]:
        """Ungapped X-drop extension around the exact seed anchor."""
        # Walk left.
        score = 0
        best = 0
        identical = 0
        length = 0
        qi, ti = q_anchor, t_anchor
        state = []
        while qi >= 0 and ti >= 0:
            score += self._score(query[qi], target[ti])
            length += 1
            if query[qi] == target[ti]:
                identical += 1
            if score > best:
                best = score
            if best - score > _X_DROP:
                break
            qi -= 1
            ti -= 1
        left_best = best
        left_identical = identical
        left_length = length
        # Walk right from anchor+1.
        score = 0
        best = 0
        identical = 0
        length = 0
        qi, ti = q_anchor + 1, t_anchor + 1
        while qi < len(query) and ti < len(target):
            score += self._score(query[qi], target[ti])
            length += 1
            if query[qi] == target[ti]:
                identical += 1
            if score > best:
                best = score
            if best - score > _X_DROP:
                break
            qi += 1
            ti += 1
        total_length = left_length + length
        total_identical = left_identical + identical
        return (
            left_best + best,
            total_identical / total_length if total_length else 0.0,
        )
