"""Text-similarity links (implicit links, kind 2).

"Second, attributes containing longer text strings, such as textual
descriptions, can be analyzed by using techniques from information
retrieval and text mining" (Section 4.4). Classic vector-space model:
TF-IDF weighting, cosine similarity, per-source-row top-k matching above a
threshold.
"""

from __future__ import annotations

import math
import re
from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.discovery.model import AttributeRef, SourceStructure
from repro.linking.model import LinkConfig, LinkSet, ObjectLink
from repro.linking.resolve import ObjectResolver
from repro.linking.stats import AttributeStatistics
from repro.relational.database import Database

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")

_STOPWORDS = {
    "a", "an", "and", "are", "as", "at", "by", "for", "from", "in", "into",
    "is", "it", "of", "on", "or", "that", "the", "to", "with", "which",
}


def tokenize(text: str) -> List[str]:
    """Lower-cased alphanumeric tokens minus stopwords."""
    return [
        token.lower()
        for token in _TOKEN_RE.findall(text)
        if token.lower() not in _STOPWORDS
    ]


class TfIdfIndex:
    """A small TF-IDF vector index with cosine search."""

    def __init__(self) -> None:
        self._documents: List[Counter] = []
        self._doc_freq: Counter = Counter()
        self._norms: List[float] = []
        self._finalized = False
        self._postings: Dict[str, List[int]] = defaultdict(list)

    def add(self, text: str) -> int:
        if self._finalized:
            raise RuntimeError("index already finalized")
        doc_id = len(self._documents)
        counts = Counter(tokenize(text))
        self._documents.append(counts)
        for token in counts:
            self._doc_freq[token] += 1
            self._postings[token].append(doc_id)
        return doc_id

    def __len__(self) -> int:
        return len(self._documents)

    def _idf(self, token: str) -> float:
        df = self._doc_freq.get(token, 0)
        if df == 0:
            return 0.0
        return math.log((1 + len(self._documents)) / (1 + df)) + 1.0

    def finalize(self) -> None:
        self._norms = []
        for counts in self._documents:
            norm_sq = sum((count * self._idf(token)) ** 2 for token, count in counts.items())
            self._norms.append(math.sqrt(norm_sq) or 1.0)
        self._finalized = True

    def search(self, text: str, top_k: int = 3, threshold: float = 0.0) -> List[Tuple[int, float]]:
        """(doc_id, cosine) pairs, best first."""
        if not self._finalized:
            self.finalize()
        counts = Counter(tokenize(text))
        if not counts:
            return []
        query_weights = {t: c * self._idf(t) for t, c in counts.items()}
        query_norm = math.sqrt(sum(w * w for w in query_weights.values())) or 1.0
        scores: Dict[int, float] = defaultdict(float)
        for token, weight in query_weights.items():
            if weight == 0.0:
                continue
            idf = self._idf(token)
            for doc_id in self._postings.get(token, ()):
                scores[doc_id] += weight * self._documents[doc_id][token] * idf
        results = [
            (doc_id, dot / (query_norm * self._norms[doc_id]))
            for doc_id, dot in scores.items()
        ]
        results = [(d, s) for d, s in results if s >= threshold]
        results.sort(key=lambda pair: (-pair[1], pair[0]))
        return results[:top_k]


def text_attributes(
    stats: Dict[AttributeRef, AttributeStatistics], config: Optional[LinkConfig] = None
) -> List[AttributeRef]:
    """Attributes worth text comparison: long, mostly alphabetic, not sequences."""
    config = config or LinkConfig()
    out = []
    for attr, stat in sorted(stats.items(), key=lambda kv: kv[0].qualified):
        if stat.non_null_count == 0:
            continue
        if stat.avg_length < config.text_min_avg_length:
            continue
        if (
            stat.protein_alphabet_fraction >= config.seq_alphabet_purity
            or stat.dna_alphabet_fraction >= config.seq_alphabet_purity
        ):
            continue  # sequences handled elsewhere
        if stat.alpha_fraction < 0.5:
            continue
        out.append(attr)
    return out


def discover_text_links(
    source_db: Database,
    source_structure: SourceStructure,
    source_stats: Dict[AttributeRef, AttributeStatistics],
    target_db: Database,
    target_structure: SourceStructure,
    target_stats: Dict[AttributeRef, AttributeStatistics],
    config: Optional[LinkConfig] = None,
) -> LinkSet:
    """TF-IDF cosine links between long-text attributes of two sources."""
    config = config or LinkConfig()
    result = LinkSet()
    source_attrs = text_attributes(source_stats, config)
    target_attrs = text_attributes(target_stats, config)
    if not source_attrs or not target_attrs:
        return result
    try:
        source_resolver = ObjectResolver(source_db, source_structure)
        target_resolver = ObjectResolver(target_db, target_structure)
    except ValueError:
        return result
    for target_attr in target_attrs:
        index = TfIdfIndex()
        doc_owners: List[List[str]] = []
        target_table = target_db.table(target_attr.table)
        for row in target_table.rows():
            text = row.get(target_attr.column)
            if not text:
                continue
            owners = target_resolver.owners_of_row(target_attr.table, row)
            if not owners:
                continue
            index.add(str(text))
            doc_owners.append(owners)
        if len(index) == 0:
            continue
        index.finalize()
        for source_attr in source_attrs:
            seen = set()
            source_table = source_db.table(source_attr.table)
            for row in source_table.rows():
                text = row.get(source_attr.column)
                if not text:
                    continue
                source_owners = source_resolver.owners_of_row(source_attr.table, row)
                if not source_owners:
                    continue
                for doc_id, cosine in index.search(
                    str(text),
                    top_k=config.text_top_k,
                    threshold=config.text_similarity_threshold,
                ):
                    for owner_a in source_owners:
                        for owner_b in doc_owners[doc_id]:
                            key = (owner_a, owner_b)
                            if key in seen:
                                continue
                            seen.add(key)
                            result.object_links.append(
                                ObjectLink(
                                    source_a=source_structure.source_name,
                                    accession_a=owner_a,
                                    source_b=target_structure.source_name,
                                    accession_b=owner_b,
                                    kind="text",
                                    certainty=round(
                                        min(1.0, cosine) * config.text_certainty, 4
                                    ),
                                    evidence=(
                                        f"{source_attr.qualified}~{target_attr.qualified}"
                                        f" cosine={cosine:.2f}"
                                    ),
                                )
                            )
    return result
