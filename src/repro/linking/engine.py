"""Link-discovery orchestration for one new source against all targets.

Runs the channels of Section 4.4 in order — explicit cross-references,
sequence similarity, text similarity, name recognition, shared vocabulary
— against every previously integrated source, reusing cached per-source
statistics. Channels can be toggled for the pruning/ablation experiments
(E6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.discovery.model import AttributeRef, SourceStructure
from repro.linking.crossref import discover_crossref_links
from repro.linking.model import LinkConfig, LinkSet
from repro.linking.ner import discover_name_links
from repro.linking.ontologylinks import discover_ontology_links
from repro.linking.seqfields import detect_sequence_fields
from repro.linking.seqlinks import discover_sequence_links
from repro.linking.stats import AttributeStatistics, collect_statistics
from repro.linking.textlinks import discover_text_links
from repro.relational.database import Database


@dataclass
class LinkChannels:
    """Toggle switches for the discovery channels."""

    crossref: bool = True
    sequence: bool = True
    text: bool = True
    name: bool = True
    ontology: bool = True


@dataclass
class _SourceEntry:
    database: Database
    structure: SourceStructure
    statistics: Dict[AttributeRef, AttributeStatistics]


class LinkDiscoveryEngine:
    """Incremental link discovery across an growing set of sources."""

    def __init__(
        self,
        config: Optional[LinkConfig] = None,
        channels: Optional[LinkChannels] = None,
    ):
        self.config = config or LinkConfig()
        self.channels = channels or LinkChannels()
        self._sources: Dict[str, _SourceEntry] = {}
        self.comparisons_made = 0  # attribute-pair scans, for E6
        self.registrations = 0  # register_source calls, for maintenance tests

    # ------------------------------------------------------------------
    def register_source(
        self, database: Database, structure: SourceStructure
    ) -> Dict[AttributeRef, AttributeStatistics]:
        """Cache a source and its one-time statistics; returns the stats."""
        self.registrations += 1
        statistics = collect_statistics(database)
        self._sources[structure.source_name] = _SourceEntry(
            database=database, structure=structure, statistics=statistics
        )
        return statistics

    def restore_source(
        self,
        database: Database,
        structure: SourceStructure,
        statistics: Dict[AttributeRef, AttributeStatistics],
    ) -> None:
        """Rehydrate one source from persisted state — zero recomputation.

        Warm starts hand the engine statistics rebuilt from persisted
        ColumnProfiles; nothing is profiled, compared, or counted, so a
        reopened system shows ``registrations == 0`` and
        ``comparisons_made == 0`` until real integration work happens.
        """
        self._sources[structure.source_name] = _SourceEntry(
            database=database, structure=structure, statistics=dict(statistics)
        )

    def deregister_source(self, name: str) -> None:
        """Forget one source; every other registration stays untouched.

        This is what lets ``Aladin.remove_source`` keep the engine (and the
        surviving sources' cached statistics) instead of rebuilding it and
        re-profiling every remaining source.
        """
        if name not in self._sources:
            raise KeyError(f"source {name!r} is not registered")
        del self._sources[name]

    def refresh_source(
        self, database: Database
    ) -> Dict[AttributeRef, AttributeStatistics]:
        """Swap a registered source's database and recompute its statistics.

        Below-threshold updates swap the data but keep the discovered
        structure; the cached statistics must describe the *new* data or
        every later ``discover_for`` would link against stale profiles.
        """
        entry = self._sources.get(database.name)
        if entry is None:
            raise KeyError(f"source {database.name!r} is not registered")
        statistics = collect_statistics(database)
        self._sources[database.name] = _SourceEntry(
            database=database, structure=entry.structure, statistics=statistics
        )
        return statistics

    def source_names(self) -> List[str]:
        return sorted(self._sources)

    def statistics_for(self, name: str) -> Dict[AttributeRef, AttributeStatistics]:
        return self._sources[name].statistics

    # ------------------------------------------------------------------
    def discover_for(self, source_name: str) -> LinkSet:
        """All links between ``source_name`` and every *other* source.

        Both directions are explored (the new source may reference old
        sources and vice versa — Section 5's PDB→Swiss-Prot and
        Swiss-Prot→PDB cases both exist).
        """
        if source_name not in self._sources:
            raise KeyError(f"source {source_name!r} is not registered")
        new = self._sources[source_name]
        result = LinkSet()
        for other_name in self.source_names():
            if other_name == source_name:
                continue
            other = self._sources[other_name]
            result.extend(self._pair_links(new, other))
            result.extend(self._directional_links(other, new))
        return result

    def _pair_links(self, source: _SourceEntry, target: _SourceEntry) -> LinkSet:
        """Symmetric channels + source->target directional channels."""
        result = self._directional_links(source, target)
        if self.channels.sequence:
            source_fields = detect_sequence_fields(source.statistics, self.config)
            target_fields = detect_sequence_fields(target.statistics, self.config)
            self.comparisons_made += len(source_fields) * len(target_fields)
            result.extend(
                discover_sequence_links(
                    source.database,
                    source.structure,
                    source_fields,
                    target.database,
                    target.structure,
                    target_fields,
                    self.config,
                )
            )
        if self.channels.text:
            result.extend(
                discover_text_links(
                    source.database,
                    source.structure,
                    source.statistics,
                    target.database,
                    target.structure,
                    target.statistics,
                    self.config,
                )
            )
        if self.channels.ontology:
            result.extend(
                discover_ontology_links(
                    source.database,
                    source.structure,
                    source.statistics,
                    target.database,
                    target.structure,
                    target.statistics,
                    self.config,
                )
            )
        return result

    def _directional_links(self, source: _SourceEntry, target: _SourceEntry) -> LinkSet:
        """Channels where the evidence lives on the source side only."""
        result = LinkSet()
        if self.channels.crossref:
            self.comparisons_made += len(source.statistics)
            result.extend(
                discover_crossref_links(
                    source.database,
                    source.structure,
                    source.statistics,
                    [(target.database, target.structure)],
                    self.config,
                )
            )
        if self.channels.name:
            result.extend(
                discover_name_links(
                    source.database,
                    source.structure,
                    source.statistics,
                    target.database,
                    target.structure,
                    self.config,
                )
            )
        return result
