"""Link-discovery orchestration for one new source against all targets.

Runs the channels of Section 4.4 in order — explicit cross-references,
sequence similarity, text similarity, name recognition, shared vocabulary
— against every previously integrated source, reusing cached per-source
statistics. Channels can be toggled for the pruning/ablation experiments
(E6).

Pair scans are *pure*: a ``(mode, source, target)`` spec reads only the
two sources' cached entries and returns a fresh ``LinkSet`` plus its
comparison count. ``discover_for`` therefore fans specs across an
:class:`~repro.exec.pool.Executor` (thread or fork-process workers) and
merges the results in a fixed source/channel order, so parallel link webs
are byte-identical to serial ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.discovery.model import AttributeRef, SourceStructure
from repro.exec.pool import Executor
from repro.linking.crossref import discover_crossref_links
from repro.linking.model import LinkConfig, LinkSet
from repro.linking.ner import discover_name_links
from repro.linking.ontologylinks import discover_ontology_links
from repro.linking.seqfields import detect_sequence_fields
from repro.linking.seqlinks import discover_sequence_links
from repro.linking.stats import AttributeStatistics, collect_statistics
from repro.linking.textlinks import discover_text_links
from repro.relational.database import Database

# One unit of fan-out work: ("pair" | "directional", source, target).
PairSpec = Tuple[str, str, str]


def _pair_task(engine: "LinkDiscoveryEngine", spec: PairSpec):
    """Worker entry point for one pair scan.

    Module-level so the process backend can ship it by reference; the
    engine itself reaches workers through fork inheritance, never pickled.
    Returns ``(links, comparisons, seconds)`` — counters travel back as
    data because a forked worker's increments would otherwise be lost.
    """
    mode, source_name, target_name = spec
    source = engine._sources[source_name]
    target = engine._sources[target_name]
    started = time.perf_counter()
    if mode == "pair":
        links, comparisons = engine._pair_links(source, target)
    elif mode == "directional":
        links, comparisons = engine._directional_links(source, target)
    else:
        raise ValueError(f"unknown pair-scan mode {mode!r}")
    return links, comparisons, time.perf_counter() - started


@dataclass
class LinkChannels:
    """Toggle switches for the discovery channels."""

    crossref: bool = True
    sequence: bool = True
    text: bool = True
    name: bool = True
    ontology: bool = True


@dataclass
class _SourceEntry:
    database: Database
    structure: SourceStructure
    statistics: Dict[AttributeRef, AttributeStatistics]


class LinkDiscoveryEngine:
    """Incremental link discovery across an growing set of sources."""

    def __init__(
        self,
        config: Optional[LinkConfig] = None,
        channels: Optional[LinkChannels] = None,
        executor: Optional[Executor] = None,
    ):
        self.config = config or LinkConfig()
        self.channels = channels or LinkChannels()
        self.executor = executor  # None = inline (serial) pair scans
        #: Optional :class:`~repro.obs.trace.Tracer` (``None`` when
        #: observability is off).  Inline pair scans open one span per
        #: spec; executor fan-outs get per-task spans from the pool.
        self.tracer = None
        self._sources: Dict[str, _SourceEntry] = {}
        self.comparisons_made = 0  # attribute-pair scans, for E6
        self.registrations = 0  # register_source calls, for maintenance tests

    # ------------------------------------------------------------------
    def _workers_stale(self) -> None:
        """Tell a resident executor the engine's shared state changed.

        Process workers hold the engine as a fork-time snapshot; any
        mutation of the registry must invalidate it or later fan-outs
        would scan stale sources. Per-call and thread executors treat
        this as a no-op.
        """
        if self.executor is not None:
            self.executor.refresh_state()

    def register_source(
        self, database: Database, structure: SourceStructure
    ) -> Dict[AttributeRef, AttributeStatistics]:
        """Cache a source and its one-time statistics; returns the stats."""
        self.registrations += 1
        statistics = collect_statistics(database)
        self._sources[structure.source_name] = _SourceEntry(
            database=database, structure=structure, statistics=statistics
        )
        self._workers_stale()
        return statistics

    def restore_source(
        self,
        database: Database,
        structure: SourceStructure,
        statistics: Dict[AttributeRef, AttributeStatistics],
    ) -> None:
        """Rehydrate one source from persisted state — zero recomputation.

        Warm starts hand the engine statistics rebuilt from persisted
        ColumnProfiles; nothing is profiled, compared, or counted, so a
        reopened system shows ``registrations == 0`` and
        ``comparisons_made == 0`` until real integration work happens.
        """
        self._sources[structure.source_name] = _SourceEntry(
            database=database, structure=structure, statistics=dict(statistics)
        )
        self._workers_stale()

    def deregister_source(self, name: str) -> None:
        """Forget one source; every other registration stays untouched.

        This is what lets ``Aladin.remove_source`` keep the engine (and the
        surviving sources' cached statistics) instead of rebuilding it and
        re-profiling every remaining source.
        """
        if name not in self._sources:
            raise KeyError(f"source {name!r} is not registered")
        del self._sources[name]
        self._workers_stale()

    def refresh_source(
        self, database: Database
    ) -> Dict[AttributeRef, AttributeStatistics]:
        """Swap a registered source's database and recompute its statistics.

        Below-threshold updates swap the data but keep the discovered
        structure; the cached statistics must describe the *new* data or
        every later ``discover_for`` would link against stale profiles.
        """
        entry = self._sources.get(database.name)
        if entry is None:
            raise KeyError(f"source {database.name!r} is not registered")
        statistics = collect_statistics(database)
        self._sources[database.name] = _SourceEntry(
            database=database, structure=entry.structure, statistics=statistics
        )
        self._workers_stale()
        return statistics

    def source_names(self) -> List[str]:
        return sorted(self._sources)

    def statistics_for(self, name: str) -> Dict[AttributeRef, AttributeStatistics]:
        return self._sources[name].statistics

    def database_for(self, name: str) -> Database:
        return self._sources[name].database

    def structure_for(self, name: str) -> SourceStructure:
        return self._sources[name].structure

    # ------------------------------------------------------------------
    def pair_specs(
        self, source_name: str, against: Optional[Sequence[str]] = None
    ) -> List[PairSpec]:
        """The fixed-order fan-out plan for one source's link discovery.

        Two specs per counterpart — the symmetric+outgoing scan and the
        incoming directional scan — in sorted counterpart order. Merging
        results in exactly this order reproduces the serial link web.
        """
        others = (
            list(against)
            if against is not None
            else [name for name in self.source_names() if name != source_name]
        )
        specs: List[PairSpec] = []
        for other_name in others:
            specs.append(("pair", source_name, other_name))
            specs.append(("directional", other_name, source_name))
        return specs

    def run_pair_specs(self, specs: Sequence[PairSpec]) -> List[Tuple[LinkSet, int, float]]:
        """Execute pair scans — fanned across workers when an executor is set.

        Results come back in spec order regardless of backend; nothing is
        merged or counted here, so callers control ordering end to end.
        """
        specs = list(specs)
        if self.executor is None:
            if self.tracer is None:
                return [_pair_task(self, spec) for spec in specs]
            results = []
            for mode, a, b in specs:
                with self.tracer.span(
                    "link.scan", mode=mode, source=a, target=b
                ):
                    results.append(_pair_task(self, (mode, a, b)))
            return results
        labels = [f"link:{mode}:{a}->{b}" for mode, a, b in specs]
        return self.executor.map_ordered(_pair_task, specs, state=self, labels=labels)

    def merge_pair_results(
        self, results: Iterable[Tuple[LinkSet, int, float]]
    ) -> LinkSet:
        """Fold ordered scan results into one LinkSet; book the comparisons."""
        merged = LinkSet()
        for links, comparisons, _seconds in results:
            merged.extend(links)
            self.comparisons_made += comparisons
        return merged

    def discover_for(self, source_name: str) -> LinkSet:
        """All links between ``source_name`` and every *other* source.

        Both directions are explored (the new source may reference old
        sources and vice versa — Section 5's PDB→Swiss-Prot and
        Swiss-Prot→PDB cases both exist). The pair scans run on the
        configured executor; the merge order is fixed, so the result is
        identical whichever backend ran them.
        """
        if source_name not in self._sources:
            raise KeyError(f"source {source_name!r} is not registered")
        return self.merge_pair_results(self.run_pair_specs(self.pair_specs(source_name)))

    def _pair_links(
        self, source: _SourceEntry, target: _SourceEntry
    ) -> Tuple[LinkSet, int]:
        """Symmetric channels + source->target directional channels.

        Pure with respect to the engine: returns the links and the number
        of attribute-pair comparisons instead of bumping shared counters,
        so the scan can run in any worker and merge deterministically.
        """
        result, comparisons = self._directional_links(source, target)
        if self.channels.sequence:
            source_fields = detect_sequence_fields(source.statistics, self.config)
            target_fields = detect_sequence_fields(target.statistics, self.config)
            comparisons += len(source_fields) * len(target_fields)
            result.extend(
                discover_sequence_links(
                    source.database,
                    source.structure,
                    source_fields,
                    target.database,
                    target.structure,
                    target_fields,
                    self.config,
                )
            )
        if self.channels.text:
            result.extend(
                discover_text_links(
                    source.database,
                    source.structure,
                    source.statistics,
                    target.database,
                    target.structure,
                    target.statistics,
                    self.config,
                )
            )
        if self.channels.ontology:
            result.extend(
                discover_ontology_links(
                    source.database,
                    source.structure,
                    source.statistics,
                    target.database,
                    target.structure,
                    target.statistics,
                    self.config,
                )
            )
        return result, comparisons

    def _directional_links(
        self, source: _SourceEntry, target: _SourceEntry
    ) -> Tuple[LinkSet, int]:
        """Channels where the evidence lives on the source side only."""
        result = LinkSet()
        comparisons = 0
        if self.channels.crossref:
            comparisons += len(source.statistics)
            result.extend(
                discover_crossref_links(
                    source.database,
                    source.structure,
                    source.statistics,
                    [(target.database, target.structure)],
                    self.config,
                )
            )
        if self.channels.name:
            result.extend(
                discover_name_links(
                    source.database,
                    source.structure,
                    source.statistics,
                    target.database,
                    target.structure,
                    self.config,
                )
            )
        return result, comparisons
