"""Render per-style sources from the universe, with gold-standard recording.

Each generator writes *raw text* in the corresponding exchange format, so
the real parsers of :mod:`repro.dataimport` are exercised end to end. The
scenario mirrors the paper's COLUMBA case study (Section 5): a protein
world annotated by structures (PDB-like), classifications (SCOP-like),
function terms (GO-like), taxonomy, diseases (OMIM-like), interactions
(BIND-like), plus a second, overlapping protein database (PIR-like) that
creates true duplicates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dataimport.fasta import write_fasta
from repro.dataimport.flatfile import write_flatfile
from repro.dataimport.obo import OboTerm, write_obo
from repro.dataimport.pdbfile import PdbRecord, write_pdb_summaries
from repro.dataimport.records import CrossReference, EntryRecord, Feature
from repro.dataimport.scopcath import DomainRecord, write_classification
from repro.synth.accessions import AccessionStyle, make_generator
from repro.synth.corruption import CorruptionConfig, corrupt_text
from repro.synth.goldstandard import GoldStandard, SourceFacts
from repro.synth.universe import Universe, UniverseConfig, build_universe

# Database tags used inside DR/DBREF lines. Deliberately NOT equal to the
# scenario source names: ALADIN must find targets by value overlap, not by
# interpreting the database-name field (Section 5: "we would not be able to
# use the information in the attribute DBRef.database ... we also do not
# need this information").
_TAG_PDB = "PDB"
_TAG_GO = "GO"
_TAG_MIM = "MIM"
_TAG_SPROT = "SPROT"


@dataclass
class GeneratedSource:
    """One rendered source: raw text plus its truth."""

    name: str
    format_name: str
    text: str
    facts: SourceFacts


@dataclass
class ScenarioConfig:
    """Knobs for scenario generation."""

    universe: UniverseConfig = field(default_factory=UniverseConfig)
    corruption: CorruptionConfig = field(default_factory=CorruptionConfig)
    include: Tuple[str, ...] = (
        "swissprot",
        "pir",
        "pdb",
        "scop",
        "go",
        "taxonomy",
        "interactions",
        "omim",
    )
    swissprot_coverage: float = 0.95
    pir_coverage: float = 0.6
    pdb_coverage: float = 0.9
    scop_coverage: float = 0.85
    interaction_coverage: float = 0.9
    omim_numeric_accessions: bool = False
    seed: int = 11


@dataclass
class Scenario:
    """A generated multi-source integration problem."""

    config: ScenarioConfig
    universe: Universe
    gold: GoldStandard
    sources: List[GeneratedSource]

    def source(self, name: str) -> GeneratedSource:
        for source in self.sources:
            if source.name == name:
                return source
        raise KeyError(f"no source {name!r} in scenario")

    def source_names(self) -> List[str]:
        return [s.name for s in self.sources]


def build_scenario(config: Optional[ScenarioConfig] = None) -> Scenario:
    """Deterministically generate a scenario from ``config.seed``."""
    config = config or ScenarioConfig()
    config.corruption.validate()
    universe = build_universe(config.universe)
    rng = random.Random(config.seed)
    gold = GoldStandard()
    builder = _ScenarioBuilder(config, universe, rng, gold)
    sources = builder.build()
    return Scenario(config=config, universe=universe, gold=gold, sources=sources)


class _ScenarioBuilder:
    def __init__(
        self,
        config: ScenarioConfig,
        universe: Universe,
        rng: random.Random,
        gold: GoldStandard,
    ):
        self.config = config
        self.universe = universe
        self.rng = rng
        self.gold = gold
        # Coverage subsets are decided up-front so cross-reference truth is
        # consistent regardless of generation order.
        self.covered_sp = self._cover(len(universe.proteins), config.swissprot_coverage)
        self.covered_pir = self._cover(len(universe.proteins), config.pir_coverage)
        self.covered_pdb = self._cover(len(universe.structures), config.pdb_coverage)
        self.covered_scop = {
            uid for uid in self.covered_pdb if self.rng.random() < config.scop_coverage
        }
        self.covered_bind = self._cover(
            len(universe.interactions), config.interaction_coverage
        )
        # Accession maps filled as sources are generated.
        self.sp_accessions: Dict[int, str] = {}
        self.pir_accessions: Dict[int, str] = {}

    def _cover(self, n: int, fraction: float) -> Set[int]:
        return {i for i in range(n) if self.rng.random() < fraction}

    # ------------------------------------------------------------------
    def build(self) -> List[GeneratedSource]:
        generators = {
            "swissprot": self._gen_swissprot,
            "pir": self._gen_pir,
            "pdb": self._gen_pdb,
            "scop": self._gen_scop,
            "go": self._gen_go,
            "taxonomy": self._gen_taxonomy,
            "interactions": self._gen_interactions,
            "omim": self._gen_omim,
        }
        unknown = set(self.config.include) - set(generators)
        if unknown:
            raise ValueError(f"unknown sources in include: {sorted(unknown)}")
        # Swiss-Prot first: other sources reference its accessions.
        order = [name for name in generators if name in self.config.include]
        sources = []
        for name in order:
            source = generators[name]()
            self.gold.add_source(source.facts)
            sources.append(source)
        self._record_attribute_truth()
        return sources

    # ------------------------------------------------------------------
    # individual generators
    # ------------------------------------------------------------------
    def _maybe_drop(self) -> bool:
        return self.rng.random() < self.config.corruption.xref_drop_rate

    def _maybe_dangle(self) -> bool:
        return self.rng.random() < self.config.corruption.xref_dangling_rate

    def _typo(self, text: str) -> str:
        return corrupt_text(self.rng, text, self.config.corruption.text_typo_rate)

    def _gen_swissprot(self) -> GeneratedSource:
        gen_acc = make_generator(AccessionStyle.UNIPROT, self.rng)
        include = self.config.include
        records = []
        facts = SourceFacts(
            name="swissprot",
            format_name="flatfile",
            entity_class="protein",
            primary_relation="entry",
            accession_attribute="entry.accession",
        )
        structures_by_protein: Dict[int, List] = {}
        for structure in self.universe.structures:
            structures_by_protein.setdefault(structure.protein_uid, []).append(structure)
        for protein in self.universe.proteins:
            if protein.uid not in self.covered_sp:
                continue
            accession = gen_acc()
            self.sp_accessions[protein.uid] = accession
            facts.accession_to_uid[accession] = protein.uid
            xrefs = []
            for structure in structures_by_protein.get(protein.uid, []):
                if self._maybe_drop():
                    continue
                if self._maybe_dangle():
                    xrefs.append(CrossReference(_TAG_PDB, "0XXX"))
                    continue
                xrefs.append(CrossReference(_TAG_PDB, structure.pdb_code))
                if "pdb" in include and structure.uid in self.covered_pdb:
                    self.gold.record_xref(
                        "swissprot", accession, "pdb", structure.pdb_code
                    )
            for term_uid in protein.go_terms:
                term = self.universe.go_terms[term_uid]
                if self._maybe_drop():
                    continue
                xrefs.append(CrossReference(_TAG_GO, term.accession))
                if "go" in include:
                    self.gold.record_xref("swissprot", accession, "go", term.accession)
            for disease_uid in protein.diseases:
                disease = self.universe.diseases[disease_uid]
                if self._maybe_drop():
                    continue
                xrefs.append(CrossReference(_TAG_MIM, disease.accession))
                if "omim" in include and not self.config.omim_numeric_accessions:
                    self.gold.record_xref(
                        "swissprot", accession, "omim", disease.accession
                    )
            keywords = [
                self.universe.go_terms[t].name.split()[0].capitalize()
                for t in protein.go_terms[:3]
            ]
            if structures_by_protein.get(protein.uid):
                keywords.append("3D-structure")
            # Variable annotation cardinalities: real entries carry between
            # zero and several references/comments/features each, which
            # keeps annotation-table sizes distinct from the entry count.
            references = [
                f"PubMed={self.rng.randint(10**6, 10**7)}"
                for _ in range(self.rng.randint(0, 3))
            ]
            comments = [f"FUNCTION: {self._typo(protein.function_text)}"]
            if self.rng.random() < 0.4:
                comments.append("SIMILARITY: Belongs to a conserved protein family.")
            features = []
            for _ in range(self.rng.randint(0, 3)):
                start = self.rng.randint(1, max(1, len(protein.sequence) - 20))
                end = min(len(protein.sequence), start + self.rng.randint(10, 80))
                features.append(
                    Feature(
                        self.rng.choice(["DOMAIN", "ACT_SITE", "BINDING", "MOTIF"]),
                        start,
                        end,
                        "predicted",
                    )
                )
            records.append(
                EntryRecord(
                    accession=accession,
                    name=protein.name,
                    description=self._typo(protein.full_name),
                    organism=protein.taxon.scientific_name,
                    taxonomy_id=protein.taxon.taxid,
                    keywords=sorted(set(keywords)),
                    cross_references=xrefs,
                    references=references,
                    comments=comments,
                    sequence=protein.sequence,
                    features=features,
                )
            )
        return GeneratedSource("swissprot", "flatfile", write_flatfile(records), facts)

    def _gen_pir(self) -> GeneratedSource:
        gen_acc = make_generator(AccessionStyle.PIR, self.rng)
        records = []
        facts = SourceFacts(
            name="pir",
            format_name="flatfile",
            entity_class="protein",
            primary_relation="entry",
            accession_attribute="entry.accession",
        )
        for protein in self.universe.proteins:
            if protein.uid not in self.covered_pir:
                continue
            accession = gen_acc()
            self.pir_accessions[protein.uid] = accession
            facts.accession_to_uid[accession] = protein.uid
            xrefs = []
            for term_uid in protein.go_terms[:2]:
                term = self.universe.go_terms[term_uid]
                if self._maybe_drop():
                    continue
                xrefs.append(CrossReference(_TAG_GO, term.accession))
                if "go" in self.config.include:
                    self.gold.record_xref("pir", accession, "go", term.accession)
            # PIR models the same protein with different conventions:
            # lower-cased entry names carrying the full genus (variable
            # length, so the accession heuristic prefers the true
            # accession), typo'd descriptions, and a slimmer annotation
            # set — classic duplicate noise.
            genus = protein.taxon.scientific_name.split()[0].lower()
            records.append(
                EntryRecord(
                    accession=accession,
                    name=f"{protein.symbol.lower()}_{genus}",
                    description=self._typo(protein.full_name),
                    organism=protein.taxon.scientific_name,
                    taxonomy_id=protein.taxon.taxid,
                    keywords=[
                        self.universe.go_terms[t].name.split()[0].capitalize()
                        for t in protein.go_terms[:2]
                    ],
                    cross_references=xrefs,
                    comments=[f"SUMMARY: {self._typo(protein.function_text)}"],
                    sequence=protein.sequence,
                )
            )
        return GeneratedSource("pir", "flatfile", write_flatfile(records), facts)

    def _gen_pdb(self) -> GeneratedSource:
        records = []
        facts = SourceFacts(
            name="pdb",
            format_name="pdb",
            entity_class="structure",
            primary_relation="structure",
            accession_attribute="structure.pdb_code",
        )
        for structure in self.universe.structures:
            if structure.uid not in self.covered_pdb:
                continue
            protein = self.universe.protein_by_uid(structure.protein_uid)
            facts.accession_to_uid[structure.pdb_code] = structure.uid
            xrefs = []
            sp_acc = self.sp_accessions.get(protein.uid)
            if sp_acc is not None and not self._maybe_drop():
                if self._maybe_dangle():
                    xrefs.append(CrossReference(_TAG_SPROT, "Z99999"))
                else:
                    xrefs.append(CrossReference(_TAG_SPROT, sp_acc))
                    if "swissprot" in self.config.include:
                        self.gold.record_xref(
                            "pdb", structure.pdb_code, "swissprot", sp_acc
                        )
            # Not every PDB entry carries every section: COMPND and SEQRES
            # are occasionally absent in real depositions, which keeps the
            # annotation tables from having identical key sets (the 1:1
            # tie situation of Section 4.2).
            records.append(
                PdbRecord(
                    pdb_code=structure.pdb_code,
                    title=self._typo(structure.title),
                    compound=(
                        protein.full_name.upper() if self.rng.random() < 0.85 else ""
                    ),
                    organism=protein.taxon.scientific_name.upper(),
                    method=structure.method,
                    resolution=structure.resolution,
                    deposited="01-JAN-03",
                    cross_references=xrefs,
                    sequence=protein.sequence[:80] if self.rng.random() < 0.8 else "",
                )
            )
        return GeneratedSource("pdb", "pdb", write_pdb_summaries(records), facts)

    def _gen_scop(self) -> GeneratedSource:
        records = []
        facts = SourceFacts(
            name="scop",
            format_name="classification",
            entity_class="domain",
            primary_relation="domain",
            accession_attribute="domain.sid",
        )
        for structure in self.universe.structures:
            if structure.uid not in self.covered_scop:
                continue
            protein = self.universe.protein_by_uid(structure.protein_uid)
            sid = "d" + structure.pdb_code.lower() + "a_"
            cls = "abcd"[protein.family % 4]
            sccs = f"{cls}.{protein.family + 1}.1.{protein.uid % 5 + 1}"
            facts.accession_to_uid[sid] = structure.uid
            records.append(DomainRecord(sid=sid, pdb_code=structure.pdb_code, sccs=sccs))
            if "pdb" in self.config.include and structure.uid in self.covered_pdb:
                self.gold.record_xref("scop", sid, "pdb", structure.pdb_code)
        return GeneratedSource(
            "scop", "classification", write_classification(records), facts
        )

    def _gen_go(self) -> GeneratedSource:
        terms = []
        facts = SourceFacts(
            name="go",
            format_name="obo",
            entity_class="go_term",
            primary_relation="term",
            accession_attribute="term.accession",
        )
        for term in self.universe.go_terms:
            facts.accession_to_uid[term.accession] = term.uid
            terms.append(
                OboTerm(
                    term_accession=term.accession,
                    name=term.name,
                    namespace=term.namespace,
                    definition=term.definition,
                    is_a=[self.universe.go_terms[p].accession for p in term.parents],
                )
            )
        return GeneratedSource("go", "obo", write_obo(terms), facts)

    def _gen_taxonomy(self) -> GeneratedSource:
        lines = ["taxid\tscientific_name\tcommon_name"]
        facts = SourceFacts(
            name="taxonomy",
            format_name="delimited",
            entity_class="taxon",
            primary_relation="taxonomy",
            accession_attribute="taxonomy.taxid",
            import_options={"delimiter": "\t"},
        )
        for index, taxon in enumerate(self.universe.taxa):
            facts.accession_to_uid[str(taxon.taxid)] = index
            lines.append(f"{taxon.taxid}\t{taxon.scientific_name}\t{taxon.common_name}")
        return GeneratedSource("taxonomy", "delimited", "\n".join(lines) + "\n", facts)

    def _gen_interactions(self) -> GeneratedSource:
        gen_acc = make_generator(AccessionStyle.UNIPROT, self.rng)
        facts = SourceFacts(
            name="interactions",
            format_name="xml",
            entity_class="interaction",
            primary_relation="interaction",
            accession_attribute="interaction.acc",
        )
        chunks = ["<interactionset>"]
        for interaction in self.universe.interactions:
            if interaction.uid not in self.covered_bind:
                continue
            accession = "BIND" + gen_acc()  # e.g. BINDP12345: alnum, fixed length
            facts.accession_to_uid[accession] = interaction.uid
            chunks.append(
                f'  <interaction acc="{accession}" score="{interaction.score}">'
            )
            for protein_uid in (interaction.protein_a, interaction.protein_b):
                sp_acc = self.sp_accessions.get(protein_uid)
                if sp_acc is None or self._maybe_drop():
                    continue
                # Encoded "DB:ACC" form — Section 4.4's "Uniprot:P11140".
                chunks.append(f'    <participant ref="{_TAG_SPROT}:{sp_acc}"/>')
                if "swissprot" in self.config.include:
                    self.gold.record_xref("interactions", accession, "swissprot", sp_acc)
            chunks.append("  </interaction>")
        chunks.append("</interactionset>")
        return GeneratedSource("interactions", "xml", "\n".join(chunks) + "\n", facts)

    def _gen_omim(self) -> GeneratedSource:
        records = []
        numeric = self.config.omim_numeric_accessions
        facts = SourceFacts(
            name="omim",
            format_name="flatfile",
            entity_class="disease",
            primary_relation="entry",
            accession_attribute="entry.accession",
        )
        for disease in self.universe.diseases:
            # MIM604321 style satisfies the accession heuristic; the bare
            # numeric 604321 style violates it (probe for E1/E7).
            accession = disease.accession[3:] if numeric else disease.accession
            facts.accession_to_uid[accession] = disease.uid
            comments = [self._typo(disease.description)]
            if self.rng.random() < 0.5:
                comments.append(
                    "INHERITANCE: autosomal "
                    + self.rng.choice(["dominant", "recessive"])
                    + " pattern reported."
                )
            # OMIM titles vary widely in length (plain noun through long
            # qualified phrases) — keep that spread so the name column is
            # not mistaken for the accession column.
            name = disease.name.upper().replace(" ", "_").replace("-", "_")
            if self.rng.random() < 0.4:
                name += "_TYPE_" + self.rng.choice(["I", "II", "III", "IV"])
            records.append(
                EntryRecord(
                    accession=accession,
                    name=name,
                    description=self._typo(disease.name),
                    comments=comments,
                    references=[
                        f"PubMed={self.rng.randint(10**6, 10**7)}"
                        for _ in range(self.rng.randint(0, 2))
                    ],
                )
            )
        return GeneratedSource("omim", "flatfile", write_flatfile(records), facts)

    # ------------------------------------------------------------------
    def _record_attribute_truth(self) -> None:
        include = self.config.include
        gold = self.gold

        def attr(source_a, attribute_a, source_b, attribute_b):
            if source_a in include and source_b in include:
                gold.record_attribute_link(source_a, attribute_a, source_b, attribute_b)

        attr("swissprot", "dbxref.accession", "pdb", "structure.pdb_code")
        attr("swissprot", "dbxref.accession", "go", "term.accession")
        if not self.config.omim_numeric_accessions:
            attr("swissprot", "dbxref.accession", "omim", "entry.accession")
        attr("pir", "dbxref.accession", "go", "term.accession")
        attr("pdb", "struct_ref.db_accession", "swissprot", "entry.accession")
        attr("scop", "domain.pdb_code", "pdb", "structure.pdb_code")
        attr("interactions", "participant.ref", "swissprot", "entry.accession")
