"""Random biological sequences and controlled mutation.

Homology ground truth comes from *families*: a family has one ancestral
sequence, members are mutated copies. ``mutate_sequence`` applies point
substitutions and small indels to reach a target divergence, so the
sequence-link discovery step (Section 4.4's "similarity between protein
sequences ... is the most important way of inferring the function of a
new protein") can be evaluated at known identity levels.
"""

from __future__ import annotations

import random
from typing import Optional

PROTEIN_ALPHABET = "ACDEFGHIKLMNPQRSTVWY"
DNA_ALPHABET = "ACGT"


def random_protein(rng: random.Random, length: int) -> str:
    """A uniform random protein sequence of ``length`` residues."""
    return "".join(rng.choice(PROTEIN_ALPHABET) for _ in range(length))


def random_dna(rng: random.Random, length: int) -> str:
    """A uniform random DNA sequence of ``length`` bases."""
    return "".join(rng.choice(DNA_ALPHABET) for _ in range(length))


def mutate_sequence(
    rng: random.Random,
    sequence: str,
    divergence: float,
    alphabet: str = PROTEIN_ALPHABET,
    indel_fraction: float = 0.1,
) -> str:
    """Return a mutated copy with roughly ``divergence`` fraction of edits.

    Edits are substitutions except for ``indel_fraction`` of them, which
    insert or delete one character. Divergence 0 returns the input
    unchanged; divergence 1 effectively randomizes the sequence.
    """
    if not 0.0 <= divergence <= 1.0:
        raise ValueError(f"divergence must be in [0, 1], got {divergence}")
    chars = list(sequence)
    n_edits = round(len(chars) * divergence)
    for _ in range(n_edits):
        if not chars:
            break
        pos = rng.randrange(len(chars))
        roll = rng.random()
        if roll < indel_fraction / 2:
            chars.insert(pos, rng.choice(alphabet))
        elif roll < indel_fraction:
            del chars[pos]
        else:
            current = chars[pos]
            replacement = rng.choice(alphabet)
            while replacement == current and len(alphabet) > 1:
                replacement = rng.choice(alphabet)
            chars[pos] = replacement
    return "".join(chars)


def sequence_identity(a: str, b: str) -> float:
    """Global identity of two sequences via banded LCS ratio.

    Identity = LCS(a, b) / max(len(a), len(b)). Exact dynamic programming;
    used as ground-truth reference when evaluating the BLAST-like search.
    """
    if not a or not b:
        return 0.0 if (a or b) else 1.0
    # Classic O(len(a)*len(b)) LCS with two rows.
    previous = [0] * (len(b) + 1)
    for ca in a:
        current = [0]
        for j, cb in enumerate(b, start=1):
            if ca == cb:
                current.append(previous[j - 1] + 1)
            else:
                current.append(max(previous[j], current[-1]))
        previous = current
    return previous[-1] / max(len(a), len(b))
