"""Ground-truth registry for generated scenarios.

Plays the role the paper assigns to COLUMBA (Section 5): a reference
integration from which "precision and recall methods for finding primary
relations, secondary relations, cross-references, and duplicates can be
derived" — except that, being synthetic, the truth here is exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple


@dataclass(frozen=True)
class LinkFact:
    """One true object-level link between two sources.

    ``kind`` is ``"xref"`` for explicit cross-references present in the
    rendered data, ``"duplicate"`` for same-real-world-object pairs.
    Facts are stored directed for xrefs (the reference lives in source_a)
    and undirected for duplicates (normalized ordering).
    """

    source_a: str
    accession_a: str
    source_b: str
    accession_b: str
    kind: str = "xref"


@dataclass(frozen=True)
class AttributeLinkFact:
    """A true attribute-level cross-reference correspondence.

    ``attribute_a`` (qualified ``table.column`` in ``source_a``) stores
    values drawn from ``attribute_b`` of ``source_b``.
    """

    source_a: str
    attribute_a: str
    source_b: str
    attribute_b: str


@dataclass
class SourceFacts:
    """Per-source truth recorded at generation time."""

    name: str
    format_name: str
    entity_class: str  # "protein" | "structure" | "domain" | "go_term" | ...
    primary_relation: str  # table holding the primary objects after import
    accession_attribute: str  # qualified "table.column" of the accession
    accession_to_uid: Dict[str, int] = field(default_factory=dict)
    import_options: Dict[str, object] = field(default_factory=dict)

    def uid_to_accession(self) -> Dict[int, str]:
        return {uid: acc for acc, uid in self.accession_to_uid.items()}


class GoldStandard:
    """Aggregated truth for one scenario."""

    def __init__(self) -> None:
        self.sources: Dict[str, SourceFacts] = {}
        self._xrefs: Set[LinkFact] = set()
        self._attribute_links: Set[AttributeLinkFact] = set()

    # ------------------------------------------------------------------
    # recording (called by generators)
    # ------------------------------------------------------------------
    def add_source(self, facts: SourceFacts) -> None:
        if facts.name in self.sources:
            raise ValueError(f"source {facts.name!r} already registered")
        self.sources[facts.name] = facts

    def record_xref(
        self, source_a: str, accession_a: str, source_b: str, accession_b: str
    ) -> None:
        self._xrefs.add(LinkFact(source_a, accession_a, source_b, accession_b, "xref"))

    def record_attribute_link(
        self, source_a: str, attribute_a: str, source_b: str, attribute_b: str
    ) -> None:
        self._attribute_links.add(
            AttributeLinkFact(source_a, attribute_a, source_b, attribute_b)
        )

    # ------------------------------------------------------------------
    # queries (called by the evaluation harness)
    # ------------------------------------------------------------------
    def primary_relation(self, source: str) -> str:
        return self.sources[source].primary_relation

    def accession_attribute(self, source: str) -> str:
        return self.sources[source].accession_attribute

    def xref_links(
        self, source_a: Optional[str] = None, source_b: Optional[str] = None
    ) -> Set[LinkFact]:
        """True explicit cross-reference facts, optionally filtered."""
        out = set()
        for fact in self._xrefs:
            if source_a is not None and fact.source_a != source_a:
                continue
            if source_b is not None and fact.source_b != source_b:
                continue
            out.add(fact)
        return out

    def attribute_links(self) -> Set[AttributeLinkFact]:
        return set(self._attribute_links)

    def duplicate_pairs(self) -> Set[LinkFact]:
        """All true cross-source duplicates: same entity class, same uid.

        Normalized with source_a < source_b so each pair appears once.
        """
        pairs: Set[LinkFact] = set()
        names = sorted(self.sources)
        for i, name_a in enumerate(names):
            facts_a = self.sources[name_a]
            for name_b in names[i + 1:]:
                facts_b = self.sources[name_b]
                if facts_a.entity_class != facts_b.entity_class:
                    continue
                uid_to_acc_b = facts_b.uid_to_accession()
                for acc_a, uid in facts_a.accession_to_uid.items():
                    acc_b = uid_to_acc_b.get(uid)
                    if acc_b is not None:
                        pairs.add(LinkFact(name_a, acc_a, name_b, acc_b, "duplicate"))
        return pairs

    def shared_entity_sources(self) -> List[Tuple[str, str]]:
        """Source pairs that describe the same entity class (duplicate candidates)."""
        names = sorted(self.sources)
        out = []
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if self.sources[a].entity_class == self.sources[b].entity_class:
                    out.append((a, b))
        return out
