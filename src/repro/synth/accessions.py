"""Accession-number generators per database style.

Section 4.2's heuristic rests on observed accession shapes: alphanumeric,
at least four characters (PDB codes being the shortest), near-constant
length within one database, and distinct from digit-only surrogate keys.
Each style below reproduces one real-world shape; the ``numeric`` style
(OMIM-like 6-digit identifiers) deliberately violates the heuristic and is
used to probe its failure mode.
"""

from __future__ import annotations

import enum
import random
from typing import Callable, Set

_LETTERS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
_ALNUM = _LETTERS + "0123456789"
_DIGITS = "0123456789"


class AccessionStyle(enum.Enum):
    """Known accession shapes."""

    UNIPROT = "uniprot"  # e.g. P12345
    PIR = "pir"  # e.g. A41234
    PDB = "pdb"  # e.g. 1ABC (4 chars, shortest known)
    GO = "go"  # e.g. GO:0001234
    MIM = "mim"  # e.g. MIM604321
    ENSEMBL = "ensembl"  # e.g. ENSG00000042753
    REFSEQ = "refseq"  # e.g. NM_002745
    SCOP_SID = "scop_sid"  # e.g. d1abca_
    NUMERIC = "numeric"  # e.g. 604321 (violates the heuristic)


def _pick(rng: random.Random, alphabet: str, n: int) -> str:
    return "".join(rng.choice(alphabet) for _ in range(n))


def _uniprot(rng: random.Random) -> str:
    return rng.choice(_LETTERS) + _pick(rng, _DIGITS, 1) + _pick(rng, _ALNUM, 3) + _pick(rng, _DIGITS, 1)


def _pir(rng: random.Random) -> str:
    return rng.choice(_LETTERS) + _pick(rng, _DIGITS, 5)


def _pdb(rng: random.Random) -> str:
    # Digit + three alphanumerics, with at least one letter so the code is
    # never all-digit (matching the accession shape the heuristic relies on).
    tail = list(_pick(rng, _ALNUM, 2) + rng.choice(_LETTERS))
    rng.shuffle(tail)
    return _pick(rng, _DIGITS, 1) + "".join(tail)


def _go(rng: random.Random) -> str:
    return "GO:" + _pick(rng, _DIGITS, 7)


def _mim(rng: random.Random) -> str:
    return "MIM" + _pick(rng, _DIGITS, 6)


def _ensembl(rng: random.Random) -> str:
    return "ENSG" + _pick(rng, _DIGITS, 11)


def _refseq(rng: random.Random) -> str:
    return "NM_" + _pick(rng, _DIGITS, 6)


def _scop_sid(rng: random.Random) -> str:
    return "d" + _pick(rng, _ALNUM, 4).lower() + rng.choice("abcdefgh") + "_"


def _numeric(rng: random.Random) -> str:
    return _pick(rng, _DIGITS, 6)


_FACTORIES = {
    AccessionStyle.UNIPROT: _uniprot,
    AccessionStyle.PIR: _pir,
    AccessionStyle.PDB: _pdb,
    AccessionStyle.GO: _go,
    AccessionStyle.MIM: _mim,
    AccessionStyle.ENSEMBL: _ensembl,
    AccessionStyle.REFSEQ: _refseq,
    AccessionStyle.SCOP_SID: _scop_sid,
    AccessionStyle.NUMERIC: _numeric,
}


def make_generator(style: AccessionStyle, rng: random.Random) -> Callable[[], str]:
    """Return a zero-argument callable producing fresh unique accessions."""
    seen: Set[str] = set()
    factory = _FACTORIES[style]

    def generate() -> str:
        for _ in range(10000):
            candidate = factory(rng)
            if candidate not in seen:
                seen.add(candidate)
                return candidate
        raise RuntimeError(f"accession space exhausted for style {style}")

    return generate
