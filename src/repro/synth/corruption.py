"""Noise injection for generated sources.

Real integrated databases contain typos, missing cross-references, and
dangling pointers (Section 5: "there is a considerable backlog in
annotating structures. This backlog appears as missing links"). The
corruption knobs here control how hard each discovery task is, so the
evaluation benches can sweep difficulty.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

_TYPO_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


@dataclass
class CorruptionConfig:
    """Noise levels, all probabilities in [0, 1].

    Attributes:
        text_typo_rate: per-value probability of one injected typo in text
            annotation (names, descriptions) — stresses duplicate detection.
        xref_drop_rate: probability of silently dropping a true
            cross-reference — produces missing links (false negatives the
            system cannot recover; lowers achievable recall ceiling).
        xref_dangling_rate: probability of rewriting a cross-reference to a
            nonexistent accession — produces wrong pointers that link
            discovery must not follow.
        value_null_rate: probability of nulling an optional annotation value.
    """

    text_typo_rate: float = 0.0
    xref_drop_rate: float = 0.0
    xref_dangling_rate: float = 0.0
    value_null_rate: float = 0.0

    def validate(self) -> None:
        for name in ("text_typo_rate", "xref_drop_rate", "xref_dangling_rate", "value_null_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


def corrupt_text(rng: random.Random, text: str, typo_rate: float) -> str:
    """With probability ``typo_rate`` apply one random edit to ``text``.

    Edit kinds: substitution, deletion, insertion, transposition — the
    classic typo model used in duplicate-detection literature.
    """
    if not text or rng.random() >= typo_rate:
        return text
    kind = rng.randrange(4)
    pos = rng.randrange(len(text))
    if kind == 0:  # substitution
        return text[:pos] + rng.choice(_TYPO_ALPHABET) + text[pos + 1:]
    if kind == 1:  # deletion
        return text[:pos] + text[pos + 1:]
    if kind == 2:  # insertion
        return text[:pos] + rng.choice(_TYPO_ALPHABET) + text[pos:]
    if pos + 1 < len(text):  # transposition
        return text[:pos] + text[pos + 1] + text[pos] + text[pos + 2:]
    return text
