"""Synthetic life-science data universe with exact ground truth.

The paper evaluates its heuristics against manually integrated databases
(Section 5: "The COLUMBA database shall serve as a 'learning' test set for
estimating the performance of ALADIN's various analysis algorithms"). Live
bio databases are not available offline, so this package generates a
*universe* of proteins, structures, ontology terms, taxa, diseases and
interactions, and renders per-style *sources* (Swiss-Prot-like flat files,
PDB-like summaries, SCOP-like classifications, GO-like OBO, BIND-like XML,
taxonomy tables) from it. Because the universe is known, every discovery
step has an exact gold standard: true primary relations, true foreign
keys, true cross-references, true duplicates, true homolog families.

The generators intentionally reproduce the *data characteristics* the
paper's heuristics exploit (Section 1's bullet list): alphanumeric
fixed-ish-length accession numbers, digit-only surrogate keys, one primary
object class per source, nested annotation, ``DB:ACC`` cross-reference
encodings, and overlapping extensions across sources.
"""

from repro.synth.sequences import mutate_sequence, random_dna, random_protein, sequence_identity
from repro.synth.accessions import AccessionStyle, make_generator
from repro.synth.universe import (
    DiseaseEntity,
    GoTermEntity,
    InteractionEntity,
    ProteinEntity,
    StructureEntity,
    TaxonEntity,
    Universe,
    UniverseConfig,
    build_universe,
)
from repro.synth.corruption import CorruptionConfig, corrupt_text
from repro.synth.goldstandard import GoldStandard, LinkFact, SourceFacts
from repro.synth.sources import GeneratedSource, Scenario, ScenarioConfig, build_scenario

__all__ = [
    "AccessionStyle",
    "CorruptionConfig",
    "DiseaseEntity",
    "GeneratedSource",
    "GoldStandard",
    "GoTermEntity",
    "InteractionEntity",
    "LinkFact",
    "ProteinEntity",
    "Scenario",
    "ScenarioConfig",
    "SourceFacts",
    "StructureEntity",
    "TaxonEntity",
    "Universe",
    "UniverseConfig",
    "build_scenario",
    "build_universe",
    "corrupt_text",
    "make_generator",
    "mutate_sequence",
    "random_dna",
    "random_protein",
    "sequence_identity",
]
