"""The ground-truth biological universe.

One :class:`Universe` holds the real-world objects that all generated
sources describe (possibly redundantly and conflictingly — Section 1:
"Databases overlap in the objects they represent, storing sometimes
redundant and sometimes conflicting data"). Sources render *views* of the
universe; because every rendered record remembers which universe entity it
came from, cross-source links and duplicates have exact ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.synth.sequences import mutate_sequence, random_protein

_GENE_SYLLABLES = [
    "KIN", "PHO", "RAS", "MYC", "ABL", "SRC", "TOR", "ATM", "CDK", "MAP",
    "ERK", "JNK", "AKT", "GSK", "PLK", "WEE", "CHK", "BRC", "TP", "RB",
    "HSP", "DNA", "RNA", "POL", "LIG", "HEL", "TOP", "GYR", "REC", "RAD",
]

_FUNCTION_VERBS = [
    "catalyzes", "regulates", "mediates", "inhibits", "activates",
    "binds", "phosphorylates", "stabilizes", "transports", "cleaves",
]

_COMPARTMENTS = [
    "nucleus", "cytoplasm", "mitochondrion", "membrane", "ribosome",
    "endoplasmic reticulum", "golgi apparatus", "lysosome",
]

# (taxid, scientific name, common name, Swiss-Prot species mnemonic).
# Mnemonics have 3-5 characters in reality (RAT vs ARATH), which gives
# entry names their natural length spread.
_TAXA = [
    (9606, "Homo sapiens", "human", "HUMAN"),
    (10090, "Mus musculus", "mouse", "MOUSE"),
    (4932, "Saccharomyces cerevisiae", "yeast", "YEAST"),
    (562, "Escherichia coli", "bacterium", "ECOLI"),
    (7227, "Drosophila melanogaster", "fly", "DROME"),
    (6239, "Caenorhabditis elegans", "worm", "CAEEL"),
    (10116, "Rattus norvegicus", "rat", "RAT"),
    (3702, "Arabidopsis thaliana", "plant", "ARATH"),
    (9913, "Bos taurus", "cow", "BOVIN"),
    (8355, "Xenopus laevis", "frog", "XENLA"),
    (9823, "Sus scrofa", "pig", "PIG"),
    (3888, "Pisum sativum", "pea", "PEA"),
]

_GO_NAMESPACES = ["molecular_function", "biological_process", "cellular_component"]

_METHODS = ["X-RAY DIFFRACTION", "NMR", "ELECTRON MICROSCOPY"]

_DISEASE_NOUNS = [
    "anemia", "dystrophy", "carcinoma", "syndrome", "deficiency",
    "neuropathy", "ataxia", "dysplasia", "atrophy", "sclerosis",
]

# Varied-length descriptive names: real protein descriptions range from
# terse ("P53 kinase") to verbose; the length spread keeps description
# columns from masquerading as accession numbers (Section 5's "varying
# length" rejection for BioEntry.name).
_NAME_TEMPLATES = [
    "{sym} kinase",
    "Putative {sym} regulatory protein",
    "Probable ATP-dependent {sym} helicase homolog",
    "{sym} family member {n}",
    "Uncharacterized protein {sym}",
    "Serine/threonine-protein kinase {sym} isoform {n}",
    "{sym} associated factor",
]


@dataclass(frozen=True)
class TaxonEntity:
    taxid: int
    scientific_name: str
    common_name: str
    mnemonic: str


@dataclass(frozen=True)
class GoTermEntity:
    uid: int
    accession: str
    name: str
    namespace: str
    definition: str
    parents: Tuple[int, ...]  # uids of parent terms


@dataclass(frozen=True)
class DiseaseEntity:
    uid: int
    accession: str  # MIM-style
    name: str
    description: str


@dataclass(frozen=True)
class ProteinEntity:
    uid: int
    family: int
    symbol: str  # gene symbol, e.g. KIN2
    name: str  # entry name, e.g. KIN2_HUMAN
    full_name: str  # descriptive name
    synonyms: Tuple[str, ...]
    taxon: TaxonEntity
    sequence: str
    go_terms: Tuple[int, ...]  # uids
    diseases: Tuple[int, ...]  # uids
    function_text: str


@dataclass(frozen=True)
class StructureEntity:
    uid: int
    pdb_code: str
    protein_uid: int
    method: str
    resolution: Optional[float]
    title: str


@dataclass(frozen=True)
class InteractionEntity:
    uid: int
    protein_a: int
    protein_b: int
    score: float


@dataclass
class Universe:
    """All ground-truth entities, keyed by uid within each class."""

    taxa: List[TaxonEntity] = field(default_factory=list)
    go_terms: List[GoTermEntity] = field(default_factory=list)
    diseases: List[DiseaseEntity] = field(default_factory=list)
    proteins: List[ProteinEntity] = field(default_factory=list)
    structures: List[StructureEntity] = field(default_factory=list)
    interactions: List[InteractionEntity] = field(default_factory=list)

    def protein_by_uid(self, uid: int) -> ProteinEntity:
        return self.proteins[uid]

    def go_by_uid(self, uid: int) -> GoTermEntity:
        return self.go_terms[uid]

    def disease_by_uid(self, uid: int) -> DiseaseEntity:
        return self.diseases[uid]

    def family_members(self, family: int) -> List[ProteinEntity]:
        return [p for p in self.proteins if p.family == family]

    def homolog_pairs(self) -> List[Tuple[int, int]]:
        """All unordered protein uid pairs that share a family."""
        by_family: Dict[int, List[int]] = {}
        for protein in self.proteins:
            by_family.setdefault(protein.family, []).append(protein.uid)
        pairs = []
        for members in by_family.values():
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    pairs.append((a, b))
        return pairs


@dataclass
class UniverseConfig:
    """Knobs for universe generation."""

    n_families: int = 12
    members_per_family: int = 4
    n_go_terms: int = 40
    n_diseases: int = 15
    structures_per_protein: float = 0.6
    n_interactions: int = 30
    sequence_length: Tuple[int, int] = (120, 400)
    family_divergence: float = 0.15
    seed: int = 7


def build_universe(config: Optional[UniverseConfig] = None) -> Universe:
    """Generate a deterministic universe from ``config.seed``."""
    config = config or UniverseConfig()
    rng = random.Random(config.seed)
    universe = Universe()
    universe.taxa = [TaxonEntity(*t) for t in _TAXA]
    _build_go_dag(rng, universe, config)
    _build_diseases(rng, universe, config)
    _build_proteins(rng, universe, config)
    _build_structures(rng, universe, config)
    _build_interactions(rng, universe, config)
    return universe


def _build_go_dag(rng: random.Random, universe: Universe, config: UniverseConfig) -> None:
    from repro.synth.accessions import AccessionStyle, make_generator

    gen = make_generator(AccessionStyle.GO, rng)
    for uid in range(config.n_go_terms):
        namespace = _GO_NAMESPACES[uid % len(_GO_NAMESPACES)]
        verb = rng.choice(_FUNCTION_VERBS)
        compartment = rng.choice(_COMPARTMENTS)
        name = f"{verb} activity in {compartment} {uid}"
        # Parents: up to 2 earlier terms in the same namespace (keeps a DAG).
        candidates = [
            t.uid for t in universe.go_terms if t.namespace == namespace and t.uid < uid
        ]
        parents = tuple(sorted(rng.sample(candidates, min(len(candidates), rng.randint(0, 2)))))
        universe.go_terms.append(
            GoTermEntity(
                uid=uid,
                accession=gen(),
                name=name,
                namespace=namespace,
                definition=f"The process by which a gene product {verb} targets in the {compartment}.",
                parents=parents,
            )
        )


def _build_diseases(rng: random.Random, universe: Universe, config: UniverseConfig) -> None:
    from repro.synth.accessions import AccessionStyle, make_generator

    gen = make_generator(AccessionStyle.MIM, rng)
    for uid in range(config.n_diseases):
        syllable = rng.choice(_GENE_SYLLABLES).capitalize()
        noun = rng.choice(_DISEASE_NOUNS)
        universe.diseases.append(
            DiseaseEntity(
                uid=uid,
                accession=gen(),
                name=f"{syllable}-associated {noun}",
                description=(
                    f"An inherited {noun} characterized by progressive loss of "
                    f"function, linked to mutations in the {syllable} pathway."
                ),
            )
        )


def _make_symbol(rng: random.Random, used: set) -> str:
    for _ in range(1000):
        symbol = rng.choice(_GENE_SYLLABLES) + str(rng.randint(1, 999))
        if symbol not in used:
            used.add(symbol)
            return symbol
    raise RuntimeError("gene symbol space exhausted")


def _build_proteins(rng: random.Random, universe: Universe, config: UniverseConfig) -> None:
    used_symbols: set = set()
    uid = 0
    for family in range(config.n_families):
        length = rng.randint(*config.sequence_length)
        ancestor = random_protein(rng, length)
        base_symbol = _make_symbol(rng, used_symbols)
        for member in range(config.members_per_family):
            taxon = rng.choice(universe.taxa)
            sequence = mutate_sequence(rng, ancestor, config.family_divergence)
            symbol = base_symbol if member == 0 else _make_symbol(rng, used_symbols)
            suffix = taxon.mnemonic
            go_terms = tuple(
                sorted(
                    t.uid
                    for t in rng.sample(universe.go_terms, min(len(universe.go_terms), rng.randint(1, 4)))
                )
            )
            diseases = tuple(
                sorted(
                    d.uid
                    for d in rng.sample(universe.diseases, rng.randint(0, 2))
                )
            )
            go_names = ", ".join(universe.go_terms[t].name for t in go_terms[:2])
            function_text = (
                f"{symbol} {rng.choice(_FUNCTION_VERBS)} substrates in the "
                f"{rng.choice(_COMPARTMENTS)}. Involved in {go_names}."
            )
            template = rng.choice(_NAME_TEMPLATES)
            universe.proteins.append(
                ProteinEntity(
                    uid=uid,
                    family=family,
                    symbol=symbol,
                    name=f"{symbol}_{suffix}",
                    full_name=template.format(sym=symbol.capitalize(), n=member + 1),
                    synonyms=(base_symbol + "-like",) if member else (),
                    taxon=taxon,
                    sequence=sequence,
                    go_terms=go_terms,
                    diseases=diseases,
                    function_text=function_text,
                )
            )
            uid += 1


def _build_structures(rng: random.Random, universe: Universe, config: UniverseConfig) -> None:
    from repro.synth.accessions import AccessionStyle, make_generator

    gen = make_generator(AccessionStyle.PDB, rng)
    uid = 0
    for protein in universe.proteins:
        if rng.random() > config.structures_per_protein:
            continue
        n_structures = 1 if rng.random() < 0.8 else 2
        for _ in range(n_structures):
            method = rng.choice(_METHODS)
            resolution = round(rng.uniform(1.2, 3.5), 2) if method == "X-RAY DIFFRACTION" else None
            universe.structures.append(
                StructureEntity(
                    uid=uid,
                    pdb_code=gen().upper(),
                    protein_uid=protein.uid,
                    method=method,
                    resolution=resolution,
                    title=f"CRYSTAL STRUCTURE OF {protein.symbol}",
                )
            )
            uid += 1


def _build_interactions(rng: random.Random, universe: Universe, config: UniverseConfig) -> None:
    if len(universe.proteins) < 2:
        return
    seen = set()
    uid = 0
    attempts = 0
    while uid < config.n_interactions and attempts < config.n_interactions * 20:
        attempts += 1
        a, b = rng.sample(range(len(universe.proteins)), 2)
        key = (min(a, b), max(a, b))
        if key in seen:
            continue
        seen.add(key)
        universe.interactions.append(
            InteractionEntity(uid=uid, protein_a=key[0], protein_b=key[1],
                              score=round(rng.uniform(0.2, 1.0), 3))
        )
        uid += 1
