"""Per-source integration reports (the Figure 2 trace)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class StepTiming:
    """Wall time and headline counts of one pipeline step."""

    step: str
    seconds: float
    counts: Dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return f"{self.step:<22s} {self.seconds * 1000:8.1f} ms  {rendered}"


@dataclass
class IntegrationReport:
    """Outcome of adding one source (steps 1-5)."""

    source_name: str
    steps: List[StepTiming] = field(default_factory=list)
    primary_relation: Optional[str] = None
    warnings: List[str] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(step.seconds for step in self.steps)

    def step(self, name: str) -> StepTiming:
        for timing in self.steps:
            if timing.step == name:
                return timing
        raise KeyError(f"no step {name!r} in report for {self.source_name!r}")

    def render(self) -> str:
        lines = [f"--- integration of {self.source_name!r} "
                 f"({self.total_seconds * 1000:.1f} ms total) ---"]
        lines.extend(step.describe() for step in self.steps)
        if self.primary_relation is not None:
            lines.append(f"primary relation: {self.primary_relation}")
        for warning in self.warnings:
            lines.append(f"warning: {warning}")
        return "\n".join(lines)
