"""The ALADIN system: the five-step pipeline behind one class.

:class:`Aladin` ties the substrates together: import (step 1), primary and
secondary relation discovery (steps 2-3), link discovery (step 4),
duplicate detection (step 5), and the access engine on top. Sources are
added incrementally; per-source statistics are computed once and reused
(Section 4.4); re-analysis after data changes is gated by a change
threshold (Section 6.2); user feedback can remove wrong links
(Section 6.2).
"""

from repro.core.config import AladinConfig
from repro.core.report import IntegrationReport, StepTiming
from repro.core.aladin import Aladin

__all__ = ["Aladin", "AladinConfig", "IntegrationReport", "StepTiming"]
