"""The ALADIN integration system (Figure 1 / Figure 2).

``add_source`` runs the five steps of Section 3 for one new source:

1. data import — a registered parser shreds the raw text into relations;
2. discovery of primary objects and 3. secondary objects — per-source,
   no other source touched (cheap incremental addition);
4. link discovery — the new source against all previously added sources,
   reusing their cached statistics;
5. duplicate detection — the new source's primary objects against every
   existing source's primary objects; duplicates are flagged links.

Everything discovered lands in the metadata repository; browsing,
searching, and querying run on top of it.

Orchestration runs on the execution subsystem (:mod:`repro.exec`): each
``add_source`` is a task graph (structure discovery → registration →
{link fan-out, duplicate fan-out, index update} → checkpoint) whose
fan-outs dispatch to the configured worker pool, and
:meth:`Aladin.integrate_many` pipelines whole batches of independent
sources through the same stages. Results are byte-identical across
backends: fan-out results merge in fixed source order, and repository
writes happen in the exact order of the sequential loop.

The incremental path is engineered to the same cost profile as the batch
path, so the Nth ``add_source`` stays cheap as sources keep arriving:
duplicate detection runs as one chunk per new source on a *session-wide*
:class:`~repro.duplicates.batch.BoundedRecordScorer` whose value-pair
cache persists across maintenance calls, and under a resident executor
(``ExecConfig.resident``) every fan-out — link pair scans, the
``discover_for`` sweep, index tokenization, checkpoint row encoding —
reuses one long-lived worker pool instead of paying per-fan-out pool
spin-up. The engine calls ``refresh_state()`` whenever its registry
mutates, so resident fork workers never scan a stale snapshot.
"""

from __future__ import annotations

import os
import time
import warnings
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.access.browser import Browser
from repro.access.crawler import Crawler
from repro.access.index import InvertedIndex
from repro.access.objects import ObjectWeb
from repro.access.queries import QueryEngine
from repro.access.ranking import PathRanker
from repro.access.search import SearchEngine
from repro.core.config import AladinConfig, config_from_dict
from repro.core.report import IntegrationReport, StepTiming
from repro.dataimport.base import ImportResult
from repro.dataimport import registry
from repro.discovery.pipeline import discover_structure
from repro.duplicates.batch import BoundedRecordScorer
from repro.duplicates.detector import DuplicateConfig, DuplicateDetector
from repro.exec.graph import TaskGraph
from repro.exec.pool import AutoExecutor, Executor, create_executor
from repro.linking.engine import LinkDiscoveryEngine, _pair_task
from repro.linking.model import ObjectLink
from repro.linking.stats import collect_profiles, collect_statistics, statistics_from_profile
from repro.metadata.repository import MetadataRepository
from repro.obs import Observability
from repro.obs.events import (
    CHECKPOINT_COMMITTED,
    COMPACTION_RAN,
    SNAPSHOT_OPENED,
    SOURCE_ADDED,
    SOURCE_REMOVED,
    SOURCE_UPDATED,
)
from repro.persist.lazy import LazySnapshotSession
from repro.persist.lock import SnapshotLockedError
from repro.persist.snapshot import CompactionStats, SnapshotError, SnapshotStore
from repro.relational.database import Database


# ----------------------------------------------------------------------
# worker task bodies (module level: the process backend ships them by
# reference; shared state arrives via fork inheritance, results are the
# only thing pickled back)
# ----------------------------------------------------------------------
def _import_task(_state: Any, spec: Tuple) -> Tuple:
    """Step 1-3 for one source: import raw text, discover its structure.

    Pure per source — nothing here touches another source — which is what
    makes the bulk import stage embarrassingly parallel. Statistics are
    collected in the worker so the database's ColumnStore caches travel
    back warm; the parent's registration then runs entirely on cache hits.
    """
    name, format_name, text, options, discovery_config, declare_constraints = spec
    started = time.perf_counter()
    importer = registry.create(
        format_name, name, declare_constraints=declare_constraints
    )
    for key, value in options.items():
        setattr(importer, key, value)
    result: ImportResult = importer.import_text(text)
    import_seconds = time.perf_counter() - started
    started = time.perf_counter()
    structure = discover_structure(result.database, discovery_config)
    collect_statistics(result.database)  # warm the profile caches for the trip home
    discover_seconds = time.perf_counter() - started
    return (
        result.database,
        structure,
        list(result.warnings),
        result.tables_created,
        result.records_read,
        import_seconds,
        discover_seconds,
    )


def _dup_pair_task(engine: LinkDiscoveryEngine, spec: Tuple[str, str, DuplicateConfig]):
    """Step 5 for one source pair, exactly as the sequential pass runs it."""
    name_a, name_b, config = spec
    started = time.perf_counter()
    detector = DuplicateDetector(config)
    links = detector.detect(
        engine.database_for(name_a),
        engine.structure_for(name_a),
        engine.database_for(name_b),
        engine.structure_for(name_b),
    )
    return links, time.perf_counter() - started


def _contiguous_groups(items: List[str], groups: int) -> List[List[str]]:
    """Split into at most ``groups`` contiguous runs; flattening restores order."""
    count = min(groups, len(items))
    size = -(-len(items) // count)  # ceil division
    return [items[i:i + size] for i in range(0, len(items), size)]


def _run_dup_chunk(
    engine: LinkDiscoveryEngine,
    scorer: Optional[BoundedRecordScorer],
    spec: Tuple[str, Tuple[str, ...], DuplicateConfig],
):
    """Step 5 for one new source against an ordered list of counterparts.

    The shared unit of work of every duplicate pass: all pairs of the
    chunk share one :class:`BoundedRecordScorer` (value-pair cache + exact
    best-match pruning, chunk-local unless ``scorer`` is provided) and the
    new source's record views are built once for the whole chunk — so a
    chunk does substantially less similarity work than the same pairs
    scored independently, with provably identical links. Both task
    adapters below delegate here, so the batch and incremental passes
    cannot diverge in shape.
    """
    name, others, config = spec
    started = time.perf_counter()
    detector = DuplicateDetector(
        config, scorer=scorer if scorer is not None else BoundedRecordScorer()
    )
    links = detector.detect_chunk(
        engine.database_for(name),
        engine.structure_for(name),
        [(engine.database_for(other), engine.structure_for(other)) for other in others],
    )
    return links, time.perf_counter() - started


def _dup_chunk_task(
    engine: LinkDiscoveryEngine, spec: Tuple[str, Tuple[str, ...], DuplicateConfig]
):
    """Chunk task on engine state alone: a fresh chunk-local scorer.

    Used by the batch pipeline's combined fan-out and by the incremental
    pass's multi-core fan-out — the state is the engine itself, the same
    object the link pair scans share, so one resident fork serves both.
    """
    return _run_dup_chunk(engine, None, spec)


def _dup_session_task(
    state: Tuple[LinkDiscoveryEngine, BoundedRecordScorer],
    spec: Tuple[str, Tuple[str, ...], DuplicateConfig],
):
    """Chunk task on the *session* scorer owned by the Aladin instance.

    Its value-pair cache survives across successive ``add_source`` calls,
    so the Nth incremental addition reuses every similarity the first N-1
    already paid for. Dispatched as a single task, which the executor
    runs inline — cache growth therefore lands in the parent.
    """
    engine, scorer = state
    return _run_dup_chunk(engine, scorer, spec)


def _batch_scan_task(engine: LinkDiscoveryEngine, tagged: Tuple[str, Tuple]):
    """Dispatcher for the batch pipeline's single combined fan-out.

    Link pair scans and duplicate chunks only *read* engine state, so one
    pool serves both — one fork instead of two, and no barrier where
    workers idle between the stages.
    """
    tag, payload = tagged
    if tag == "link":
        return _pair_task(engine, payload)
    return _dup_chunk_task(engine, payload)


class Aladin:
    """Almost automatic data integration."""

    def __init__(self, config: Optional[AladinConfig] = None):
        self.config = config or AladinConfig()
        # Telemetry first: every other subsystem this constructor builds
        # gets handed the (possibly null) registry/bus handles.
        self.obs = Observability(self.config.observability)
        self.repository = MetadataRepository()
        self.web = ObjectWeb(self.repository)
        self._executor: Executor = create_executor(self.config.execution)
        self._wire_executor_obs()
        self._engine = LinkDiscoveryEngine(
            config=self.config.linking,
            channels=self.config.channels,
            executor=self._executor,
        )
        self._engine.tracer = self.obs.trace_or_none
        self._databases: Dict[str, Database] = {}
        self._raw_inputs: Dict[str, tuple] = {}  # name -> (format, text, options)
        self._index: Optional[InvertedIndex] = None
        self._store: Optional[SnapshotStore] = None
        self._lazy: Optional[LazySnapshotSession] = None  # set by lazy opens
        self.read_only = False  # True on a lock-degraded read-only open
        # The maintenance session's duplicate scorer: one value-pair cache
        # shared by every incremental add_source of this system's
        # lifetime — LRU-bounded (config.scorer_cache_entries) so a
        # week-long maintenance session holds steady memory. The
        # (engine, scorer) pair is built once so resident fork pools see
        # a stable state identity across fan-outs.
        self._dup_scorer = BoundedRecordScorer(
            max_entries=self.config.scorer_cache_entries
        )
        self._dup_state = (self._engine, self._dup_scorer)
        self.reports: List[IntegrationReport] = []
        if self.obs.enabled:
            self._register_gauges()

    @property
    def executor(self) -> Executor:
        return self._executor

    def configure_execution(
        self,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        resident: Optional[bool] = None,
    ) -> None:
        """Re-point the system at another execution backend at runtime.

        Used by the CLI's ``--backend``/``--workers``/``--resident-pool``
        flags (including on warm-started systems, whose snapshot carried
        the writing system's configuration).
        """
        if backend is not None:
            self.config.execution.backend = backend
        if workers is not None:
            self.config.execution.workers = max(1, int(workers))
        if resident is not None:
            self.config.execution.resident = bool(resident)
        previous = self._executor
        self._executor = create_executor(self.config.execution)
        self._wire_executor_obs()
        self._engine.executor = self._executor
        previous.shutdown()  # release any resident workers of the old pool
        # A warm-started system switching to auto inherits the snapshot's
        # measured workload record.
        self._load_calibration()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _wire_executor_obs(self) -> None:
        """Hand the executor the telemetry handles (None when disabled,
        so the fan-out wrapper short-circuits at one identity check)."""
        self._executor.metrics = self.obs.metrics_or_none
        self._executor.events = self.obs.events_or_none
        self._executor.tracer = self.obs.trace_or_none

    def _register_gauges(self) -> None:
        """Registry views over the pre-existing ad-hoc counters.

        Provider gauges resolve at snapshot time from the live objects,
        so ``Database.column_cache_stats()``, :meth:`hydration_stats`,
        and the session scorer's counters stay the single source of
        truth — the registry adds no double bookkeeping, and the old
        methods keep working unchanged as thin views of the same data.
        """
        reg = self.obs.metrics

        def column_totals() -> Dict[str, int]:
            totals = {"hits": 0, "misses": 0, "pushdown_hits": 0}
            for database in list(self._databases.values()):
                stats = database.column_cache_stats()
                for key in totals:
                    totals[key] += stats.get(key, 0)
            return totals

        reg.gauge("column_cache.hits", provider=lambda: column_totals()["hits"])
        reg.gauge("column_cache.misses", provider=lambda: column_totals()["misses"])
        reg.gauge(
            "column_cache.pushdown_hits",
            provider=lambda: column_totals()["pushdown_hits"],
        )
        reg.gauge("scorer.exact_scores", provider=lambda: self._dup_scorer.exact_scores)
        reg.gauge("scorer.pruned", provider=lambda: self._dup_scorer.pruned)
        reg.gauge("scorer.cache_hits", provider=lambda: self._dup_scorer.cache_hits)
        reg.gauge("scorer.evictions", provider=lambda: self._dup_scorer.evictions)
        reg.gauge(
            "hydration.sources",
            provider=lambda: self.hydration_stats()["sources"],
        )
        reg.gauge(
            "hydration.hydrated_sources",
            provider=lambda: len(self.hydration_stats()["hydrated"]),
        )
        reg.gauge(
            "hydration.resident_bytes",
            provider=lambda: self.hydration_stats()["resident_bytes"] or 0,
        )
        reg.gauge(
            "hydration.pushdown_hits",
            provider=lambda: self.hydration_stats()["pushdown_hits"],
        )
        reg.gauge(
            "pool.resident_spins",
            provider=lambda: getattr(self._executor, "pools_started", 0),
        )
        reg.gauge(
            "pool.resident_forks",
            provider=lambda: getattr(self._executor, "pools_forked", 0),
        )

    def metrics(self) -> Dict[str, Any]:
        """One structured snapshot of every counter, gauge, and histogram.

        ``{"counters": ..., "gauges": ..., "histograms": ...}`` — stage
        durations (``stage.*``), graph node timings (``graph.*``), pool
        fan-out/utilization (``pool.*``), persistence latencies
        (``persist.*``), cache/scorer/hydration views, and the auto
        backend's routing counters (``auto.*``). Empty when observability
        is disabled. JSON-safe; the README documents the catalog.
        """
        return self.obs.metrics.snapshot()

    def traces(self) -> List[Dict[str, Any]]:
        """The retained span trees, one entry per top-level operation.

        ``[{"trace_id": ..., "root": op-name, "spans": [span dicts]}]``
        in operation order — every ``add_source``/``integrate_many``/
        ``open``/search/checkpoint of this session as a connected tree
        of ``graph.*``/``fanout.*``/``task`` spans (worker task spans
        included, re-parented from thread and fork pools).  Empty when
        observability is disabled.  ``repro trace`` renders this via
        :func:`repro.obs.trace.render_spans`.
        """
        return self.obs.trace.traces()

    def _record_report(self, report: IntegrationReport) -> None:
        """Fold one integration report's step timings into the registry."""
        metrics = self.obs.metrics_or_none
        if metrics is None:
            return
        for step in report.steps:
            metrics.histogram(f"stage.{step.step}").observe(step.seconds)

    def _finish_integration(self, report: IntegrationReport) -> None:
        """Telemetry tail of one integrated source, on either pipeline path."""
        self._record_report(report)
        self.obs.events.emit(
            SOURCE_ADDED,
            source=report.source_name,
            links=report.step("link_discovery").counts["object_links"],
            duplicates=report.step("duplicate_detection").counts[
                "duplicates_flagged"
            ],
            seconds=report.total_seconds,
        )

    # -- workload calibration sidecar ----------------------------------
    def _calibration_path(self) -> Optional[str]:
        if self._store is None or not isinstance(self._executor, AutoExecutor):
            return None
        return f"{self._store.path}.calibration.json"

    def _load_calibration(self) -> None:
        """Adopt the snapshot's measured workload record (auto backend).

        Missing sidecar -> the executor keeps (or starts) an in-memory
        record and explores; corrupt sidecar -> same, by
        :meth:`WorkloadCalibration.load`'s contract.
        """
        path = self._calibration_path()
        if path is None:
            return
        if os.path.exists(path):
            self._executor.load_calibration(path)

    def _save_calibration(self) -> None:
        """Persist the measured workload record next to the snapshot.

        An empty record is never written: a session that measured nothing
        must not clobber the sidecar a previous session earned.
        """
        path = self._calibration_path()
        if path is None or self.read_only or self._executor.calibration.empty:
            return
        try:
            self._executor.save_calibration(path)
        except OSError as exc:
            warnings.warn(
                f"could not write calibration sidecar {path!r}: {exc}",
                RuntimeWarning,
                stacklevel=3,
            )

    # ------------------------------------------------------------------
    # the five-step pipeline
    # ------------------------------------------------------------------
    def add_source(
        self, name: str, format_name: str, text: str, **import_options
    ) -> IntegrationReport:
        """Integrate one new source from raw text (steps 1-5)."""
        with self.obs.trace.span("op.add_source", source=name, format=format_name):
            return self._add_source_impl(name, format_name, text, import_options)

    def _add_source_impl(
        self,
        name: str,
        format_name: str,
        text: str,
        import_options: Dict[str, Any],
    ) -> IntegrationReport:
        self._fault_all_sources()
        report = IntegrationReport(source_name=name)
        # Step 1: data import.
        started = time.perf_counter()
        importer = registry.create(
            format_name, name, declare_constraints=self.config.declare_constraints
        )
        for key, value in import_options.items():
            setattr(importer, key, value)
        result: ImportResult = importer.import_text(text)
        report.warnings.extend(result.warnings)
        report.steps.append(
            StepTiming(
                "import",
                time.perf_counter() - started,
                {"tables": result.tables_created, "records": result.records_read},
            )
        )
        self._raw_inputs[name] = (format_name, text, import_options)
        self._integrate_database(result.database, report)
        return report

    def add_database(self, database: Database) -> IntegrationReport:
        """Integrate a source already available as a relational database."""
        with self.obs.trace.span("op.add_database", source=database.name):
            self._fault_all_sources()
            report = IntegrationReport(source_name=database.name)
            report.steps.append(
                StepTiming(
                    "import",
                    0.0,
                    {
                        "tables": len(database.table_names()),
                        "records": database.total_rows(),
                    },
                )
            )
            self._integrate_database(database, report)
            return report

    def integrate_many(self, sources: Iterable[Tuple]) -> List[IntegrationReport]:
        """Integrate a batch of independent sources through one pipeline.

        ``sources`` is an iterable of ``(name, format_name, text)`` or
        ``(name, format_name, text, import_options)`` tuples. The batch
        runs in four scheduled stages:

        1. *import + structure discovery* — per-source and pure, fanned
           across the worker pool;
        2. *registration* — ordered and sequential (shared state);
        3. *link scans and duplicate chunks* — every pair of the batch in
           two pool fan-outs; duplicate chunks share a
           :class:`BoundedRecordScorer` per new source;
        4. *stores, index updates, checkpoints* — applied strictly in
           batch order.

        The resulting repository, object web, and index are byte-identical
        to calling :meth:`add_source` once per tuple in the same order —
        that is the contract the determinism tests pin down.

        The batch is atomic: if any stage fails (a worker dying mid
        fan-out included), every source of the batch is unwound via
        :meth:`remove_source` before the error propagates, so the system
        is left exactly as before the call and the batch can be retried.

        Report semantics: per-source ``StepTiming`` values in batch
        reports are seconds spent *inside the worker tasks* (work time).
        Under parallel execution they overlap, so their sum can exceed —
        and the batch wall clock can undercut — the equivalent sequential
        run; compare wall clock via ``BENCH_parallel.json``, not by
        summing report steps.
        """
        sources = list(sources)
        with self.obs.trace.span(
            "op.integrate_many", sources=len(sources), backend=self._executor.name
        ):
            return self._integrate_many_impl(sources)

    def _integrate_many_impl(
        self, sources: List[Tuple]
    ) -> List[IntegrationReport]:
        self._fault_all_sources()
        specs: List[Tuple[str, str, str, Dict[str, Any]]] = []
        for item in sources:
            if len(item) == 3:
                name, format_name, text = item
                options: Dict[str, Any] = {}
            else:
                name, format_name, text, options = item
                options = dict(options)
            specs.append((name, format_name, text, options))
        names = [spec[0] for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("integrate_many got duplicate source names")
        for name in names:
            if self.repository.has_source(name):
                raise ValueError(f"source {name!r} already integrated")
        if not specs:
            return []
        existing = self._engine.source_names()  # sorted, pre-batch

        # Stage 1: parallel import + discovery (pure per source).
        import_items = [
            (name, format_name, text, options,
             self.config.discovery, self.config.declare_constraints)
            for name, format_name, text, options in specs
        ]
        imported = self._executor.map_ordered(
            _import_task,
            import_items,
            labels=[f"import:{name}" for name in names],
        )

        registered: List[str] = []
        try:
            return self._integrate_batch(specs, names, existing, imported, registered)
        except BaseException:
            # Unwind every batch source that made it into shared state —
            # half-registered ones included — so the failure leaves the
            # in-memory system as before the call and the batch is
            # retryable as-is. (An attached snapshot store is scrubbed
            # best-effort: if the store itself is what failed, its slices
            # may need a fresh save once the store is healthy again.)
            for name in reversed(registered):
                self._unregister_source_state(name)
            raise

    def _integrate_batch(
        self,
        specs: List[Tuple[str, str, str, Dict[str, Any]]],
        names: List[str],
        existing: List[str],
        imported: List[Tuple],
        registered: List[str],
    ) -> List[IntegrationReport]:
        # Stage 2: ordered registration (engine, repository, object web).
        reports: List[IntegrationReport] = []
        for (name, format_name, text, options), result in zip(specs, imported):
            (database, structure, warnings, tables_created, records_read,
             import_seconds, discover_seconds) = result
            report = IntegrationReport(source_name=name)
            report.warnings.extend(warnings)
            report.steps.append(
                StepTiming(
                    "import",
                    import_seconds,
                    {"tables": tables_created, "records": records_read},
                )
            )
            self._describe_structure(report, structure, discover_seconds)
            registered.append(name)  # before: a partial registration must unwind too
            self._register_source_state(database, structure)
            self._raw_inputs[name] = (format_name, text, options)
            reports.append(report)

        # Stage 3: every link-discovery pair scan and duplicate chunk of
        # the batch in ONE fan-out — both only read engine state, so one
        # pool serves both (a single fork, no inter-stage barrier).
        # Source k targets exactly what a sequential loop would have
        # registered before it: the pre-batch sources plus the batch
        # sources ahead of it, in sorted order.
        per_source_targets = [
            sorted(existing + names[:position]) for position in range(len(names))
        ]
        per_source_specs = [
            self._engine.pair_specs(name, against=targets)
            for name, targets in zip(names, per_source_targets)
        ]
        link_specs = [
            spec for source_specs in per_source_specs for spec in source_specs
        ]
        tagged = [("link", spec) for spec in link_specs]
        labels = [f"link:{mode}:{a}->{b}" for mode, a, b in link_specs]
        if self.config.detect_duplicates:
            tagged.extend(
                ("dup", (name, tuple(targets), self.config.duplicates))
                for name, targets in zip(names, per_source_targets)
            )
            labels.extend(f"duplicates:{name}" for name in names)
        scan_results = self._executor.map_ordered(
            _batch_scan_task,
            tagged,
            state=self._engine,
            labels=labels,
            # One combined fan-out mixes link scans and duplicate chunks:
            # meter (and auto-calibrate) it as its own stage kind rather
            # than whichever label happens to come first.
            stage="batch_scan",
        )
        link_results = scan_results[: len(link_specs)]
        dup_results: List[Optional[Tuple[List[List[ObjectLink]], float]]]
        if self.config.detect_duplicates:
            dup_results = scan_results[len(link_specs):]
        else:
            dup_results = [None] * len(names)

        # Stage 4: ordered stores, index updates, and checkpoints — the
        # exact write order of the sequential loop.
        offset = 0
        for position, (name, report) in enumerate(zip(names, reports)):
            source_specs = per_source_specs[position]
            source_results = link_results[offset:offset + len(source_specs)]
            offset += len(source_specs)
            links = self._engine.merge_pair_results(source_results)
            for attribute_link in links.attribute_links:
                self.repository.add_attribute_link(attribute_link)
            stored = self.repository.add_object_links(links.object_links)
            report.steps.append(
                StepTiming(
                    "link_discovery",
                    sum(seconds for _links, _count, seconds in source_results),
                    {
                        "attribute_links": len(links.attribute_links),
                        "object_links": stored,
                    },
                )
            )
            flagged = 0
            duplicate_seconds = 0.0
            if dup_results[position] is not None:
                link_lists, duplicate_seconds = dup_results[position]
                flagged = sum(
                    self.repository.add_object_links(link_list)
                    for link_list in link_lists
                )
            report.steps.append(
                StepTiming(
                    "duplicate_detection",
                    duplicate_seconds,
                    {"duplicates_flagged": flagged},
                )
            )
            self._index_add_source(name)
            self._checkpoint(name)
            self._finish_integration(report)
        self.reports.extend(reports)
        return reports

    def _register_source_state(self, database: Database, structure) -> None:
        """Install one discovered source into every shared structure.

        Statistics are computed once here and reused for every later
        source addition (Section 4.4); the repository additionally keeps
        the storage-level ColumnProfile objects, so no later step
        re-derives per-column aggregates from raw rows. Both integration
        paths (incremental graph and batch pipeline) go through this one
        helper so they cannot diverge.
        """
        statistics = self._engine.register_source(database, structure)
        samples, row_counts = self._data_snapshot(database)
        self.repository.register_source(
            structure, statistics, samples, row_counts,
            profiles=collect_profiles(database),
        )
        self._databases[database.name] = database
        self.web.attach_database(database.name, database)

    def _unregister_source_state(self, name: str) -> None:
        """Best-effort unwind of one (possibly partially) registered source.

        Used by the batch failure path: each subsystem is scrubbed
        independently and cleanup errors are swallowed so the *original*
        failure propagates and the unwind always reaches every source.
        """
        for cleanup in (
            lambda: self.repository.has_source(name)
            and self.repository.remove_source(name),
            lambda: name in self._engine.source_names()
            and self._engine.deregister_source(name),
            lambda: self._databases.pop(name, None),
            lambda: self._raw_inputs.pop(name, None),
            lambda: self.web.detach_database(name),
            lambda: self._index is not None and self._index.remove_source(name),
            lambda: self._store is not None and self._store.checkpoint_remove(name),
        ):
            try:
                cleanup()
            except Exception:  # noqa: BLE001 - the original error must win
                continue

    @staticmethod
    def _describe_structure(report: IntegrationReport, structure, seconds: float) -> None:
        """The discover-step report entry, shared by both integration paths."""
        report.primary_relation = structure.primary_relation
        report.steps.append(
            StepTiming(
                "discover_structure",
                seconds,
                {
                    "unique_attributes": len(structure.unique_attributes),
                    "accession_candidates": len(structure.accession_candidates),
                    "relationships": len(structure.relationships),
                    "paths": sum(len(p) for p in structure.secondary_paths.values()),
                },
            )
        )
        if structure.primary_relation is None:
            report.warnings.append(
                f"no primary relation found for {report.source_name!r}; objects "
                "of this source cannot anchor links"
            )

    def _data_snapshot(self, database: Database):
        """(sample rows, row counts) stored alongside a source's record."""
        samples = {
            table: [database.table(table).row_at(i)
                    for i in range(min(self.config.sample_rows_per_table,
                                       len(database.table(table))))]
            for table in database.table_names()
        }
        row_counts = {t: len(database.table(t)) for t in database.table_names()}
        return samples, row_counts

    def _integrate_database(self, database: Database, report: IntegrationReport) -> None:
        """Steps 2-5 as a task graph on the configured executor.

        Stage order (and therefore every repository write) is fixed by the
        dependency edges; under the thread backend independent stages
        overlap — the index update runs off the link/duplicate critical
        path — and under any backend the two fan-outs (pair scans,
        duplicate pairs) dispatch to the worker pool.
        """
        name = database.name
        graph = TaskGraph()

        def run_discover(_results):
            # Steps 2+3: primary and secondary discovery (single
            # processing step, Section 3); per-source, nothing else read.
            started = time.perf_counter()
            structure = discover_structure(database, self.config.discovery)
            return structure, time.perf_counter() - started

        def run_register(results):
            structure, _seconds = results["discover_structure"]
            self._register_source_state(database, structure)

        def run_links(_results):
            # Step 4: link discovery against all existing sources, fanned
            # across the worker pool in fixed pair order.
            started = time.perf_counter()
            links = self._engine.discover_for(name)
            return links, time.perf_counter() - started

        def run_store_links(results):
            links, _seconds = results["link_discovery"]
            for attribute_link in links.attribute_links:
                self.repository.add_attribute_link(attribute_link)
            return self.repository.add_object_links(links.object_links)

        def run_duplicates(_results):
            # Step 5: duplicate detection against every existing source,
            # one worker task per source pair.
            started = time.perf_counter()
            link_lists = self._detect_duplicates_for(name)
            return link_lists, time.perf_counter() - started

        def run_store_duplicates(results):
            link_lists, _seconds = results["duplicate_detection"]
            return sum(
                self.repository.add_object_links(links) for links in link_lists
            )

        def run_index(_results):
            # Incremental index maintenance: existing pages are untouched
            # by a new source (links live in the repository, not in page
            # text), so only the new source's pages are crawled/indexed.
            self._index_add_source(name)

        def run_checkpoint(_results):
            self._checkpoint(name)

        graph.add("discover_structure", run_discover)
        graph.add("register", run_register, deps=("discover_structure",))
        graph.add("link_discovery", run_links, deps=("register",))
        graph.add("store_links", run_store_links, deps=("link_discovery",))
        graph.add("duplicate_detection", run_duplicates, deps=("register",))
        # Duplicates land after the discovered links, as in the serial
        # loop, so repository ordering is backend-independent.
        graph.add(
            "store_duplicates",
            run_store_duplicates,
            deps=("store_links", "duplicate_detection"),
        )
        graph.add("index_update", run_index, deps=("register",))
        graph.add(
            "checkpoint", run_checkpoint, deps=("store_duplicates", "index_update")
        )
        results = graph.run(
            self._executor,
            metrics=self.obs.metrics_or_none,
            tracer=self.obs.trace_or_none,
        )

        structure, discover_seconds = results["discover_structure"]
        self._describe_structure(report, structure, discover_seconds)
        links, link_seconds = results["link_discovery"]
        report.steps.append(
            StepTiming(
                "link_discovery",
                link_seconds,
                {
                    "attribute_links": len(links.attribute_links),
                    "object_links": results["store_links"],
                },
            )
        )
        _link_lists, duplicate_seconds = results["duplicate_detection"]
        report.steps.append(
            StepTiming(
                "duplicate_detection",
                duplicate_seconds,
                {"duplicates_flagged": results["store_duplicates"]},
            )
        )
        self.reports.append(report)
        self._finish_integration(report)

    def _detect_duplicates_for(self, name: str) -> List[List[ObjectLink]]:
        """Step-5 for one new source against every existing source.

        Returns one link list per counterpart in repository order; the
        caller stores them in that order, matching the sequential pass.

        The default path scores the whole counterpart chunk through the
        session-wide :class:`BoundedRecordScorer` (exact pruning plus a
        value-pair cache that persists across ``add_source`` calls), the
        same scorer shape the batch pipeline uses — so the Nth incremental
        addition does bounded work instead of re-scoring every candidate
        pair from scratch. ``config.incremental_shared_scorer = False``
        restores the pre-scorer per-pair fan-out for benchmarking.
        """
        if not self.config.detect_duplicates:
            return []
        others = [o for o in self.repository.source_names() if o != name]
        if not others:
            return []
        if not self.config.incremental_shared_scorer:
            specs = [(name, other, self.config.duplicates) for other in others]
            labels = [f"duplicates:{name}<->{other}" for other in others]
            results = self._executor.map_ordered(
                _dup_pair_task, specs, state=self._engine, labels=labels
            )
            return [links for links, _seconds in results]
        if self._executor.cpu_parallel and self._executor.workers > 1 and len(others) > 1:
            # A backend with real CPU parallelism: worker parallelism
            # beats the session cache (whose growth could not cross fork
            # boundaries from workers anyway), so fan contiguous
            # counterpart chunks across the pool, each with a chunk-local
            # scorer — the exact shape of the batch pipeline's duplicate
            # stage, byte-identical results in counterpart order.
            groups = _contiguous_groups(others, self._executor.workers)
            specs = [(name, tuple(group), self.config.duplicates) for group in groups]
            labels = [
                f"duplicates:{name}:{group[0]}..{group[-1]}" for group in groups
            ]
            results = self._executor.map_ordered(
                _dup_chunk_task, specs, state=self._engine, labels=labels
            )
            return [links for link_lists, _seconds in results for links in link_lists]
        spec = (name, tuple(others), self.config.duplicates)
        results = self._executor.map_ordered(
            _dup_session_task,
            [spec],
            state=self._dup_state,
            labels=[f"duplicates:{name}"],
        )
        link_lists, _seconds = results[0]
        return link_lists

    # ------------------------------------------------------------------
    # data changes and feedback (Section 6.2)
    # ------------------------------------------------------------------
    def update_source(self, name: str, text: str) -> Optional[IntegrationReport]:
        """Re-import a changed source; re-analyze only past the threshold.

        "In principle, all links must be recomputed even if only a small
        fraction of the data ... changes. This re-computation is clearly
        infeasible. We envisage a threshold on the number of changes."
        Below the threshold the raw data is swapped in place and existing
        links are kept; above it the source is dropped and re-integrated.
        """
        with self.obs.trace.span("op.update_source", source=name):
            return self._update_source_impl(name, text)

    def _update_source_impl(self, name: str, text: str) -> Optional[IntegrationReport]:
        self._fault_all_sources()
        if name not in self._raw_inputs:
            raise KeyError(f"source {name!r} was not added from raw text")
        format_name, _old_text, options = self._raw_inputs[name]
        importer = registry.create(
            format_name, name, declare_constraints=self.config.declare_constraints
        )
        for key, value in options.items():
            setattr(importer, key, value)
        new_result = importer.import_text(text)
        old_rows = self._databases[name].total_rows()
        new_rows = new_result.database.total_rows()
        change_fraction = abs(new_rows - old_rows) / max(old_rows, 1)
        if change_fraction <= self.config.reanalysis_change_threshold:
            # Swap data, keep structure and links (documented
            # approximation) — but refresh every cached view of the data:
            # the engine's statistics, the repository's profiles/samples,
            # and the swapped source's slice of the search index.
            database = new_result.database
            self._databases[name] = database
            self.web.attach_database(name, database)
            self._raw_inputs[name] = (format_name, text, options)
            statistics = self._engine.refresh_source(database)
            samples, row_counts = self._data_snapshot(database)
            self.repository.refresh_source_data(
                name,
                statistics=statistics,
                sample_rows=samples,
                row_counts=row_counts,
                profiles=collect_profiles(database),
            )
            if self._index is not None:
                self._index.remove_source(name)
                self._index_add_source(name)
            self._checkpoint(name)
            self.obs.events.emit(
                SOURCE_UPDATED,
                source=name,
                change_fraction=change_fraction,
                reanalyzed=False,
            )
            return None
        self.remove_source(name)
        report = self.add_source(name, format_name, text, **options)
        self.obs.events.emit(
            SOURCE_UPDATED,
            source=name,
            change_fraction=change_fraction,
            reanalyzed=True,
        )
        return report

    def remove_source(self, name: str) -> None:
        """Drop one source incrementally: nothing else is re-analyzed.

        The engine deregisters the source (surviving sources keep their
        cached statistics), the object web detaches it, and the search
        index drops its documents in place — no re-registration, no
        re-crawl of surviving sources.
        """
        with self.obs.trace.span("op.remove_source", source=name):
            self._remove_source_impl(name)

    def _remove_source_impl(self, name: str) -> None:
        self._fault_all_sources()
        self.repository.remove_source(name)
        if self._lazy is not None:
            self._lazy.forget(name)
        self._databases.pop(name, None)
        self._raw_inputs.pop(name, None)
        if name in self._engine.source_names():
            self._engine.deregister_source(name)
        self.web.detach_database(name)
        if self._index is not None:
            self._index.remove_source(name)
        if self._store is not None:
            started = time.perf_counter()
            with self.obs.trace.span("persist.checkpoint", source=name, op="remove"):
                self._store.checkpoint_remove(name)
            seconds = time.perf_counter() - started
            self.obs.metrics.histogram("persist.checkpoint_seconds").observe(seconds)
            self.obs.events.emit(
                CHECKPOINT_COMMITTED, source=name, op="remove", seconds=seconds
            )
            # Removal is the churn-heaviest maintenance op: the dropped
            # slice's pages are all dead weight until a compaction.
            self._auto_compact()
        self.obs.events.emit(SOURCE_REMOVED, source=name)

    def remove_link(self, link: ObjectLink) -> bool:
        """User feedback: delete one wrong link (Section 6.2)."""
        removed = self.repository.remove_object_link(link)
        if removed and self._store is not None:
            self._store.remove_object_link(link)
        return removed

    # ------------------------------------------------------------------
    # access modes
    # ------------------------------------------------------------------
    def browser(self) -> Browser:
        return Browser(self.web, tracer=self.obs.trace_or_none)

    def search_engine(self) -> SearchEngine:
        if self._index is None:
            index = InvertedIndex()
            index.add_pages(
                Crawler(self.web).crawl(follow_links=False),
                executor=self._executor,
            )
            self._index = index
            if self._store is not None:
                try:
                    self._store.write_index(index)
                except SnapshotError:
                    # A read-only snapshot can still serve searches; the
                    # index stays in memory and the next real maintenance
                    # write will surface the problem loudly.
                    pass
        return SearchEngine(self._index, tracer=self.obs.trace_or_none)

    def _fault_all_sources(self) -> None:
        """Maintenance guard under a lazy open: mutate fully resident state.

        Every mutating entry point calls this first, so link discovery
        sees all sources' statistics and no stub can resurrect stale rows
        after an in-place change. Eager systems: no-op.
        """
        if self._lazy is not None:
            self._lazy.hydrate()
            self._lazy.note_maintenance()

    def release_source(self, name: str) -> bool:
        """Evict one hydrated source back to its stub (lazy opens only).

        The rows, ColumnStore caches, and engine statistics of ``name``
        are dropped; the next touch faults them back in from the
        snapshot. Bounds resident memory in long-lived read-only
        processes. Returns False if the source was not hydrated; raises
        :class:`SnapshotError` on an eager system (memory is the only
        copy there) or after maintenance has written.
        """
        if self._lazy is None:
            raise SnapshotError(
                "release_source requires a lazily opened snapshot "
                "(Aladin.open(..., lazy=True))"
            )
        return self._lazy.release(name)

    def hydration_stats(self) -> Dict[str, Any]:
        """Which sources are resident, their bytes, and pushdown hits."""
        if self._lazy is not None:
            return self._lazy.stats()
        return {
            "lazy": False,
            "sources": len(self._databases),
            "hydrated": sorted(self._databases),
            "resident_bytes": None,  # eager systems do not meter payloads
            "pushdown_hits": 0,
            "per_source": {
                name: {
                    "hydrated": True,
                    "resident_bytes": 0,
                    "pushdown_hits": 0,
                }
                for name in sorted(self._databases)
            },
        }

    def _index_add_source(self, name: str) -> None:
        """Crawl and index only ``name``'s pages into the existing index."""
        if self._index is None:
            return  # never built: the first search_engine() call will
        seeds = [(name, accession) for accession in self.web.accessions(name)]
        self._index.add_pages(
            Crawler(self.web).crawl(seeds=seeds, follow_links=False),
            executor=self._executor,
        )

    # ------------------------------------------------------------------
    # persistence (snapshot save / warm-start open)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Serialize the entire integrated state to a snapshot file.

        The store stays attached afterwards: every later ``add_source`` /
        ``update_source`` / ``remove_source`` checkpoints just that
        source's slice of the snapshot in place, so the file tracks the
        live system without full rewrites.

        Attaching takes the snapshot's advisory writer lock; if another
        *process* holds it, this raises
        :class:`~repro.persist.lock.SnapshotLockedError` (after waiting
        ``persist.lock_timeout`` seconds under the ``"block"`` policy).
        """
        with self.obs.trace.span("op.save", path=str(path)):
            self._fault_all_sources()
            store = SnapshotStore(path)
            store.tracer = self.obs.trace_or_none
            policy = self.config.persist
            timeout = policy.lock_timeout if policy.lock_policy == "block" else 0.0
            store.attach_writer(timeout=timeout)
            try:
                store.write_full(self)
            except BaseException:
                store.detach_writer()
                raise
            if self._store is not None and self._store is not store:
                self._store.detach_writer()
            self._store = store
            self.read_only = False
            # Auto backend: park the session's measured workload record
            # next to the snapshot so the next open starts calibrated.
            self._save_calibration()

    @classmethod
    def open(
        cls,
        path,
        config: Optional[AladinConfig] = None,
        *,
        attach: bool = True,
        read_only: bool = False,
        lock_timeout: Optional[float] = None,
        force_lock: bool = False,
        lazy: Optional[bool] = None,
    ) -> "Aladin":
        """Warm-start a system from a snapshot — no re-integration.

        Nothing is re-imported, re-discovered, re-linked, or re-indexed:
        rows bulk-load with their ColumnStore caches materialized, the
        persisted ColumnProfiles become the profile caches, the engine is
        rehydrated with statistics rebuilt arithmetically from those
        profiles, links land back in the repository, and the inverted
        index is restored posting by posting. The snapshot stays attached
        for incremental checkpoints, exactly as after :meth:`save`.

        By default the open is *lazy*: only the manifest — version,
        per-source structure, profiles, samples, row counts — is read up
        front (O(manifest), not O(rows)), and each source's tables fault
        in on first touch; point lookups and single-table SELECTs against
        untouched sources are pushed down to SQL on the snapshot's value
        index. Lazy and eager systems are observably identical — the
        differential suite pins rows, links, postings, and BM25 rankings
        byte-for-byte — lazy is purely a when-to-load decision. Pass
        ``lazy=False`` (or set ``persist.lazy_open = False``, or
        ``REPRO_PERSIST_LAZY=0``) to materialize everything up front;
        maintenance on a lazy system faults all sources in first, so
        long-lived writers may prefer an eager open.

        Attaching as a writer takes the snapshot's advisory lock. When
        another *process* holds it, ``persist.lock_policy`` decides:
        ``"fail"`` raises :class:`~repro.persist.lock.SnapshotLockedError`
        immediately, ``"block"`` waits up to the timeout, ``"readonly"``
        degrades to a detached system (``read_only`` is then True and no
        maintenance checkpoints reach the file). ``read_only=True`` or
        ``attach=False`` skips the lock and the attachment outright;
        ``lock_timeout`` overrides the policy's wait; ``force_lock``
        breaks an abandoned lock the stale detection cannot prove dead.

        Unless ``config`` overrides it, the configuration the snapshot was
        integrated with is restored too, so later maintenance (update
        thresholds, duplicate detection, importer constraints) behaves
        exactly like the system that wrote the snapshot.
        """
        # Root-span timing starts before the Aladin (and its tracer)
        # exists; the span is recorded after the fact.
        opened_wall = time.time()
        opened = time.perf_counter()
        store = SnapshotStore(path)
        policy = config.persist if config is not None else AladinConfig().persist
        attach_writer = attach and not read_only
        if attach_writer:
            if lock_timeout is None:
                lock_timeout = (
                    policy.lock_timeout if policy.lock_policy == "block" else 0.0
                )
            try:
                store.attach_writer(timeout=lock_timeout, force=force_lock)
            except SnapshotLockedError:
                if policy.lock_policy != "readonly":
                    raise
                attach_writer = False
        lazy_open = policy.lazy_open if lazy is None else lazy
        try:
            # Any failure from here to the end must release the writer
            # lock: nothing else would survive to detach it.
            if lazy_open:
                manifest = store.load_manifest()
                if config is None and manifest.config is not None:
                    config = config_from_dict(manifest.config)
                aladin = cls(config)
                session = LazySnapshotSession(store, manifest)
                session.install(aladin)
                aladin._lazy = session
            else:
                state = store.load_state()
                if config is None and state.config is not None:
                    config = config_from_dict(state.config)
                aladin = cls(config)
                for source in state.sources:
                    statistics = {
                        attr: statistics_from_profile(attr, profile)
                        for attr, profile in source.profiles.items()
                    }
                    aladin._engine.restore_source(
                        source.database, source.structure, statistics
                    )
                    aladin.repository.register_source(
                        source.structure,
                        statistics,
                        source.samples,
                        source.row_counts,
                        profiles=source.profiles,
                    )
                    aladin._databases[source.name] = source.database
                    aladin.web.attach_database(source.name, source.database)
                    if source.format_name is not None:
                        aladin._raw_inputs[source.name] = (
                            source.format_name,
                            source.raw_text,
                            source.import_options,
                        )
                for attribute_link in state.attribute_links:
                    aladin.repository.add_attribute_link(attribute_link)
                aladin.repository.add_object_links(state.object_links)
                aladin._index = state.index
        except BaseException:
            if attach_writer:
                store.detach_writer()
            raise
        aladin._store = store if attach_writer else None
        store.tracer = aladin.obs.trace_or_none
        aladin.read_only = not attach_writer
        aladin._load_calibration()
        aladin.obs.events.emit(
            SNAPSHOT_OPENED,
            path=str(path),
            lazy=lazy_open,
            read_only=aladin.read_only,
            sources=len(aladin.source_names()),
        )
        aladin.obs.trace.record_complete(
            "op.open",
            opened_wall,
            time.perf_counter() - opened,
            path=str(path),
            lazy=lazy_open,
            read_only=aladin.read_only,
            sources=len(aladin.source_names()),
        )
        return aladin

    def detach_store(self) -> None:
        """Stop checkpointing to the attached snapshot (the file remains).

        Releases this system's hold on the snapshot's writer lock, so
        another process can attach.
        """
        if self._store is not None:
            self._store.detach_writer()
        self._store = None

    def compact(self) -> CompactionStats:
        """Compact the attached snapshot now (see ``SnapshotStore.compact``).

        The rewrite is verified against the in-memory state — sources and
        per-source content hashes must match — before the atomic swap.
        """
        if self._store is None:
            raise SnapshotError(
                "no snapshot attached (save or open one first); use "
                "SnapshotStore.compact or `repro compact` for a bare file"
            )
        with self.obs.trace.span("op.compact") as span:
            stats = self._store.compact(self)
            span.set(reclaimed_bytes=stats.reclaimed_bytes)
        self._record_compaction(stats)
        return stats

    def _record_compaction(self, stats: CompactionStats) -> None:
        """Telemetry for one completed compaction (manual or policy-run)."""
        self.obs.metrics.histogram("persist.compaction_seconds").observe(
            stats.seconds
        )
        self.obs.events.emit(
            COMPACTION_RAN,
            bytes_before=stats.bytes_before,
            bytes_after=stats.bytes_after,
            reclaimed_bytes=stats.reclaimed_bytes,
            sources_verified=stats.sources_verified,
            seconds=stats.seconds,
        )

    def close(self) -> None:
        """Release lifecycle resources: the writer lock, resident workers.

        Safe to call more than once; the system stays usable in memory
        (a later :meth:`save` re-attaches, a later fan-out re-creates
        pool workers).
        """
        self._save_calibration()
        self.detach_store()
        if self._lazy is not None:
            self._lazy.close()
        self._executor.shutdown()
        # Flushes the final metrics line into the JSON-lines export sink
        # (if one is configured) and closes it; safe to call repeatedly.
        self.obs.close()

    def _checkpoint(self, name: str) -> None:
        if self._store is not None:
            # The checkpoint's row encoding fans across the same (resident)
            # pool as the pipeline's other stages — no fresh pool spin-up
            # on the maintenance path.
            started = time.perf_counter()
            with self.obs.trace.span("persist.checkpoint", source=name, op="write"):
                self._store.checkpoint_source(self, name, executor=self._executor)
            seconds = time.perf_counter() - started
            self.obs.metrics.histogram("persist.checkpoint_seconds").observe(seconds)
            self.obs.events.emit(
                CHECKPOINT_COMMITTED, source=name, op="write", seconds=seconds
            )
            # Hands-off lifecycle: reclaim checkpoint churn once the
            # policy thresholds say the file carries more dead than live.
            self._auto_compact()

    def _auto_compact(self) -> None:
        """Policy compaction behind a committed maintenance op.

        Contained: by ``compact``'s contract a failure (disk full for
        the rewrite, a refused swap) leaves the original snapshot valid,
        and the maintenance operation that triggered us has already
        committed — so housekeeping trouble is surfaced as a warning,
        never as a failure of the successful foreground call.
        """
        try:
            with self.obs.trace.span("persist.compaction", auto=True) as span:
                stats = self._store.maybe_compact(self, self.config.persist)
                span.set(ran=stats is not None)
            if stats is not None:
                self._record_compaction(stats)
        except Exception as exc:  # noqa: BLE001 - background housekeeping
            warnings.warn(
                f"auto-compaction of snapshot {self._store.path!r} failed "
                f"(the checkpoint itself committed): {exc}",
                RuntimeWarning,
                stacklevel=3,
            )

    def query_engine(self) -> QueryEngine:
        return QueryEngine(self.web)

    def ranker(self, max_length: int = 3) -> PathRanker:
        return PathRanker(self.repository, max_length=max_length)

    # ------------------------------------------------------------------
    def source_names(self) -> List[str]:
        return self.repository.source_names()

    def database(self, name: str) -> Database:
        if self._lazy is not None and name not in self._databases:
            self._lazy.hydrate(name)  # unknown names still KeyError below
        return self._databases[name]

    def summary(self) -> str:
        return self.repository.summary()
