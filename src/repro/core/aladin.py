"""The ALADIN integration system (Figure 1 / Figure 2).

``add_source`` runs the five steps of Section 3 for one new source:

1. data import — a registered parser shreds the raw text into relations;
2. discovery of primary objects and 3. secondary objects — per-source,
   no other source touched (cheap incremental addition);
4. link discovery — the new source against all previously added sources,
   reusing their cached statistics;
5. duplicate detection — the new source's primary objects against every
   existing source's primary objects; duplicates are flagged links.

Everything discovered lands in the metadata repository; browsing,
searching, and querying run on top of it.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.access.browser import Browser
from repro.access.crawler import Crawler
from repro.access.index import InvertedIndex
from repro.access.objects import ObjectWeb
from repro.access.queries import QueryEngine
from repro.access.ranking import PathRanker
from repro.access.search import SearchEngine
from repro.core.config import AladinConfig, config_from_dict
from repro.core.report import IntegrationReport, StepTiming
from repro.dataimport.base import ImportResult
from repro.dataimport import registry
from repro.discovery.pipeline import discover_structure
from repro.duplicates.detector import DuplicateDetector
from repro.linking.engine import LinkDiscoveryEngine
from repro.linking.model import ObjectLink
from repro.linking.stats import collect_profiles, statistics_from_profile
from repro.metadata.repository import MetadataRepository
from repro.persist.snapshot import SnapshotError, SnapshotStore
from repro.relational.database import Database


class Aladin:
    """Almost automatic data integration."""

    def __init__(self, config: Optional[AladinConfig] = None):
        self.config = config or AladinConfig()
        self.repository = MetadataRepository()
        self.web = ObjectWeb(self.repository)
        self._engine = LinkDiscoveryEngine(
            config=self.config.linking, channels=self.config.channels
        )
        self._databases: Dict[str, Database] = {}
        self._raw_inputs: Dict[str, tuple] = {}  # name -> (format, text, options)
        self._index: Optional[InvertedIndex] = None
        self._store: Optional[SnapshotStore] = None
        self.reports: List[IntegrationReport] = []

    # ------------------------------------------------------------------
    # the five-step pipeline
    # ------------------------------------------------------------------
    def add_source(
        self, name: str, format_name: str, text: str, **import_options
    ) -> IntegrationReport:
        """Integrate one new source from raw text (steps 1-5)."""
        report = IntegrationReport(source_name=name)
        # Step 1: data import.
        started = time.perf_counter()
        importer = registry.create(
            format_name, name, declare_constraints=self.config.declare_constraints
        )
        for key, value in import_options.items():
            setattr(importer, key, value)
        result: ImportResult = importer.import_text(text)
        report.warnings.extend(result.warnings)
        report.steps.append(
            StepTiming(
                "import",
                time.perf_counter() - started,
                {"tables": result.tables_created, "records": result.records_read},
            )
        )
        self._raw_inputs[name] = (format_name, text, import_options)
        self._integrate_database(result.database, report)
        return report

    def add_database(self, database: Database) -> IntegrationReport:
        """Integrate a source already available as a relational database."""
        report = IntegrationReport(source_name=database.name)
        report.steps.append(
            StepTiming(
                "import",
                0.0,
                {"tables": len(database.table_names()), "records": database.total_rows()},
            )
        )
        self._integrate_database(database, report)
        return report

    def _data_snapshot(self, database: Database):
        """(sample rows, row counts) stored alongside a source's record."""
        samples = {
            table: [database.table(table).row_at(i)
                    for i in range(min(self.config.sample_rows_per_table,
                                       len(database.table(table))))]
            for table in database.table_names()
        }
        row_counts = {t: len(database.table(t)) for t in database.table_names()}
        return samples, row_counts

    def _integrate_database(self, database: Database, report: IntegrationReport) -> None:
        name = database.name
        # Steps 2+3: primary and secondary discovery (single processing
        # step, Section 3).
        started = time.perf_counter()
        structure = discover_structure(database, self.config.discovery)
        report.primary_relation = structure.primary_relation
        report.steps.append(
            StepTiming(
                "discover_structure",
                time.perf_counter() - started,
                {
                    "unique_attributes": len(structure.unique_attributes),
                    "accession_candidates": len(structure.accession_candidates),
                    "relationships": len(structure.relationships),
                    "paths": sum(len(p) for p in structure.secondary_paths.values()),
                },
            )
        )
        if structure.primary_relation is None:
            report.warnings.append(
                f"no primary relation found for {name!r}; objects of this "
                "source cannot anchor links"
            )
        # Register: statistics are computed once here and reused for every
        # later source addition (Section 4.4). The repository additionally
        # keeps the storage-level ColumnProfile objects, so no later step
        # re-derives per-column aggregates from raw rows.
        statistics = self._engine.register_source(database, structure)
        samples, row_counts = self._data_snapshot(database)
        self.repository.register_source(
            structure, statistics, samples, row_counts,
            profiles=collect_profiles(database),
        )
        self._databases[name] = database
        self.web.attach_database(name, database)
        # Step 4: link discovery against all existing sources.
        started = time.perf_counter()
        links = self._engine.discover_for(name)
        for attribute_link in links.attribute_links:
            self.repository.add_attribute_link(attribute_link)
        stored = self.repository.add_object_links(links.object_links)
        report.steps.append(
            StepTiming(
                "link_discovery",
                time.perf_counter() - started,
                {
                    "attribute_links": len(links.attribute_links),
                    "object_links": stored,
                },
            )
        )
        # Step 5: duplicate detection against every existing source.
        started = time.perf_counter()
        flagged = 0
        if self.config.detect_duplicates:
            detector = DuplicateDetector(self.config.duplicates)
            for other_name in self.repository.source_names():
                if other_name == name:
                    continue
                duplicates = detector.detect(
                    database,
                    self.repository.structure(name),
                    self._databases[other_name],
                    self.repository.structure(other_name),
                )
                flagged += self.repository.add_object_links(duplicates)
        report.steps.append(
            StepTiming(
                "duplicate_detection",
                time.perf_counter() - started,
                {"duplicates_flagged": flagged},
            )
        )
        # Incremental index maintenance: existing pages are untouched by a
        # new source (links live in the repository, not in page text), so
        # only the new source's pages are crawled and indexed.
        self._index_add_source(name)
        self.reports.append(report)
        self._checkpoint(name)

    # ------------------------------------------------------------------
    # data changes and feedback (Section 6.2)
    # ------------------------------------------------------------------
    def update_source(self, name: str, text: str) -> Optional[IntegrationReport]:
        """Re-import a changed source; re-analyze only past the threshold.

        "In principle, all links must be recomputed even if only a small
        fraction of the data ... changes. This re-computation is clearly
        infeasible. We envisage a threshold on the number of changes."
        Below the threshold the raw data is swapped in place and existing
        links are kept; above it the source is dropped and re-integrated.
        """
        if name not in self._raw_inputs:
            raise KeyError(f"source {name!r} was not added from raw text")
        format_name, _old_text, options = self._raw_inputs[name]
        importer = registry.create(
            format_name, name, declare_constraints=self.config.declare_constraints
        )
        for key, value in options.items():
            setattr(importer, key, value)
        new_result = importer.import_text(text)
        old_rows = self._databases[name].total_rows()
        new_rows = new_result.database.total_rows()
        change_fraction = abs(new_rows - old_rows) / max(old_rows, 1)
        if change_fraction <= self.config.reanalysis_change_threshold:
            # Swap data, keep structure and links (documented
            # approximation) — but refresh every cached view of the data:
            # the engine's statistics, the repository's profiles/samples,
            # and the swapped source's slice of the search index.
            database = new_result.database
            self._databases[name] = database
            self.web.attach_database(name, database)
            self._raw_inputs[name] = (format_name, text, options)
            statistics = self._engine.refresh_source(database)
            samples, row_counts = self._data_snapshot(database)
            self.repository.refresh_source_data(
                name,
                statistics=statistics,
                sample_rows=samples,
                row_counts=row_counts,
                profiles=collect_profiles(database),
            )
            if self._index is not None:
                self._index.remove_source(name)
                self._index_add_source(name)
            self._checkpoint(name)
            return None
        self.remove_source(name)
        return self.add_source(name, format_name, text, **options)

    def remove_source(self, name: str) -> None:
        """Drop one source incrementally: nothing else is re-analyzed.

        The engine deregisters the source (surviving sources keep their
        cached statistics), the object web detaches it, and the search
        index drops its documents in place — no re-registration, no
        re-crawl of surviving sources.
        """
        self.repository.remove_source(name)
        self._databases.pop(name, None)
        self._raw_inputs.pop(name, None)
        if name in self._engine.source_names():
            self._engine.deregister_source(name)
        self.web.detach_database(name)
        if self._index is not None:
            self._index.remove_source(name)
        if self._store is not None:
            self._store.checkpoint_remove(name)

    def remove_link(self, link: ObjectLink) -> bool:
        """User feedback: delete one wrong link (Section 6.2)."""
        removed = self.repository.remove_object_link(link)
        if removed and self._store is not None:
            self._store.remove_object_link(link)
        return removed

    # ------------------------------------------------------------------
    # access modes
    # ------------------------------------------------------------------
    def browser(self) -> Browser:
        return Browser(self.web)

    def search_engine(self) -> SearchEngine:
        if self._index is None:
            index = InvertedIndex()
            for page in Crawler(self.web).crawl(follow_links=False):
                index.add_page(page)
            self._index = index
            if self._store is not None:
                try:
                    self._store.write_index(index)
                except SnapshotError:
                    # A read-only snapshot can still serve searches; the
                    # index stays in memory and the next real maintenance
                    # write will surface the problem loudly.
                    pass
        return SearchEngine(self._index)

    def _index_add_source(self, name: str) -> None:
        """Crawl and index only ``name``'s pages into the existing index."""
        if self._index is None:
            return  # never built: the first search_engine() call will
        seeds = [(name, accession) for accession in self.web.accessions(name)]
        for page in Crawler(self.web).crawl(seeds=seeds, follow_links=False):
            self._index.add_page(page)

    # ------------------------------------------------------------------
    # persistence (snapshot save / warm-start open)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Serialize the entire integrated state to a snapshot file.

        The store stays attached afterwards: every later ``add_source`` /
        ``update_source`` / ``remove_source`` checkpoints just that
        source's slice of the snapshot in place, so the file tracks the
        live system without full rewrites.
        """
        store = SnapshotStore(path)
        store.write_full(self)
        self._store = store

    @classmethod
    def open(cls, path, config: Optional[AladinConfig] = None) -> "Aladin":
        """Warm-start a system from a snapshot — no re-integration.

        Nothing is re-imported, re-discovered, re-linked, or re-indexed:
        rows bulk-load with their ColumnStore caches materialized, the
        persisted ColumnProfiles become the profile caches, the engine is
        rehydrated with statistics rebuilt arithmetically from those
        profiles, links land back in the repository, and the inverted
        index is restored posting by posting. The snapshot stays attached
        for incremental checkpoints, exactly as after :meth:`save`.

        Unless ``config`` overrides it, the configuration the snapshot was
        integrated with is restored too, so later maintenance (update
        thresholds, duplicate detection, importer constraints) behaves
        exactly like the system that wrote the snapshot.
        """
        store = SnapshotStore(path)
        state = store.load_state()
        if config is None and state.config is not None:
            config = config_from_dict(state.config)
        aladin = cls(config)
        for source in state.sources:
            statistics = {
                attr: statistics_from_profile(attr, profile)
                for attr, profile in source.profiles.items()
            }
            aladin._engine.restore_source(
                source.database, source.structure, statistics
            )
            aladin.repository.register_source(
                source.structure,
                statistics,
                source.samples,
                source.row_counts,
                profiles=source.profiles,
            )
            aladin._databases[source.name] = source.database
            aladin.web.attach_database(source.name, source.database)
            if source.format_name is not None:
                aladin._raw_inputs[source.name] = (
                    source.format_name,
                    source.raw_text,
                    source.import_options,
                )
        for attribute_link in state.attribute_links:
            aladin.repository.add_attribute_link(attribute_link)
        aladin.repository.add_object_links(state.object_links)
        aladin._index = state.index
        aladin._store = store
        return aladin

    def detach_store(self) -> None:
        """Stop checkpointing to the attached snapshot (the file remains)."""
        self._store = None

    def _checkpoint(self, name: str) -> None:
        if self._store is not None:
            self._store.checkpoint_source(self, name)

    def query_engine(self) -> QueryEngine:
        return QueryEngine(self.web)

    def ranker(self, max_length: int = 3) -> PathRanker:
        return PathRanker(self.repository, max_length=max_length)

    # ------------------------------------------------------------------
    def source_names(self) -> List[str]:
        return self.repository.source_names()

    def database(self, name: str) -> Database:
        return self._databases[name]

    def summary(self) -> str:
        return self.repository.summary()
