"""System-wide configuration."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict

from repro.discovery.model import DiscoveryConfig
from repro.duplicates.detector import DuplicateConfig
from repro.exec.pool import ExecConfig
from repro.linking.engine import LinkChannels
from repro.linking.model import LinkConfig
from repro.obs import ObsConfig
from repro.persist.snapshot import PersistConfig


@dataclass
class AladinConfig:
    """All knobs of the pipeline in one place.

    Every threshold the paper leaves unspecified lives in one of the
    sub-configs (DESIGN.md Section 6 records the calibration).
    """

    discovery: DiscoveryConfig = field(default_factory=DiscoveryConfig)
    linking: LinkConfig = field(default_factory=LinkConfig)
    channels: LinkChannels = field(default_factory=LinkChannels)
    duplicates: DuplicateConfig = field(default_factory=DuplicateConfig)
    # Execution backend for pair fan-outs and the pipelined add_source
    # graph: "serial" (default), "thread", or "process"; defaults honor
    # REPRO_EXEC_BACKEND / REPRO_EXEC_WORKERS so a whole run can switch
    # backends from the environment.
    execution: ExecConfig = field(default_factory=ExecConfig)
    # Snapshot lifecycle: advisory writer-lock policy, the online
    # auto-compaction thresholds, and whether `Aladin.open` hydrates
    # lazily (`lazy_open`, default on, env REPRO_PERSIST_LAZY). A host
    # property like `execution` — it is never restored from snapshots.
    persist: PersistConfig = field(default_factory=PersistConfig)
    # Telemetry: the metrics registry + lifecycle event bus (default on,
    # REPRO_OBS=0 disables; REPRO_OBS_EXPORT names a JSON-lines sink).
    # A host property like `execution` — never restored from snapshots.
    observability: ObsConfig = field(default_factory=ObsConfig)
    # Step 5 runs between every source pair by default; it can be disabled
    # for ablations.
    detect_duplicates: bool = True
    # Cap on the session-wide duplicate scorer's value-pair cache (LRU
    # entries). The cache is a pure accelerator — eviction can never
    # change a score — so week-long maintenance sessions hold steady
    # memory instead of growing with every distinct value pair seen.
    # 0 or None disables the bound.
    scorer_cache_entries: int = 262144
    # Incremental add_source scores its duplicate pass through one
    # session-wide BoundedRecordScorer (value-pair cache + exact
    # best-match pruning, shared across successive maintenance calls).
    # False restores the pre-scorer per-pair path — kept only so
    # BENCH_incremental can measure old vs. new on one build.
    incremental_shared_scorer: bool = True
    # Section 6.2: "We envisage a threshold on the number of changes to a
    # data source before a new analysis is carried out." Fraction of rows
    # that must change before update_source() triggers full re-analysis.
    reanalysis_change_threshold: float = 0.1
    # Declare importer constraints? False = the hard, realistic mode where
    # all structure must be guessed from data (the paper's main setting).
    declare_constraints: bool = False
    # Samples stored in the metadata repository per table.
    sample_rows_per_table: int = 3


def config_to_dict(config: AladinConfig) -> Dict[str, Any]:
    """JSON-safe dict of every knob (all sub-config fields are primitives)."""
    return asdict(config)


def config_from_dict(payload: Dict[str, Any]) -> AladinConfig:
    """Rebuild an :class:`AladinConfig` persisted by :func:`config_to_dict`.

    Snapshots carry the configuration they were integrated with, so a
    warm-started system runs later maintenance (``update_source``
    thresholds, importer constraint declaration, duplicate detection)
    under the same knobs as the system that wrote them.
    """
    payload = dict(payload)
    # The execution backend is a property of the *host*, not of the
    # integrated data: a snapshot written on a 16-core build box must not
    # fork 16 workers on the laptop that opens it. Any persisted
    # "execution" entry is dropped and the reading environment's defaults
    # (REPRO_EXEC_BACKEND/REPRO_EXEC_WORKERS, or the CLI flags) apply.
    payload.pop("execution", None)
    # Likewise the persist policy (lock handling, auto-compaction
    # thresholds) belongs to the process opening the snapshot, not to the
    # data: the writer's lock timeout must not dictate the reader's.
    payload.pop("persist", None)
    # And the scorer cache bound is host memory policy: a snapshot saved
    # by an ablation run with the bound disabled must not silently
    # re-unbound every production process that opens it.
    payload.pop("scorer_cache_entries", None)
    # Observability is host policy too: whether the writer was exporting
    # telemetry says nothing about what the reader wants (REPRO_OBS and
    # the reader's own AladinConfig decide).
    payload.pop("observability", None)
    config = AladinConfig(
        discovery=_tolerant(DiscoveryConfig, payload.pop("discovery")),
        linking=_tolerant(LinkConfig, payload.pop("linking")),
        channels=_tolerant(LinkChannels, payload.pop("channels")),
        duplicates=_tolerant(DuplicateConfig, payload.pop("duplicates")),
        execution=ExecConfig(),
    )
    # Apply whatever scalar knobs the payload carries and ignore unknown
    # keys, so a snapshot written by a build with *newer* config fields —
    # top-level or nested — still opens here (the snapshot format version
    # gates real layout changes; extra knobs degrade to this build's
    # defaults).
    for key, value in payload.items():
        if hasattr(config, key):
            setattr(config, key, value)
    return config


def _tolerant(cls, payload: Dict[str, Any]):
    """Build a sub-config from persisted fields, ignoring unknown keys."""
    known = {f.name for f in fields(cls)}
    return cls(**{key: value for key, value in payload.items() if key in known})
