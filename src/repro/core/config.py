"""System-wide configuration."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict

from repro.discovery.model import DiscoveryConfig
from repro.duplicates.detector import DuplicateConfig
from repro.linking.engine import LinkChannels
from repro.linking.model import LinkConfig


@dataclass
class AladinConfig:
    """All knobs of the pipeline in one place.

    Every threshold the paper leaves unspecified lives in one of the
    sub-configs (DESIGN.md Section 6 records the calibration).
    """

    discovery: DiscoveryConfig = field(default_factory=DiscoveryConfig)
    linking: LinkConfig = field(default_factory=LinkConfig)
    channels: LinkChannels = field(default_factory=LinkChannels)
    duplicates: DuplicateConfig = field(default_factory=DuplicateConfig)
    # Step 5 runs between every source pair by default; it can be disabled
    # for ablations.
    detect_duplicates: bool = True
    # Section 6.2: "We envisage a threshold on the number of changes to a
    # data source before a new analysis is carried out." Fraction of rows
    # that must change before update_source() triggers full re-analysis.
    reanalysis_change_threshold: float = 0.1
    # Declare importer constraints? False = the hard, realistic mode where
    # all structure must be guessed from data (the paper's main setting).
    declare_constraints: bool = False
    # Samples stored in the metadata repository per table.
    sample_rows_per_table: int = 3


def config_to_dict(config: AladinConfig) -> Dict[str, Any]:
    """JSON-safe dict of every knob (all sub-config fields are primitives)."""
    return asdict(config)


def config_from_dict(payload: Dict[str, Any]) -> AladinConfig:
    """Rebuild an :class:`AladinConfig` persisted by :func:`config_to_dict`.

    Snapshots carry the configuration they were integrated with, so a
    warm-started system runs later maintenance (``update_source``
    thresholds, importer constraint declaration, duplicate detection)
    under the same knobs as the system that wrote them.
    """
    payload = dict(payload)
    return AladinConfig(
        discovery=DiscoveryConfig(**payload.pop("discovery")),
        linking=LinkConfig(**payload.pop("linking")),
        channels=LinkChannels(**payload.pop("channels")),
        duplicates=DuplicateConfig(**payload.pop("duplicates")),
        **payload,
    )
