"""Command-line front-end: integrate raw source files and explore them.

Usage::

    python -m repro integrate swissprot=flatfile:sp.dat pdb=pdb:pdb.txt \
        --search "kinase" --sql "swissprot:SELECT * FROM entry LIMIT 5" \
        --browse swissprot:P12345

Each positional argument names one source as ``name=format:path``; the
five-step pipeline runs in order. Optional flags exercise the three
access modes on the integrated warehouse (Section 4.6).

Integration happens once; ``save`` persists the integrated state to a
snapshot file and ``open`` warm-starts from one without re-importing::

    python -m repro save warehouse.snapshot swissprot=flatfile:sp.dat
    python -m repro open warehouse.snapshot --search "kinase"

Writers hold an advisory sidecar lock (``<snapshot>.lock``); a second
process opens read-only (``--read-only``), waits (``--lock-timeout``),
or breaks a dead holder's lock (``--force-lock``). ``compact`` reclaims
the space that per-source checkpoints leave behind::

    python -m repro compact warehouse.snapshot

Opens are lazy by default — only the manifest is read up front and each
source's rows fault in on first touch (``--eager`` restores the old
behavior). ``stats`` opens lazily read-only and reports what a query
actually faulted in::

    python -m repro stats warehouse.snapshot --search "kinase"

``metrics`` dumps the full telemetry snapshot of one read-only session —
every counter, gauge, and duration histogram, plus (``--events``) the
lifecycle event log, or (``--prometheus``) the whole registry in
Prometheus text exposition format::

    python -m repro metrics warehouse.snapshot --search "kinase" --events
    python -m repro metrics warehouse.snapshot --search "kinase" --prometheus

``trace`` renders the session's hierarchical span trees — one tree per
top-level operation, worker task spans re-parented under their fan-out —
with ``--slow SECONDS`` keeping only the slow offenders (plus their
ancestor chains)::

    python -m repro trace warehouse.snapshot --search "kinase" --slow 0.5
"""

from __future__ import annotations

import argparse
import asyncio
import io
import os
import signal
import sys
from typing import List, Optional, Sequence, Tuple

from repro.core import Aladin, AladinConfig
from repro.dataimport import registry
from repro.obs import render_spans
from repro.persist import SnapshotError, SnapshotStore
from repro.persist.codec import canonical_json, display_json


def _parse_source(spec: str) -> Tuple[str, str, str]:
    if "=" not in spec or ":" not in spec.split("=", 1)[1]:
        raise argparse.ArgumentTypeError(
            f"source must be name=format:path, got {spec!r}"
        )
    name, rest = spec.split("=", 1)
    format_name, path = rest.split(":", 1)
    if format_name.lower() not in registry.formats():
        raise argparse.ArgumentTypeError(
            f"unknown format {format_name!r}; known: {', '.join(registry.formats())}"
        )
    return name, format_name, path


def _add_exec_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--backend",
        choices=("serial", "thread", "process", "auto"),
        default=None,
        help="execution backend for the pipeline's fan-outs; 'auto' "
        "measures serial vs parallel per stage kind and picks from the "
        "data (default: REPRO_EXEC_BACKEND or serial)",
    )
    subparser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker count for the thread/process backends "
        "(default: REPRO_EXEC_WORKERS or 4)",
    )
    subparser.add_argument(
        "--resident-pool",
        action="store_true",
        help="keep the worker pool alive across pipeline fan-outs instead "
        "of re-creating it per step (default: REPRO_EXEC_RESIDENT)",
    )


def _add_access_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--search", metavar="QUERY", help="ranked full-text search after integration"
    )
    subparser.add_argument(
        "--sql",
        metavar="SOURCE:STATEMENT",
        help="run one SQL statement against one source's imported schema",
    )
    subparser.add_argument(
        "--browse",
        metavar="SOURCE:ACCESSION",
        help="render one object page with all four link types",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ALADIN: (almost) hands-off integration of life-science sources",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    integrate = subparsers.add_parser(
        "integrate", help="run the five-step pipeline over raw source files"
    )
    integrate.add_argument(
        "sources",
        nargs="+",
        type=_parse_source,
        help="one or more name=format:path source specifications",
    )
    _add_access_flags(integrate)
    _add_exec_flags(integrate)
    integrate.add_argument(
        "--declare-constraints",
        action="store_true",
        help="let importers declare PK/FK constraints (default: guess everything)",
    )
    save = subparsers.add_parser(
        "save", help="integrate raw sources, then persist a snapshot"
    )
    save.add_argument("snapshot", help="path of the snapshot file to write")
    save.add_argument(
        "sources",
        nargs="+",
        type=_parse_source,
        help="one or more name=format:path source specifications",
    )
    _add_access_flags(save)
    _add_exec_flags(save)
    save.add_argument(
        "--declare-constraints",
        action="store_true",
        help="let importers declare PK/FK constraints (default: guess everything)",
    )
    open_cmd = subparsers.add_parser(
        "open", help="warm-start from a snapshot (no re-import, no re-analysis)"
    )
    open_cmd.add_argument("snapshot", help="path of the snapshot file to read")
    open_cmd.add_argument(
        "--read-only",
        action="store_true",
        help="open without taking the writer lock; maintenance stays "
        "in memory and never checkpoints to the file",
    )
    open_cmd.add_argument(
        "--lock-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wait this long for another process to release the snapshot's "
        "writer lock before giving up (default: fail fast)",
    )
    open_cmd.add_argument(
        "--force-lock",
        action="store_true",
        help="break an existing writer lock (only when its holder is known "
        "dead; stale same-host locks are detected automatically)",
    )
    hydration = open_cmd.add_mutually_exclusive_group()
    hydration.add_argument(
        "--lazy",
        action="store_true",
        help="open by manifest only and fault sources in on first touch "
        "(default: REPRO_PERSIST_LAZY, which defaults to lazy)",
    )
    hydration.add_argument(
        "--eager",
        action="store_true",
        help="materialize every source up front, as before lazy opens",
    )
    _add_access_flags(open_cmd)
    _add_exec_flags(open_cmd)
    stats_cmd = subparsers.add_parser(
        "stats",
        help="open a snapshot lazily (read-only), optionally exercise the "
        "access modes, and report hydration + pushdown counters",
    )
    stats_cmd.add_argument("snapshot", help="path of the snapshot file to read")
    _add_access_flags(stats_cmd)
    metrics_cmd = subparsers.add_parser(
        "metrics",
        help="open a snapshot read-only, optionally exercise the access "
        "modes, and dump the session's telemetry snapshot as JSON",
    )
    metrics_cmd.add_argument("snapshot", help="path of the snapshot file to read")
    _add_access_flags(metrics_cmd)
    _add_exec_flags(metrics_cmd)
    metrics_cmd.add_argument(
        "--events",
        action="store_true",
        help="append the lifecycle event log (one JSON object per line) "
        "after the metrics snapshot",
    )
    metrics_cmd.add_argument(
        "--export",
        metavar="FILE",
        default=None,
        help="also write the JSON-lines telemetry export (every event "
        "eagerly, the final metrics snapshot on close) to FILE",
    )
    metrics_cmd.add_argument(
        "--prometheus",
        action="store_true",
        help="print the registry in Prometheus text exposition format "
        "instead of JSON (counters as _total, histograms as summaries "
        "with p50/p95/p99 quantiles)",
    )
    trace_cmd = subparsers.add_parser(
        "trace",
        help="open a snapshot read-only, optionally exercise the access "
        "modes, and render the session's span trees (hierarchical "
        "tracing across pools and processes)",
    )
    trace_cmd.add_argument("snapshot", help="path of the snapshot file to read")
    _add_access_flags(trace_cmd)
    _add_exec_flags(trace_cmd)
    trace_cmd.add_argument(
        "--slow",
        type=float,
        default=None,
        metavar="SECONDS",
        help="only show spans at least this slow (backed by the bounded "
        "slow-span log, so tail offenders survive ring eviction; the "
        "ancestor chain of a slow span is kept for context)",
    )
    compact = subparsers.add_parser(
        "compact",
        help="rewrite a snapshot's live content into a fresh file, "
        "reclaiming checkpoint churn (content hashes re-verified before "
        "the atomic swap)",
    )
    compact.add_argument("snapshot", help="path of the snapshot file to compact")
    compact.add_argument(
        "--lock-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wait this long for the snapshot's writer lock "
        "(default: fail fast)",
    )
    compact.add_argument(
        "--force-lock",
        action="store_true",
        help="break an existing writer lock (only when its holder is known dead)",
    )
    serve_cmd = subparsers.add_parser(
        "serve",
        help="serve search/browse/crawl/walk over HTTP from a snapshot "
        "(read-only lazy open; keeps serving while a writer checkpoints)",
    )
    serve_cmd.add_argument("snapshot", help="path of the snapshot file to serve")
    serve_cmd.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_cmd.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port; 0 picks an ephemeral port (default: 8080)",
    )
    serve_cmd.add_argument(
        "--max-concurrency",
        type=int,
        default=64,
        metavar="N",
        help="queries executing on the pool at once (default: 64)",
    )
    serve_cmd.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        metavar="N",
        help="admitted requests before the accept path answers 503 "
        "(default: 1024)",
    )
    serve_cmd.add_argument(
        "--cache-entries",
        type=int,
        default=1024,
        metavar="N",
        help="bounded per-query result cache size; 0 disables caching "
        "(default: 1024)",
    )
    serve_cmd.add_argument(
        "--refresh-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="how often the snapshot's content fingerprint is re-read to "
        "notice a writer's checkpoint (default: 0.5)",
    )
    serve_cmd.add_argument(
        "--drain-deadline",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long shutdown waits for in-flight requests (default: 10)",
    )
    _add_exec_flags(serve_cmd)
    lint_cmd = subparsers.add_parser(
        "lint",
        help="run the project's static-analysis battery (layering, "
        "lock-order, fork-safety, determinism, canonical-JSON, obs-seam, "
        "broad-except) over the source tree",
    )
    lint_cmd.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to check (default: the installed "
        "repro package source)",
    )
    lint_cmd.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="findings as human-readable text or one JSON document "
        "(default: text)",
    )
    lint_cmd.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline file of grandfathered findings "
        "(default: ./analysis-baseline.json when present)",
    )
    lint_cmd.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; every finding counts",
    )
    lint_cmd.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file (each entry "
        "gets a placeholder justification to replace) and exit 0",
    )
    lint_cmd.add_argument(
        "--verbose",
        action="store_true",
        help="also list baselined findings in text output",
    )
    formats = subparsers.add_parser("formats", help="list registered import formats")
    del formats  # no extra arguments
    return parser


def _hydration_line(stats: dict) -> str:
    """One-line hydration report, e.g. for ``repro stats``."""
    hydrated = stats["hydrated"]
    names = ", ".join(hydrated) if hydrated else "none"
    resident = stats["resident_bytes"]
    resident_text = "untracked" if resident is None else f"~{resident} bytes"
    return (
        f"hydration: {len(hydrated)}/{stats['sources']} sources hydrated "
        f"({names}); resident {resident_text}; "
        f"pushdown hits {stats['pushdown_hits']}"
    )


def _telemetry_line(aladin: Aladin) -> str:
    """One-line telemetry summary, e.g. for ``repro stats``."""
    if not aladin.obs.enabled:
        return "telemetry: disabled (REPRO_OBS=0)"
    snapshot = aladin.metrics()
    events = len(aladin.obs.events.history())
    fanouts = snapshot["counters"].get("pool.fanouts", 0)
    series = len(snapshot["histograms"])
    return (
        f"telemetry: {events} lifecycle events; {fanouts} pool fan-outs; "
        f"{series} timing series (`repro metrics` for the full dump)"
    )


def _run_access_modes(aladin: Aladin, args, out) -> int:
    """Exercise the three access modes requested by the shared flags."""
    if args.search:
        print(file=out)
        print(f"search {args.search!r}:", file=out)
        for hit in aladin.search_engine().search(args.search, top_k=10):
            print(f"  {hit.score:8.2f}  {hit.source}/{hit.accession}", file=out)
    if args.sql:
        if ":" not in args.sql:
            print("error: --sql expects SOURCE:STATEMENT", file=out)
            return 2
        source, statement = args.sql.split(":", 1)
        result = aladin.query_engine().sql(source, statement)
        print(file=out)
        print("  ".join(result.columns), file=out)
        for row in result.rows:
            print("  ".join(str(row[c]) for c in result.columns), file=out)
    if args.browse:
        if ":" not in args.browse:
            print("error: --browse expects SOURCE:ACCESSION", file=out)
            return 2
        source, accession = args.browse.split(":", 1)
        try:
            view = aladin.browser().visit(source, accession)
        except KeyError as exc:
            print(f"error: {exc}", file=out)
            return 2
        print(file=out)
        print(view.render(), file=out)
    return 0


def _integrate_sources(aladin: Aladin, sources, out) -> int:
    for name, format_name, path in sources:
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=out)
            return 2
        report = aladin.add_source(name, format_name, text)
        print(report.render(), file=out)
        print(file=out)
    return 0


def _run_serve(args, out) -> int:
    from repro.serve import AsyncQueryService, ServeConfig

    serve_config = ServeConfig(
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        max_pending=args.max_pending,
        cache_entries=args.cache_entries,
        refresh_interval=args.refresh_interval,
        drain_deadline=args.drain_deadline,
    )
    aladin_config = AladinConfig()
    if args.backend is not None:
        aladin_config.execution.backend = args.backend
    if args.workers is not None:
        aladin_config.execution.workers = max(1, args.workers)
    if args.resident_pool:
        aladin_config.execution.resident = True

    async def serve_main() -> int:
        service = AsyncQueryService(
            args.snapshot, config=serve_config, aladin_config=aladin_config
        )
        try:
            await service.start()
        except SnapshotError as exc:
            print(f"error: {exc}", file=out)
            return 2
        host, port = service.address
        print(
            f"serving {args.snapshot} on http://{host}:{port} "
            "(/search /browse /crawl /walk /healthz /statz)",
            file=out,
        )
        out.flush()
        loop = asyncio.get_running_loop()
        stop_requested = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_requested.set)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or unsupported platform
        await stop_requested.wait()
        drained = await service.stop()
        print(
            f"stopped: {service.requests_served} served, "
            f"{service.requests_rejected} rejected, "
            f"{service.generation_swaps} generation swaps, "
            f"drain {'clean' if drained else 'timed out'}",
            file=out,
        )
        return 0 if drained else 1

    try:
        return asyncio.run(serve_main())
    except KeyboardInterrupt:  # signal handler unavailable: plain ctrl-C
        return 0


def _run_lint(args, out) -> int:
    from repro.analysis import AnalysisEngine, Baseline, BaselineError
    from repro.analysis.baseline import DEFAULT_BASELINE
    from repro.analysis.checkers import build_checkers

    paths = list(args.paths)
    if not paths:
        import repro

        paths = [os.path.dirname(os.path.abspath(repro.__file__))]
    baseline_path = args.baseline or (
        DEFAULT_BASELINE if os.path.exists(DEFAULT_BASELINE) else None
    )
    baseline = Baseline()
    if baseline_path and not args.no_baseline and not args.write_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=out)
            return 2
    engine = AnalysisEngine(build_checkers(), baseline=baseline)
    report = engine.run(paths)
    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE
        fresh = Baseline()
        for finding in report.findings:
            fresh.add(
                finding,
                "(added by repro lint --write-baseline; replace with a "
                "real justification)",
            )
        fresh.save(target)
        print(
            f"baseline written: {target} ({len(report.findings)} entr(ies))",
            file=out,
        )
        return 0
    if args.output_format == "json":
        print(display_json(report.to_dict()), file=out)
    else:
        print(report.render(verbose=args.verbose), file=out)
        for fingerprint in report.stale_baseline:
            print(
                f"stale baseline entry {fingerprint}: matched no finding "
                "(remove it or re-run --write-baseline)",
                file=out,
            )
    return 0 if report.clean else 1


def run(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "lint":
        return _run_lint(args, out)
    if args.command == "serve":
        return _run_serve(args, out)
    if args.command == "formats":
        for format_name in registry.formats():
            print(format_name, file=out)
        return 0
    if args.command == "compact":
        store = SnapshotStore(args.snapshot)
        try:
            store.attach_writer(
                timeout=args.lock_timeout or 0.0, force=args.force_lock
            )
            try:
                stats = store.compact()
            finally:
                store.detach_writer()
        except SnapshotError as exc:
            print(f"error: {exc}", file=out)
            return 2
        print(f"{args.snapshot}: {stats.render()}", file=out)
        return 0
    if args.command == "stats":
        try:
            aladin = Aladin.open(args.snapshot, read_only=True, lazy=True)
        except SnapshotError as exc:
            print(f"error: {exc}", file=out)
            return 2
        try:
            print(f"warehouse (read-only): {aladin.summary()}", file=out)
            code = _run_access_modes(aladin, args, out)
            print(file=out)
            print(_hydration_line(aladin.hydration_stats()), file=out)
            print(_telemetry_line(aladin), file=out)
        finally:
            aladin.close()
        return code
    if args.command == "metrics":
        config = AladinConfig()
        # The whole point of the command is telemetry, so enablement is
        # forced on even under REPRO_OBS=0.
        config.observability.enabled = True
        if args.export:
            config.observability.export_path = args.export
        try:
            aladin = Aladin.open(args.snapshot, config=config, read_only=True, lazy=True)
        except SnapshotError as exc:
            print(f"error: {exc}", file=out)
            return 2
        try:
            if args.backend is not None or args.workers is not None or args.resident_pool:
                aladin.configure_execution(
                    backend=args.backend,
                    workers=args.workers,
                    resident=True if args.resident_pool else None,
                )
            # Under --prometheus the exposition must be the *only*
            # output (scrapers read stdout), so the access modes run
            # against a discarded stream.
            access_out = io.StringIO() if args.prometheus else out
            code = _run_access_modes(aladin, args, access_out)
            if args.prometheus:
                print(aladin.obs.metrics.render_prometheus(), end="", file=out)
            else:
                print(display_json(aladin.metrics()), file=out)
            if args.events:
                for event in aladin.obs.events.history():
                    print(canonical_json(event.to_dict()), file=out)
        finally:
            aladin.close()  # flushes the --export sink's final metrics line
        return code
    if args.command == "trace":
        config = AladinConfig()
        # Like `metrics`: the whole point is telemetry, so enablement is
        # forced on even under REPRO_OBS=0 — and the slow-span log's
        # threshold tracks the filter the user asked for.
        config.observability.enabled = True
        if args.slow is not None:
            config.observability.slow_span_seconds = args.slow
        try:
            aladin = Aladin.open(args.snapshot, config=config, read_only=True, lazy=True)
        except SnapshotError as exc:
            print(f"error: {exc}", file=out)
            return 2
        try:
            if args.backend is not None or args.workers is not None or args.resident_pool:
                aladin.configure_execution(
                    backend=args.backend,
                    workers=args.workers,
                    resident=True if args.resident_pool else None,
                )
            code = _run_access_modes(aladin, args, out)
            spans = aladin.obs.trace.spans()
            if args.slow is not None:
                # Ring-evicted slow spans still render, from the slow log.
                seen = {span.span_id for span in spans}
                spans += [
                    span
                    for span in aladin.obs.trace.slow_spans(args.slow)
                    if span.span_id not in seen
                ]
            rendered = render_spans(spans, slow_threshold=args.slow)
            print(file=out)
            print(rendered if rendered else "no spans recorded", file=out)
        finally:
            aladin.close()
        return code
    if args.command == "open":
        try:
            aladin = Aladin.open(
                args.snapshot,
                read_only=args.read_only,
                lock_timeout=args.lock_timeout,
                force_lock=args.force_lock,
                lazy=True if args.lazy else (False if args.eager else None),
            )
        except SnapshotError as exc:
            print(f"error: {exc}", file=out)
            return 2
        if args.backend is not None or args.workers is not None or args.resident_pool:
            aladin.configure_execution(
                backend=args.backend,
                workers=args.workers,
                resident=True if args.resident_pool else None,
            )
        mode = "read-only" if aladin.read_only else "warm-start"
        print(f"warehouse ({mode}): {aladin.summary()}", file=out)
        try:
            return _run_access_modes(aladin, args, out)
        finally:
            # Releases the writer lock, saves the auto backend's
            # calibration sidecar, and flushes any telemetry export.
            aladin.close()
    config = AladinConfig()
    config.declare_constraints = args.declare_constraints
    if args.backend is not None:
        config.execution.backend = args.backend
    if args.workers is not None:
        config.execution.workers = max(1, args.workers)
    if args.resident_pool:
        config.execution.resident = True
    aladin = Aladin(config)
    code = _integrate_sources(aladin, args.sources, out)
    if code:
        return code
    print(f"warehouse: {aladin.summary()}", file=out)
    if args.command == "save":
        try:
            aladin.save(args.snapshot)
        except SnapshotError as exc:
            print(f"error: {exc}", file=out)
            return 2
        print(f"snapshot written: {args.snapshot}", file=out)
    try:
        return _run_access_modes(aladin, args, out)
    finally:
        # Releases any writer lock, saves the auto backend's calibration
        # sidecar, and flushes any telemetry export.
        aladin.close()


def main() -> None:
    try:
        code = run()
        sys.stdout.flush()
    except BrokenPipeError:
        # The consumer of a pipeline stopped reading (`repro trace ... |
        # head`): that is the default SIGPIPE outcome, not an error.
        # Point stdout at devnull so the interpreter's final implicit
        # flush cannot raise again, and exit 0 like any well-behaved
        # filter.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        code = 0
    raise SystemExit(code)
