"""Lazy snapshot sessions: manifest-only opens, fault-in hydration.

The eager open path (:meth:`SnapshotStore.load_state`) deserializes every
source's rows, links, and postings up front, so open latency and RSS grow
linearly with corpus size. A :class:`LazySnapshotSession` instead installs
the O(manifest) part of the snapshot — per-source stubs carrying the
discovered structure, ColumnProfiles, samples, and row counts — and leaves
three fault-in seams armed:

* *sources*: the object web's hydrator callback loads exactly one source's
  tables (:meth:`SnapshotStore.load_source_body`) the first time a query,
  page visit, or crawl touches it;
* *links*: the metadata repository's deferred-links loader replays the
  whole link web on the first link read or write (links grow with the
  corpus, not with a query, but one source's page visit never needs them
  until a link walk happens);
* *index*: :class:`LazyInvertedIndex` restores document metadata on first
  use and postings per token, so a BM25 query reads only its query tokens'
  posting lists from SQLite.

On top of the fault-in path sits *pushdown*: for a source that is not
hydrated yet, point lookups (``value -> row_ids``), single-table SELECT
statements, and simple aggregations are answered by SQL against the
snapshot's own ``cells`` value index (written at checkpoint time, format
version 3) — a query over 2 of 50 sources never materializes the other
48. Anything the pushdown layer cannot answer exactly declines, hydrates,
and runs in memory; declining is always correct, just slower.

Maintenance (``add_source``/``update_source``/``remove_source``/``save``)
faults every source in first — mutation runs only against fully resident
state, so the lazy and eager systems cannot diverge. ``release_source``
evicts a hydrated source again (read-only long-runners bounding RSS), and
is refused once maintenance has written, because the in-memory state may
then be ahead of what a re-fault would reload.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.access.index import InvertedIndex, PostingField
from repro.linking.stats import statistics_from_profile
from repro.obs.events import HYDRATION_FAULTED
from repro.persist import codec
from repro.persist.snapshot import SnapshotError, SnapshotManifest, SnapshotStore
from repro.relational.expressions import ColumnRef, Comparison, Literal
# The pushdown executor must rank, project, and dedupe byte-identically
# to the in-memory engine, so it runs the engine's own helpers instead of
# reimplementing their ordering rules.
from repro.relational.query import (  # noqa: PLC2701 - shared executor internals
    ResultSet,
    _distinct_rows,
    _resolve_bare,
    _stable_sort,
)
from repro.relational.sql import SelectPlan, plan_select


def _probe_value(value: Any) -> Optional[Any]:
    """The bindable probe for a cells lookup, or None to decline.

    Stricter than the write-side ``_cell_value``: a float at or beyond
    2**63 could equal a stored out-of-range int that the cells index
    skipped, so such probes must fall back to the in-memory path. NaN is
    kept — it binds as NULL and matches nothing, which is exactly what
    equality against NaN means in the in-memory engine too.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value if -(2 ** 63) <= value < 2 ** 63 else None
    if isinstance(value, float):
        if value != value:  # NaN
            return value
        return value if -(2.0 ** 63) < value < 2.0 ** 63 else None
    if isinstance(value, str):
        return value
    return None


def _simple_equality(where) -> Optional[Tuple[str, Any]]:
    """``(column, literal)`` if ``where`` is one bare equality, else None."""
    if not isinstance(where, Comparison) or where.op != "=":
        return None
    left, right = where.left, where.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        return left.name.lower(), right.value
    if isinstance(right, ColumnRef) and isinstance(left, Literal):
        return right.name.lower(), left.value
    return None


class SnapshotColumnSource:
    """The ColumnStore backing of one snapshot-resident table.

    Attached by hydration to every table of a lazily loaded source; as
    long as the table has not mutated, ``lookup_row_ids`` answers point
    lookups from the snapshot's ``cells`` index instead of forcing the
    value->row_ids cache to materialize.
    """

    def __init__(self, session: "LazySnapshotSession", source: str, table: str):
        self._session = session
        self._source = source
        self._table = table

    def lookup_row_ids(self, column: str, value: Any) -> Optional[List[int]]:
        return self._session.lookup_row_ids(
            self._source, self._table, column, value
        )


class LazyInvertedIndex(InvertedIndex):
    """An inverted index whose postings page in from the snapshot.

    Document metadata (one row per document) loads on first use; posting
    lists load per token, in exactly the order the eager
    ``_load_index`` restores them, so BM25 scores and tie-breaks are
    byte-identical. Any operation that needs the whole index — mutation,
    source removal, export — faults the remainder in first and then
    behaves like a plain :class:`InvertedIndex`.
    """

    def __init__(self, session: "LazySnapshotSession"):
        super().__init__()
        self._session = session
        self._docs_loaded = False
        self._all_loaded = False
        self._loaded_tokens: set = set()
        self._doc_pks: List[int] = []
        self._pk_index: Dict[int, int] = {}
        # Serializes page-ins, double-checked like ``_hydrate_lock``:
        # concurrent same-token queries must load a posting list (and the
        # document metadata) exactly once — a doubled restore_document
        # pass would shift doc_ids and double every document's length,
        # silently corrupting BM25 scores for every query after it.
        self._load_lock = threading.RLock()

    # ------------------------------------------------------------------
    def _ensure_docs(self) -> None:
        if self._docs_loaded:
            return
        with self._load_lock:
            if self._docs_loaded:
                return
            fetched = self._session.fetch_documents()
            for pk, source, accession, length, is_primary in fetched:
                self._pk_index[pk] = len(self._doc_pks)
                self._doc_pks.append(pk)
                InvertedIndex.restore_document(
                    self, source, accession, length, bool(is_primary), []
                )
            # Published last: unlocked fast-path readers that see the flag
            # must also see every document restored above.
            self._docs_loaded = True

    def _ensure_all(self) -> None:
        if self._all_loaded:
            return
        with self._load_lock:
            if self._all_loaded:
                return
            self._ensure_docs()
            by_pk = self._session.fetch_all_postings()
            unknown = set(by_pk) - set(self._doc_pks)
            if unknown:
                raise SnapshotError(
                    "snapshot index changed under a lazy reader; "
                    "reopen the snapshot"
                )
            # Rebuilt from scratch (partial per-token loads discarded):
            # token insertion order must be the eager loader's — docs in
            # id order, postings in rowid order — so export_documents
            # round-trips byte-identically.
            postings: Dict[str, List[PostingField]] = type(self._postings)(list)
            for doc_id, pk in enumerate(self._doc_pks):
                for token, field_name, frequency in by_pk.get(pk, ()):
                    postings[token].append(
                        PostingField(
                            doc_id=doc_id, field=field_name, frequency=frequency
                        )
                    )
            self._postings = postings
            self._loaded_tokens.clear()
            self._all_loaded = True

    # ------------------------------------------------------------------
    # per-token reads (the BM25 query path)
    # ------------------------------------------------------------------
    def postings(self, token: str) -> List[PostingField]:
        # Unlocked fast path, then double-checked under the lock: two
        # threads racing the same cold token page it in exactly once, and
        # the token joins _loaded_tokens only after its list is in place,
        # so a fast-path hit can never read a half-loaded posting list.
        if not self._all_loaded and token not in self._loaded_tokens:
            with self._load_lock:
                if not self._all_loaded and token not in self._loaded_tokens:
                    self._ensure_docs()
                    loaded = []
                    for pk, field_name, frequency in (
                        self._session.fetch_token_postings(token)
                    ):
                        doc_id = self._pk_index.get(pk)
                        if doc_id is None:
                            raise SnapshotError(
                                "snapshot index changed under a lazy reader; "
                                "reopen the snapshot"
                            )
                        loaded.append(
                            PostingField(
                                doc_id=doc_id,
                                field=field_name,
                                frequency=frequency,
                            )
                        )
                    if loaded:
                        self._postings[token] = loaded
                    self._loaded_tokens.add(token)
        return super().postings(token)

    def document_frequency(self, token: str) -> int:
        self.postings(token)  # fault the token's list in
        return super().document_frequency(token)

    # ------------------------------------------------------------------
    # document-metadata reads
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        self._ensure_docs()
        return super().__len__()

    @property
    def average_length(self) -> float:
        self._ensure_docs()
        return InvertedIndex.average_length.fget(self)

    def document(self, doc_id: int) -> Tuple[str, str]:
        self._ensure_docs()
        return super().document(doc_id)

    def doc_length(self, doc_id: int) -> int:
        self._ensure_docs()
        return super().doc_length(doc_id)

    def document_count(self) -> int:
        self._ensure_docs()
        return super().document_count()

    def source_of(self, doc_id: int) -> str:
        self._ensure_docs()
        return super().source_of(doc_id)

    # ------------------------------------------------------------------
    # whole-index operations fault the remainder in first
    # ------------------------------------------------------------------
    def add_tokenized(self, identity, tokenized) -> int:
        self._ensure_all()
        return super().add_tokenized(identity, tokenized)

    def restore_document(self, source, accession, length, is_primary, postings) -> int:
        self._ensure_all()
        return super().restore_document(
            source, accession, length, is_primary, postings
        )

    def remove_source(self, source: str) -> int:
        self._ensure_all()
        return super().remove_source(source)

    def vocabulary_size(self) -> int:
        self._ensure_all()
        return super().vocabulary_size()

    def export_documents(self, source: Optional[str] = None):
        self._ensure_all()
        return super().export_documents(source)


class LazySnapshotSession:
    """One lazily opened snapshot: stubs installed, bodies on first touch."""

    def __init__(self, store: SnapshotStore, manifest: SnapshotManifest):
        self._store = store
        self._manifest = manifest
        self._aladin = None
        self._stubs = {stub.name: stub for stub in manifest.sources}
        self._hydrated: Dict[str, int] = {}  # name -> resident payload bytes
        self._pushdown_counts: Dict[str, int] = {}
        self._cells_cache: Dict[str, bool] = {}
        # One connection per reader thread: sqlite3 connections are not
        # safe for concurrent use (and by default refuse cross-thread use
        # outright), and a serving layer drives this session from a pool
        # of worker threads. Every connection is also tracked in
        # ``_conns`` so ``close`` can tear them all down from whichever
        # thread the owner closes on.
        self._conn_local = threading.local()
        self._conns: List[sqlite3.Connection] = []
        self._conn_lock = threading.Lock()
        self._maintained = False
        # Serializes fault-ins: two threads touching the same stub must
        # hydrate it (and emit HYDRATION_FAULTED) exactly once.
        self._hydrate_lock = threading.RLock()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def install(self, aladin) -> None:
        """Register every source as a stub and arm the fault-in seams.

        Stub registration mirrors the eager open exactly — structure,
        statistics rebuilt arithmetically from the persisted profiles,
        samples, row counts — except that no database is attached yet.
        """
        self._aladin = aladin
        for stub in self._manifest.sources:
            statistics = {
                attr: statistics_from_profile(attr, profile)
                for attr, profile in stub.profiles.items()
            }
            aladin.repository.register_source(
                stub.structure,
                statistics,
                stub.samples,
                stub.row_counts,
                profiles=stub.profiles,
            )
        aladin.repository.set_deferred_links(self._load_links)
        aladin.web.set_hydrator(self.hydrate)
        aladin.web.set_sql_pushdown(self.try_select)
        if self._manifest.index_built:
            aladin._index = LazyInvertedIndex(self)  # noqa: SLF001 - session owns wiring

    def _connection(self) -> sqlite3.Connection:
        local = self._conn_local
        conn = getattr(local, "conn", None)
        if conn is None:
            conn = self._store._connect(  # noqa: SLF001
                read_only=True, cross_thread=True
            )
            with self._conn_lock:
                self._conns.append(conn)
            local.conn = conn
        return conn

    def close(self) -> None:
        # Swap in a fresh thread-local map first so a racing reader can
        # only reopen (harmless), never observe a half-closed connection
        # through a stale slot.
        self._conn_local = threading.local()
        with self._conn_lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.close()
            except sqlite3.Error:
                pass

    # ------------------------------------------------------------------
    # hydration
    # ------------------------------------------------------------------
    def hydrate(self, name: Optional[str] = None) -> None:
        """Fault one source (or, with ``None``, every remaining one) in.

        Unknown names are ignored — the caller's own lookup then fails
        exactly as it would on an eager system.
        """
        if name is None:
            for stub_name in sorted(self._stubs):
                self._hydrate_one(stub_name)
            self._materialize_rest()
        elif name in self._stubs:
            self._hydrate_one(name)

    def _materialize_rest(self) -> None:
        """Fault in the non-source lazies too: links and index postings.

        A full fault-in precedes maintenance writes, and a write
        transaction on the same snapshot file must not find this session
        still needing to read from it mid-write — so nothing stays
        deferred once everything else is resident.
        """
        aladin = self._aladin
        if aladin is None:
            return
        aladin.repository.attribute_links()  # triggers the deferred load
        index = aladin._index  # noqa: SLF001 - session owns wiring
        if isinstance(index, LazyInvertedIndex):
            index._ensure_all()  # noqa: SLF001

    def _trace(self):
        """The owning system's tracer, or ``None`` (obs off / detached)."""
        aladin = self._aladin
        obs = getattr(aladin, "obs", None)
        return None if obs is None else obs.trace_or_none

    def _metrics(self):
        aladin = self._aladin
        obs = getattr(aladin, "obs", None)
        return None if obs is None else obs.metrics_or_none

    def _hydrate_one(self, name: str) -> None:
        # Unlocked fast path, then double-checked under the lock.
        if name in self._hydrated or self._aladin is None:
            return
        with self._hydrate_lock:
            if name in self._hydrated:
                return
            tracer = self._trace()
            if tracer is None:
                self._hydrate_locked(name)
            else:
                with tracer.span("persist.hydration_fault", source=name) as span:
                    self._hydrate_locked(name)
                    span.set(payload_bytes=self._hydrated.get(name, 0))

    def _hydrate_locked(self, name: str) -> None:
        body = self._store.load_source_body(name, materialize=False)
        stub = self._stubs[name]
        database = body.database
        for attr, profile in stub.profiles.items():
            database.table(attr.table).columns.restore_profile(attr.column, profile)
        if self._cells_available(name):
            for table in database.tables():
                table.columns.attach_backing(
                    SnapshotColumnSource(self, name, table.name)
                )
        statistics = {
            attr: statistics_from_profile(attr, profile)
            for attr, profile in stub.profiles.items()
        }
        aladin = self._aladin
        self._hydrated[name] = body.payload_bytes
        try:
            aladin._engine.restore_source(  # noqa: SLF001 - session owns wiring
                database, stub.structure, statistics
            )
            aladin._databases[name] = database
            aladin.web.attach_database(name, database)
            if stub.format_name is not None:
                aladin._raw_inputs[name] = (
                    stub.format_name,
                    body.raw_text,
                    stub.import_options,
                )
        except BaseException:
            # Unwind so a failed fault-in is retryable, not half-attached.
            self._hydrated.pop(name, None)
            self._evict_from_system(aladin, name)
            raise
        obs = getattr(aladin, "obs", None)
        if obs is not None:
            obs.events.emit(
                HYDRATION_FAULTED, source=name, payload_bytes=body.payload_bytes
            )

    @staticmethod
    def _evict_from_system(aladin, name: str) -> None:
        try:
            aladin.web.detach_database(name)
        except Exception:  # noqa: BLE001 - best-effort unwind
            pass
        aladin._databases.pop(name, None)
        aladin._raw_inputs.pop(name, None)
        try:
            if name in aladin._engine.source_names():
                aladin._engine.deregister_source(name)
        except Exception:  # noqa: BLE001 - best-effort unwind
            pass

    def release(self, name: str) -> bool:
        """Evict one hydrated source's rows; re-faulted on next touch.

        Refused once maintenance has written through this system: the
        in-memory state may then be ahead of the snapshot, and a re-fault
        could resurrect stale rows.

        Eviction takes ``_hydrate_lock``: a reader mid-fault in another
        thread must never observe a half-evicted source, and an eviction
        must never tear down a source whose fault-in is still attaching.
        """
        with self._hydrate_lock:
            if name not in self._hydrated:
                return False
            if self._maintained:
                raise SnapshotError(
                    "cannot release a source after maintenance writes; "
                    "reopen the snapshot for a fresh lazy session"
                )
            self._evict_from_system(self._aladin, name)
            del self._hydrated[name]
            return True

    def forget(self, name: str) -> None:
        """Drop a removed source's stub so it can never re-fault."""
        self._stubs.pop(name, None)
        self._hydrated.pop(name, None)
        self._pushdown_counts.pop(name, None)
        self._cells_cache.pop(name, None)

    def note_maintenance(self) -> None:
        self._maintained = True

    # ------------------------------------------------------------------
    # deferred links
    # ------------------------------------------------------------------
    def _load_links(self, repository) -> None:
        conn = self._connection()
        try:
            attribute_links = [
                codec.attribute_link_from_dict(codec.canonical_loads(payload))
                for (payload,) in conn.execute(
                    "SELECT payload FROM attribute_links ORDER BY rowid"
                )
            ]
            object_links = [
                codec.object_link_from_dict(codec.canonical_loads(payload))
                for (payload,) in conn.execute(
                    "SELECT payload FROM object_links ORDER BY rowid"
                )
            ]
        except (sqlite3.DatabaseError, json.JSONDecodeError, KeyError,
                ValueError, TypeError) as exc:
            raise SnapshotError(
                f"snapshot {self._store.path!r} is corrupted: {exc}"
            ) from exc
        for link in attribute_links:
            repository.add_attribute_link(link)
        repository.add_object_links(object_links)

    # ------------------------------------------------------------------
    # pushdown: point lookups
    # ------------------------------------------------------------------
    def _cells_available(self, source: str) -> bool:
        """Does this file carry a cells slice for ``source``?

        Per source, not per file: a v1/v2 snapshot upgraded by partial
        checkpoints has cells only for the sources written since.
        """
        if not self._manifest.has_cells:
            return False
        cached = self._cells_cache.get(source)
        if cached is None:
            try:
                cached = (
                    self._connection()
                    .execute(
                        "SELECT 1 FROM cells WHERE source = ? LIMIT 1", (source,)
                    )
                    .fetchone()
                    is not None
                )
            except sqlite3.Error:
                cached = False
            self._cells_cache[source] = cached
        return cached

    def lookup_row_ids(
        self, source: str, table: str, column: str, value: Any
    ) -> Optional[List[int]]:
        """Ascending row ids where ``column = value``, or None to decline."""
        probe = _probe_value(value)
        if probe is None or not self._cells_available(source):
            self._count_decline("lookup")
            return None
        try:
            rows = self._connection().execute(
                "SELECT row_id FROM cells WHERE source = ? AND table_name = ? "
                "AND column_name = ? AND value = ? ORDER BY row_id",
                (source, table, column, probe),
            ).fetchall()
        except (sqlite3.Error, OverflowError):
            self._count_decline("lookup")
            return None
        self._count_pushdown(source, "lookup")
        return [row_id for (row_id,) in rows]

    def aggregate(
        self, source: str, table: str, column: str, op: str
    ) -> Optional[Any]:
        """COUNT / COUNT DISTINCT / MIN / MAX without hydrating, or None.

        Answered over the cells index, which carries every non-null cell
        SQLite can represent exactly — the same population the persisted
        ColumnProfiles describe for clean data. Declines (returns None)
        for hydrated sources, where memory is authoritative and cheaper.
        """
        expressions = {
            "count": "COUNT(value)",
            "distinct": "COUNT(DISTINCT value)",
            "min": "MIN(value)",
            "max": "MAX(value)",
        }
        if op not in expressions:
            raise ValueError(
                f"unknown aggregate {op!r}; expected one of "
                f"{sorted(expressions)}"
            )
        if source in self._hydrated or source not in self._stubs:
            self._count_decline("aggregate")
            return None
        if not self._cells_available(source):
            self._count_decline("aggregate")
            return None
        try:
            row = self._connection().execute(
                f"SELECT {expressions[op]} FROM cells "
                "WHERE source = ? AND table_name = ? AND column_name = ?",
                (source, table, column),
            ).fetchone()
        except sqlite3.Error:
            self._count_decline("aggregate")
            return None
        self._count_pushdown(source, "aggregate")
        return row[0]

    def _count_pushdown(self, source: str, kind: str = "select") -> None:
        self._pushdown_counts[source] = self._pushdown_counts.get(source, 0) + 1
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter(f"persist.pushdown.{kind}.accepted").inc()

    def _count_decline(self, kind: str) -> None:
        """An answered-in-memory fallback; declining is correct, just slower."""
        metrics = self._metrics()
        if metrics is not None:
            metrics.counter(f"persist.pushdown.{kind}.declined").inc()

    # ------------------------------------------------------------------
    # pushdown: single-table SELECT
    # ------------------------------------------------------------------
    def try_select(self, source: str, statement: str) -> Optional[ResultSet]:
        """Answer a SELECT from the snapshot, or None to decline.

        Parse errors propagate as :class:`~repro.relational.sql.SqlError`
        — the same exception the in-memory path raises — so declining
        never changes a statement's error shape, only where rows come
        from.
        """
        if source not in self._stubs or source in self._hydrated:
            self._count_decline("select")
            return None
        plan = plan_select(statement)
        tracer = self._trace()
        if tracer is None:
            result = self._execute_plan(source, plan)
        else:
            with tracer.span("persist.pushdown.select", source=source) as span:
                result = self._execute_plan(source, plan)
                span.set(accepted=result is not None)
        if result is None:
            self._count_decline("select")
        return result

    def _execute_plan(self, source: str, plan: SelectPlan) -> Optional[ResultSet]:
        if plan.joins:
            return None  # joins need the in-memory hash-join machinery
        conn = self._connection()
        try:
            schema_row = conn.execute(
                "SELECT schema FROM table_schemas "
                "WHERE source = ? AND table_name = ?",
                (source, plan.table.lower()),
            ).fetchone()
        except sqlite3.Error:
            return None
        if schema_row is None:
            # Unknown table: decline, so hydration raises the engine's
            # own SchemaError with its exact message.
            return None
        try:
            schema = codec.schema_from_dict(codec.canonical_loads(schema_row[0]))
        except (json.JSONDecodeError, KeyError, ValueError, TypeError):
            return None
        column_names = schema.column_names

        # Scan the stored rows, streaming the decode; one bare equality
        # in WHERE additionally narrows the scan through the cells index
        # before a single payload is decoded. The predicate is still
        # re-evaluated in Python on what comes back, so the index is an
        # I/O filter, never the semantics.
        sql = "SELECT data FROM rows WHERE source = ? AND table_name = ?"
        params: List[Any] = [source, plan.table.lower()]
        equality = _simple_equality(plan.where)
        if equality is not None:
            column, value = equality
            probe = _probe_value(value)
            if (
                "." not in column
                and column in column_names
                and probe is not None
                and self._cells_available(source)
            ):
                sql += (
                    " AND row_id IN (SELECT row_id FROM cells "
                    "WHERE source = ? AND table_name = ? "
                    "AND column_name = ? AND value = ?)"
                )
                params += [source, plan.table.lower(), column, probe]
        sql += " ORDER BY row_id"
        try:
            decoded = codec.decode_rows(
                data for (data,) in conn.execute(sql, params)
            )
            rows = [dict(zip(column_names, tup)) for tup in decoded]
        except (sqlite3.Error, OverflowError, json.JSONDecodeError):
            return None

        # From here on this is Query.execute for the single-table case,
        # sharing its helpers so ordering/dedup rules cannot drift.
        if plan.where is not None:
            rows = [row for row in rows if plan.where.evaluate(row)]
        for column, descending in reversed(plan.order_by):
            rows = _stable_sort(rows, column, descending)
        if plan.columns != ["*"]:
            columns: List[str] = []
            for name in plan.columns:
                if name == "*":
                    columns.extend(column_names)
                else:
                    columns.append(name)
        else:
            columns = list(column_names)
        projected = []
        for row in rows:
            projected.append(
                {
                    name: row[name] if name in row else _resolve_bare(row, name)
                    for name in columns
                }
            )
        if plan.distinct:
            projected = _distinct_rows(projected, columns)
        if plan.limit is not None:
            projected = projected[: plan.limit]
        self._count_pushdown(source)
        return ResultSet(columns=columns, rows=projected)

    # ------------------------------------------------------------------
    # lazy index reads
    # ------------------------------------------------------------------
    def fetch_documents(self) -> List[Tuple]:
        try:
            return self._connection().execute(
                "SELECT id, source, accession, length, is_primary "
                "FROM index_documents ORDER BY id"
            ).fetchall()
        except sqlite3.Error as exc:
            raise SnapshotError(
                f"snapshot {self._store.path!r} is corrupted: {exc}"
            ) from exc

    def fetch_token_postings(self, token: str) -> List[Tuple]:
        """One token's postings in (document, insertion) order."""
        try:
            return self._connection().execute(
                "SELECT doc, field, frequency FROM index_postings "
                "WHERE token = ? ORDER BY doc, rowid",
                (token,),
            ).fetchall()
        except sqlite3.Error as exc:
            raise SnapshotError(
                f"snapshot {self._store.path!r} is corrupted: {exc}"
            ) from exc

    def fetch_all_postings(self) -> Dict[int, List[Tuple[str, str, int]]]:
        by_pk: Dict[int, List[Tuple[str, str, int]]] = {}
        try:
            for doc, token, field_name, frequency in self._connection().execute(
                "SELECT doc, token, field, frequency FROM index_postings "
                "ORDER BY rowid"
            ):
                by_pk.setdefault(doc, []).append((token, field_name, frequency))
        except sqlite3.Error as exc:
            raise SnapshotError(
                f"snapshot {self._store.path!r} is corrupted: {exc}"
            ) from exc
        return by_pk

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Hydration and pushdown accounting for ``Aladin.hydration_stats``.

        "Hydrated" means resident in memory: stubs that were faulted in,
        plus any source added after the open — those never came from the
        snapshot, so their ``resident_bytes`` (snapshot payload faulted
        in) is 0.
        """
        resident = set(self._hydrated)
        if self._aladin is not None:
            resident |= set(self._aladin._databases)
        per_source = {
            name: {
                "hydrated": name in resident,
                "resident_bytes": self._hydrated.get(name, 0),
                "pushdown_hits": self._pushdown_counts.get(name, 0),
            }
            for name in sorted(set(self._stubs) | resident)
        }
        return {
            "lazy": True,
            "sources": len(per_source),
            "hydrated": sorted(resident),
            "resident_bytes": sum(self._hydrated.values()),
            "pushdown_hits": sum(self._pushdown_counts.values()),
            "per_source": per_source,
        }
