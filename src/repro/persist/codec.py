"""JSON codecs for the snapshot store.

Every persisted object is a small frozen dataclass from the layers below
(schemas, column profiles, discovered structure, links). The codecs here
turn them into plain JSON-compatible dicts and back, with two rules:

* round-trips are exact — ``from_dict(to_dict(x)) == x`` for every object
  the pipeline can produce;
* serialization is deterministic (``canonical_json`` sorts keys), so the
  per-source content hashes in the manifest are stable across runs.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, Iterator, List

from repro.discovery.model import (
    AttributeRef,
    PathStep,
    Relationship,
    SecondaryPath,
    SourceStructure,
)
from repro.linking.model import AttributeLink, ObjectLink
from repro.relational.columns import ColumnProfile
from repro.relational.schema import (
    Column,
    ForeignKey,
    TableSchema,
    UniqueConstraint,
)
from repro.relational.types import DataType


# Non-finite floats (a ColumnProfile statistic over hostile data can be
# NaN or infinite) must not reach json.dumps bare: the default encoder
# emits ``NaN``/``Infinity``, which is not JSON at all — a strict parser
# rejects the payload and the snapshot's content hashes stop being
# portable. They are wrapped in a one-key marker object instead, which
# round-trips exactly and hashes deterministically.
_NONFINITE_KEY = "$nonfinite"
_NONFINITE_ENCODE = {
    "nan": "nan",
    "inf": "inf",
    "-inf": "-inf",
}
_NONFINITE_DECODE = {
    "nan": math.nan,
    "inf": math.inf,
    "-inf": -math.inf,
}


def _encode_nonfinite(payload: Any) -> Any:
    if isinstance(payload, float) and not math.isfinite(payload):
        if math.isnan(payload):
            tag = "nan"
        else:
            tag = "inf" if payload > 0 else "-inf"
        return {_NONFINITE_KEY: tag}
    if isinstance(payload, dict):
        return {key: _encode_nonfinite(value) for key, value in payload.items()}
    if isinstance(payload, (list, tuple)):
        return [_encode_nonfinite(value) for value in payload]
    return payload


def _decode_nonfinite_object(payload: Dict[str, Any]) -> Any:
    if len(payload) == 1 and _NONFINITE_KEY in payload:
        tag = payload[_NONFINITE_KEY]
        if tag in _NONFINITE_DECODE:
            return _NONFINITE_DECODE[tag]
    return payload


def canonical_json(payload: Any) -> str:
    """Deterministic, *strictly valid* JSON text — the content-hash unit.

    ``allow_nan=False`` makes a bare non-finite float a loud error
    instead of silently invalid JSON; only when one is actually present
    (the raised ``ValueError``) does the payload take the marker-walk
    path — so the common all-finite case (every row of every checkpoint)
    pays no deep rebuild, and the bytes are identical either way.
    """
    try:
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except ValueError:
        return json.dumps(
            _encode_nonfinite(payload),
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=False,
        )


def canonical_loads(text: str) -> Any:
    """Parse :func:`canonical_json` output, restoring non-finite floats."""
    return json.loads(text, object_hook=_decode_nonfinite_object)


def display_json(payload: Any, indent: int = 2) -> str:
    """Human-facing twin of :func:`canonical_json`.

    Same key order and non-finite handling — so what an operator reads
    matches what the store hashes — but indented for terminals instead
    of packed for hashing.  Never feed this to a content hash.
    """
    try:
        return json.dumps(payload, sort_keys=True, indent=indent, allow_nan=False)
    except ValueError:
        return json.dumps(
            _encode_nonfinite(payload),
            sort_keys=True,
            indent=indent,
            allow_nan=False,
        )


def decode_rows(payloads: Iterable[str]) -> Iterator[Any]:
    """Stream-decode row payloads one at a time.

    A generator rather than a list so the lazy pushdown executor can
    filter/limit a table scan without ever holding every decoded row at
    once — the SQLite cursor feeding ``payloads`` and this decoder
    advance in lockstep.
    """
    for text in payloads:
        yield canonical_loads(text)


# ----------------------------------------------------------------------
# relational schemas
# ----------------------------------------------------------------------
def schema_to_dict(schema: TableSchema) -> Dict[str, Any]:
    return {
        "name": schema.name,
        "columns": [
            {"name": c.name, "type": c.data_type.value, "nullable": c.nullable}
            for c in schema.columns
        ],
        "primary_key": list(schema.primary_key) if schema.primary_key else None,
        "unique": [list(u.columns) for u in schema.unique_constraints],
        "foreign_keys": [
            {
                "columns": list(fk.columns),
                "target_table": fk.target_table,
                "target_columns": list(fk.target_columns),
            }
            for fk in schema.foreign_keys
        ],
    }


def schema_from_dict(payload: Dict[str, Any]) -> TableSchema:
    return TableSchema(
        name=payload["name"],
        columns=[
            Column(c["name"], DataType(c["type"]), nullable=c["nullable"])
            for c in payload["columns"]
        ],
        primary_key=tuple(payload["primary_key"]) if payload["primary_key"] else None,
        unique_constraints=[UniqueConstraint(tuple(u)) for u in payload["unique"]],
        foreign_keys=[
            ForeignKey(
                columns=tuple(fk["columns"]),
                target_table=fk["target_table"],
                target_columns=tuple(fk["target_columns"]),
            )
            for fk in payload["foreign_keys"]
        ],
    )


# ----------------------------------------------------------------------
# column profiles
# ----------------------------------------------------------------------
def profile_to_dict(profile: ColumnProfile) -> Dict[str, Any]:
    return {
        "column": profile.column,
        "data_type": profile.data_type.value,
        "row_count": profile.row_count,
        "non_null_count": profile.non_null_count,
        "distinct_count": profile.distinct_count,
        "is_unique": profile.is_unique,
        "avg_length": profile.avg_length,
        "min_length": profile.min_length,
        "max_length": profile.max_length,
        "numeric_fraction": profile.numeric_fraction,
        "alpha_fraction": profile.alpha_fraction,
        "protein_alphabet_fraction": profile.protein_alphabet_fraction,
        "dna_alphabet_fraction": profile.dna_alphabet_fraction,
    }


def profile_from_dict(payload: Dict[str, Any]) -> ColumnProfile:
    payload = dict(payload)
    payload["data_type"] = DataType(payload["data_type"])
    return ColumnProfile(**payload)


# ----------------------------------------------------------------------
# discovered structure
# ----------------------------------------------------------------------
def _relationship_to_dict(relationship: Relationship) -> Dict[str, Any]:
    return {
        "source": relationship.source.qualified,
        "target": relationship.target.qualified,
        "cardinality": relationship.cardinality,
        "origin": relationship.origin,
    }


def _relationship_from_dict(payload: Dict[str, Any]) -> Relationship:
    return Relationship(
        source=AttributeRef.parse(payload["source"]),
        target=AttributeRef.parse(payload["target"]),
        cardinality=payload["cardinality"],
        origin=payload["origin"],
    )


def structure_to_dict(structure: SourceStructure) -> Dict[str, Any]:
    return {
        "source_name": structure.source_name,
        "unique_attributes": sorted(a.qualified for a in structure.unique_attributes),
        "accession_candidates": {
            table: ref.qualified
            for table, ref in structure.accession_candidates.items()
        },
        "relationships": [
            _relationship_to_dict(r) for r in structure.relationships
        ],
        "primary_relations": list(structure.primary_relations),
        "secondary_paths": {
            table: [
                {
                    "target_table": path.target_table,
                    "steps": [
                        {
                            "relationship": _relationship_to_dict(step.relationship),
                            "forward": step.forward,
                        }
                        for step in path.steps
                    ],
                }
                for path in paths
            ]
            for table, paths in structure.secondary_paths.items()
        },
        "unreachable_tables": list(structure.unreachable_tables),
    }


def structure_from_dict(payload: Dict[str, Any]) -> SourceStructure:
    return SourceStructure(
        source_name=payload["source_name"],
        unique_attributes={
            AttributeRef.parse(q) for q in payload["unique_attributes"]
        },
        accession_candidates={
            table: AttributeRef.parse(q)
            for table, q in payload["accession_candidates"].items()
        },
        relationships=[
            _relationship_from_dict(r) for r in payload["relationships"]
        ],
        primary_relations=list(payload["primary_relations"]),
        secondary_paths={
            table: tuple(
                SecondaryPath(
                    target_table=p["target_table"],
                    steps=tuple(
                        PathStep(
                            relationship=_relationship_from_dict(s["relationship"]),
                            forward=s["forward"],
                        )
                        for s in p["steps"]
                    ),
                )
                for p in paths
            )
            for table, paths in payload["secondary_paths"].items()
        },
        unreachable_tables=list(payload["unreachable_tables"]),
    )


# ----------------------------------------------------------------------
# links
# ----------------------------------------------------------------------
def attribute_link_to_dict(link: AttributeLink) -> Dict[str, Any]:
    return {
        "source": link.source,
        "source_attribute": link.source_attribute.qualified,
        "target": link.target,
        "target_attribute": link.target_attribute.qualified,
        "score": link.score,
        "kind": link.kind,
        "encoded": link.encoded,
    }


def attribute_link_from_dict(payload: Dict[str, Any]) -> AttributeLink:
    return AttributeLink(
        source=payload["source"],
        source_attribute=AttributeRef.parse(payload["source_attribute"]),
        target=payload["target"],
        target_attribute=AttributeRef.parse(payload["target_attribute"]),
        score=payload["score"],
        kind=payload["kind"],
        encoded=payload["encoded"],
    )


def object_link_to_dict(link: ObjectLink) -> Dict[str, Any]:
    return {
        "source_a": link.source_a,
        "accession_a": link.accession_a,
        "source_b": link.source_b,
        "accession_b": link.accession_b,
        "kind": link.kind,
        "certainty": link.certainty,
        "evidence": link.evidence,
    }


def object_link_from_dict(payload: Dict[str, Any]) -> ObjectLink:
    return ObjectLink(**payload)
