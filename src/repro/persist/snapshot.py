"""SQLite-backed snapshot store: durable integrated state, warm starts.

The paper's promise is that integration happens *once*; before this
subsystem every process restart re-imported, re-discovered, and re-linked
every source from raw text. A snapshot serializes the entire integrated
state — per-source relational tables, the one-time ColumnProfile
statistics, the discovered structure, the link web, and the BM25 inverted
index — so reopening rehydrates everything directly into the in-memory
caches without running a single discovery, linking, or indexing step.

Layout (one SQLite file):

* ``manifest`` — magic marker, format version, index-built flag;
* ``sources`` — per-source record: content hash, raw input (format, text,
  import options) for later ``update_source`` calls, discovered structure,
  sample rows, row counts;
* ``table_schemas`` / ``rows`` — the relational data, one JSON-encoded
  tuple per row;
* ``profiles`` — the per-column ColumnProfile statistics (Section 4.4's
  compute-once statistics survive restarts);
* ``attribute_links`` / ``object_links`` — the link web, each link stored
  once with its endpoint sources as indexed columns;
* ``index_documents`` / ``index_postings`` — the inverted index, postings
  keyed by document so no re-tokenization happens on load.

Every per-source slice is keyed by source name, which is what makes the
incremental checkpoints cheap: ``checkpoint_source`` deletes and rewrites
exactly one source's rows, profiles, links, and postings in place.

Lifecycle maintenance (the two long-run failure modes of an
always-attached store):

**Online compaction.** Checkpoints are DELETE-then-rewrite, so the file
only ever grows — freed pages land on SQLite's freelist and removed
sources never shrink the file. :meth:`SnapshotStore.compact` rewrites the
live content into a fresh file (``VACUUM INTO`` after folding the WAL
back), re-verifies every per-source manifest content hash against the
compacted rows — and, when called with the live system, against hashes
recomputed from the *in-memory* state — and only then atomically replaces
the snapshot (``os.replace``; stale ``-wal``/``-shm`` sidecars of the old
file are removed so they can never be mis-associated with the new one).
:meth:`SnapshotStore.maybe_compact` is the hands-off policy hook run
after checkpoints: compact once the file exceeds
``PersistConfig.compact_after_bytes`` *and* the reclaimable fraction
(freelist + WAL bytes over total bytes) exceeds
``PersistConfig.compact_churn_ratio``. From the command line::

    python -m repro compact warehouse.snapshot

**Advisory writer locking.** Two processes attached to one snapshot
would silently interleave checkpoints. Any attached writer takes a
sidecar lock file (``<snapshot>.lock``) through
:class:`repro.persist.lock.SnapshotLock`:

* held via ``fcntl.flock`` where available (crash of the holder releases
  it automatically), with an ``O_CREAT | O_EXCL`` fallback that detects
  stale locks by probing the recorded holder PID;
* the lock file records the holder (PID, hostname, timestamp) so a
  refused attach names who owns the file;
* reentrant *within* a process (refcounted), exclusive *across*
  processes — in-process concurrency stays with SQLite's WAL + busy
  timeout exactly as before;
* a second process's ``Aladin.open`` fails fast with
  :class:`~repro.persist.lock.SnapshotLockedError`, blocks up to
  ``lock_timeout``, or degrades to a read-only (detached) open,
  per ``PersistConfig.lock_policy`` / the CLI's ``--read-only`` and
  ``--lock-timeout`` flags; ``force`` breaks a lock whose holder is
  known dead but undetectable (e.g. crashed on another host).
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
import sqlite3
import threading
import time
import urllib.parse
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.access.index import InvertedIndex
from repro.discovery.model import AttributeRef, SourceStructure
from repro.linking.model import AttributeLink, ObjectLink
from repro.metadata.repository import MetadataRepository
from repro.persist import codec
from repro.relational.columns import ColumnProfile
from repro.relational.database import Database
from repro.relational.types import is_null

# Version 2: the persisted config gained `incremental_shared_scorer`.
# Pre-PR-4 readers rebuild AladinConfig with **payload and would die on
# the unknown key with a raw TypeError; the bump turns that into their
# clean "this build reads version 1" SnapshotError instead.
#
# Version 3: snapshots additionally carry the `cells` value index (the
# SQL-pushdown covering index lazy readers answer point lookups from).
# Older builds must refuse v3 files: their checkpoints would rewrite a
# source's rows without maintaining its cells slice, leaving the index
# silently stale for any newer build that reads the file afterwards.
# This build still reads v1/v2 snapshots — lazy opens work, pushdown
# degrades to hydration until the first write upgrades the file.
FORMAT_VERSION = 3
_READ_VERSIONS = (1, 2, 3)
_MAGIC = "repro-aladin-snapshot"


def _encode_row_task(_state, tup) -> str:
    """Encode one raw row tuple; pure, so it can fan across worker pools.

    ``canonical_json`` rather than bare ``json.dumps``: a REAL cell can
    hold a non-finite float (hostile input parsed with ``float``), which
    must become the explicit marker encoding, never an invalid bare
    ``NaN`` token. For finite payloads the bytes are identical, so
    pre-existing content hashes are unaffected.
    """
    return codec.canonical_json(list(tup))


def _encode_rows(rows: List[tuple], executor=None) -> List[str]:
    """JSON-encode raw rows, fanning across ``executor`` when it pays.

    Row payload encoding is the checkpoint's CPU half (the SQLite writes
    are the I/O half). The gate is stricter than the index's tokenization
    fan-out: per-row encoding is so cheap that only a backend with real
    CPU parallelism *and a resident pool* (the fan-out rides workers the
    pipeline already forked, paying no pool spin-up) on a large enough
    batch comes out ahead — a per-call process pool would fork just for
    this and lose. The output is byte-identical to the inline loop in row
    order.
    """
    if (
        executor is None
        or not executor.cpu_parallel
        or not executor.resident
        or not getattr(executor, "pool_alive", False)  # dead pool: a fork
        # round just for row encoding would cost more than it saves
        or executor.workers <= 1
        or len(rows) < 64 * executor.workers
    ):
        return [_encode_row_task(None, tup) for tup in rows]
    chunksize = max(1, len(rows) // (executor.workers * 4))
    return executor.map_ordered(
        _encode_row_task, rows, chunksize=chunksize, stage="checkpoint_encode"
    )

def _hash_stored_source(conn: sqlite3.Connection, name: str) -> str:
    """Recompute one stored source's content hash from its persisted slice.

    Byte-for-byte the hashing order of ``_write_source`` / ``_load_source``:
    per table (sorted by name) the canonical schema JSON, then every row
    payload in row-id order.
    """
    hasher = hashlib.sha256()
    for table_name, schema_json in conn.execute(
        "SELECT table_name, schema FROM table_schemas "
        "WHERE source = ? ORDER BY table_name",
        (name,),
    ):
        hasher.update(schema_json.encode("utf-8"))
        for (data,) in conn.execute(
            "SELECT data FROM rows WHERE source = ? AND table_name = ? "
            "ORDER BY row_id",
            (name, table_name),
        ):
            hasher.update(data.encode("utf-8"))
    return hasher.hexdigest()


def _hash_memory_source(database, legacy_rows: bool = False) -> str:
    """The content hash of a live in-memory source, same byte order.

    ``Database.table_names()`` is sorted, matching the stored slice's
    ``ORDER BY table_name``. ``legacy_rows`` replays the pre-marker row
    encoding (bare ``NaN``/``Infinity`` tokens), which is what a stored
    slice written by an older build hashes to when it carries non-finite
    cells — for finite data the two encodings are byte-identical.
    """
    hasher = hashlib.sha256()
    for table_name in database.table_names():
        table = database.table(table_name)
        schema_json = codec.canonical_json(codec.schema_to_dict(table.schema))
        hasher.update(schema_json.encode("utf-8"))
        for tup in table.raw_rows():
            if legacy_rows:
                # repro-lint: allow[raw-json-dumps] v1/v2 hash replay must reproduce the legacy row bytes exactly
                data = json.dumps(list(tup), separators=(",", ":"))
            else:
                data = _encode_row_task(None, tup)
            hasher.update(data.encode("utf-8"))
    return hasher.hexdigest()


_TABLES = (
    "manifest",
    "sources",
    "table_schemas",
    "rows",
    "profiles",
    "attribute_links",
    "object_links",
    "index_documents",
    "index_postings",
    "cells",
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS manifest (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS sources (
    name TEXT PRIMARY KEY,
    content_hash TEXT NOT NULL,
    format_name TEXT,
    raw_text TEXT,
    import_options TEXT,
    structure TEXT NOT NULL,
    samples TEXT NOT NULL,
    row_counts TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS table_schemas (
    source TEXT NOT NULL,
    table_name TEXT NOT NULL,
    schema TEXT NOT NULL,
    PRIMARY KEY (source, table_name)
);
CREATE TABLE IF NOT EXISTS rows (
    source TEXT NOT NULL,
    table_name TEXT NOT NULL,
    row_id INTEGER NOT NULL,
    data TEXT NOT NULL,
    PRIMARY KEY (source, table_name, row_id)
);
CREATE TABLE IF NOT EXISTS profiles (
    source TEXT NOT NULL,
    table_name TEXT NOT NULL,
    column_name TEXT NOT NULL,
    profile TEXT NOT NULL,
    PRIMARY KEY (source, table_name, column_name)
);
CREATE TABLE IF NOT EXISTS attribute_links (
    source TEXT NOT NULL,
    target TEXT NOT NULL,
    payload TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_attribute_links_source ON attribute_links (source);
CREATE INDEX IF NOT EXISTS idx_attribute_links_target ON attribute_links (target);
CREATE TABLE IF NOT EXISTS object_links (
    source_a TEXT NOT NULL,
    source_b TEXT NOT NULL,
    payload TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_object_links_a ON object_links (source_a);
CREATE INDEX IF NOT EXISTS idx_object_links_b ON object_links (source_b);
CREATE TABLE IF NOT EXISTS index_documents (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    source TEXT NOT NULL,
    accession TEXT NOT NULL,
    length INTEGER NOT NULL,
    is_primary INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_index_documents_source ON index_documents (source);
CREATE TABLE IF NOT EXISTS index_postings (
    source TEXT NOT NULL,
    doc INTEGER NOT NULL,
    token TEXT NOT NULL,
    field TEXT NOT NULL,
    frequency INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_index_postings_source ON index_postings (source);
CREATE INDEX IF NOT EXISTS idx_index_postings_doc ON index_postings (doc);
CREATE INDEX IF NOT EXISTS idx_index_postings_token ON index_postings (token);
CREATE TABLE IF NOT EXISTS cells (
    source TEXT NOT NULL,
    table_name TEXT NOT NULL,
    column_name TEXT NOT NULL,
    row_id INTEGER NOT NULL,
    value NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_cells_lookup
    ON cells (source, table_name, column_name, value, row_id);
"""


def _ensure_schema(conn: sqlite3.Connection) -> None:
    """Create any missing tables/indexes inside the current transaction.

    Statement-by-statement rather than ``executescript`` (which issues an
    implicit COMMIT first and would split a checkpoint's transaction), and
    run by every write path so a v1/v2 file gains the v3 ``cells`` table
    the first time this build writes to it.
    """
    for statement in _SCHEMA.split(";"):
        statement = statement.strip()
        if statement:
            conn.execute(statement)


# ``cells`` carries one row per non-null scalar cell of every stored
# table — the value column is typeless (BLOB affinity, no coercion) so
# TEXT/INTEGER/REAL probes compare exactly as Python equality does on
# the in-memory row tuples. Cells a SQLite bind cannot represent
# losslessly are skipped; lookups for such probe values must therefore
# fall back to the in-memory path (see ``_cell_value``).
def _cell_value(value: Any) -> Optional[Any]:
    """The bindable cells representation of one cell, or None to skip.

    NULL/NaN cells are excluded by the caller (``is_null`` — matching the
    row_ids index, which is non-null only). Out-of-64-bit ints overflow
    the SQLite bind; anything non-scalar has no exact SQL equality.
    ±inf is representable (SQLite REAL) and kept.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value if -(2 ** 63) <= value < 2 ** 63 else None
    if isinstance(value, (float, str)):
        return value
    return None


class SnapshotError(RuntimeError):
    """A snapshot file is missing, corrupted, or from another format version."""


def _env_lazy_open() -> bool:
    """Default for ``PersistConfig.lazy_open``: REPRO_PERSIST_LAZY, else on."""
    raw = os.environ.get("REPRO_PERSIST_LAZY", "").strip().lower()
    if raw in ("0", "false", "no", "off", "eager"):
        return False
    return True


@dataclass
class PersistConfig:
    """Snapshot lifecycle knobs: writer locking and online compaction.

    A *host* property like :class:`~repro.exec.pool.ExecConfig` — it
    governs how this process treats snapshot files, not what the
    integrated data means — so it is not restored from snapshots.

    ``lock_policy`` decides what a writer attach does when another
    process holds the lock: ``"fail"`` raises
    :class:`~repro.persist.lock.SnapshotLockedError` immediately,
    ``"block"`` waits up to ``lock_timeout`` seconds before raising, and
    ``"readonly"`` degrades the open to a detached (non-checkpointing)
    system instead of raising.

    Auto-compaction runs after checkpoints once the snapshot (main file
    plus WAL) exceeds ``compact_after_bytes`` *and* the reclaimable
    fraction — freed pages plus WAL over total bytes — exceeds
    ``compact_churn_ratio``. ``auto_compact=False`` leaves compaction
    fully manual (:meth:`SnapshotStore.compact`, ``repro compact``).
    """

    lock_policy: str = "fail"  # "fail" | "block" | "readonly"
    lock_timeout: float = 10.0  # seconds to wait under the "block" policy
    auto_compact: bool = True
    compact_after_bytes: int = 4 * 1024 * 1024
    compact_churn_ratio: float = 0.5
    # ``Aladin.open`` reads only the manifest and hydrates sources on
    # first touch (REPRO_PERSIST_LAZY=0 / CLI --eager restore the old
    # load-everything open). Host policy like the lock knobs above: how
    # this process pages data in, never restored from snapshots.
    lazy_open: bool = field(default_factory=_env_lazy_open)


@dataclass
class CompactionStats:
    """What one :meth:`SnapshotStore.compact` run did."""

    bytes_before: int  # main file + WAL before compaction
    bytes_after: int
    reclaimed_bytes: int
    seconds: float
    sources_verified: int  # per-source content hashes re-checked

    def render(self) -> str:
        return (
            f"compacted {self.bytes_before} -> {self.bytes_after} bytes "
            f"(reclaimed {self.reclaimed_bytes}, "
            f"{self.sources_verified} sources verified, "
            f"{self.seconds * 1000:.0f} ms)"
        )


@dataclass
class SourceState:
    """One rehydrated source: warm database plus its persisted metadata."""

    name: str
    database: Database
    structure: SourceStructure
    profiles: Dict[AttributeRef, ColumnProfile]
    samples: Dict[str, List[dict]]
    row_counts: Dict[str, int]
    format_name: Optional[str] = None
    raw_text: Optional[str] = None
    import_options: Dict[str, Any] = field(default_factory=dict)


@dataclass
class SnapshotState:
    """Everything a warm start needs, fully deserialized.

    ``config`` is the raw dict of the :class:`AladinConfig` the system was
    integrated with — the core layer rebuilds the dataclass (the persist
    layer sits below core and does not import it).
    """

    sources: List[SourceState]
    attribute_links: List[AttributeLink]
    object_links: List[ObjectLink]
    index: Optional[InvertedIndex]
    config: Optional[Dict[str, Any]] = None


@dataclass
class SourceStub:
    """One source's manifest slice: everything *but* its row data.

    What a lazy open registers per source — the discovered structure, the
    persisted ColumnProfiles (the repository serves statistics from these
    without touching rows), samples, and row counts are all
    O(columns)-sized. The raw text and the row payloads stay on disk
    until :meth:`SnapshotStore.load_source_body` faults them in.
    """

    name: str
    content_hash: str
    structure: SourceStructure
    profiles: Dict[AttributeRef, ColumnProfile]
    samples: Dict[str, List[dict]]
    row_counts: Dict[str, int]
    format_name: Optional[str] = None
    import_options: Dict[str, Any] = field(default_factory=dict)


@dataclass
class SnapshotManifest:
    """The O(manifest) part of a snapshot: stubs, flags, config — no rows."""

    version: int
    index_built: bool
    has_cells: bool  # the v3 pushdown value index exists in this file
    sources: List[SourceStub]
    config: Optional[Dict[str, Any]] = None


@dataclass
class SourceBody:
    """One hydrated source body: the warm database plus its raw input."""

    name: str
    database: Database
    payload_bytes: int  # decoded row-payload volume (the RSS proxy)
    raw_text: Optional[str] = None


# One write mutex per snapshot file (realpath), shared by every store of
# this process. The advisory sidecar lock excludes other *processes*, but
# it is deliberately reentrant within one process — several stores may
# attach to one file — so in-process writers must serialize here or a
# compaction's rewrite-then-swap window could silently drop a sibling
# store's committed checkpoint (the swap replaces the inode the sibling
# just wrote to). Entries are refcounted and evicted when the last
# holder leaves, so a process that touches many distinct snapshot files
# over its lifetime does not accumulate one lock per path forever.
_WRITE_MUTEXES: Dict[str, List[Any]] = {}  # key -> [RLock, holder count]
_WRITE_MUTEXES_GUARD = threading.Lock()


class _write_mutex:
    """Context manager: hold the per-file write mutex for one operation."""

    def __init__(self, path: str):
        self._key = os.path.realpath(path)
        self._entry: Optional[List[Any]] = None

    def __enter__(self) -> "_write_mutex":
        with _WRITE_MUTEXES_GUARD:
            entry = _WRITE_MUTEXES.get(self._key)
            if entry is None:
                entry = _WRITE_MUTEXES[self._key] = [threading.RLock(), 0]
            entry[1] += 1
            self._entry = entry
        entry[0].acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        entry, self._entry = self._entry, None
        entry[0].release()
        with _WRITE_MUTEXES_GUARD:
            entry[1] -= 1
            if entry[1] == 0 and _WRITE_MUTEXES.get(self._key) is entry:
                del _WRITE_MUTEXES[self._key]


def _serialized(method):
    """Run a write method under the file's in-process write mutex.

    Reentrant (the entry's RLock), so serialized methods may call each
    other: the auto-compaction hook runs inside a checkpoint,
    ``maybe_compact`` calls ``compact``.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with _write_mutex(self.path):
            return method(self, *args, **kwargs)

    return wrapper


# Stores currently attached as writers, so fork hygiene reaches them:
# the lock module drops a child's inherited registry holds, but a child
# also inherits each store's _lock handle — without this reset the
# child's `write_locked` would claim a lock its process does not hold
# (and attach_writer would no-op instead of re-acquiring).
_ATTACHED_STORES: "weakref.WeakSet" = weakref.WeakSet()


def _forget_attached_writers() -> None:
    for store in list(_ATTACHED_STORES):
        store._lock = None
    for store in list(_ATTACHED_STORES):
        _ATTACHED_STORES.discard(store)


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_forget_attached_writers)


class SnapshotStore:
    """One snapshot file: full save/load plus per-source checkpoints."""

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        self._lock = None  # SnapshotLock while attached as a writer
        #: Optional :class:`~repro.obs.trace.Tracer`; the owning
        #: ``Aladin`` sets it so full writes and compactions record
        #: ``persist.*`` spans.  ``None`` keeps the store span-free.
        self.tracer = None

    @contextmanager
    def _span(self, name: str, **attributes):
        tracer = self.tracer
        if tracer is None:
            yield None
        else:
            with tracer.span(name, **attributes) as handle:
                yield handle

    # ------------------------------------------------------------------
    # advisory writer lock
    # ------------------------------------------------------------------
    @property
    def write_locked(self) -> bool:
        """Is this store attached as a writer (holding the sidecar lock)?"""
        return self._lock is not None

    def attach_writer(self, timeout: float = 0.0, force: bool = False) -> None:
        """Take the snapshot's advisory writer lock (see module docs).

        Raises :class:`~repro.persist.lock.SnapshotLockedError` when
        another process holds it past ``timeout`` seconds; ``force``
        breaks an existing lock first. Reentrant within this process.
        """
        from repro.persist.lock import SnapshotLock  # import cycle: lock -> errors

        if self._lock is None:
            lock = SnapshotLock(self.path)
            lock.acquire(timeout=timeout, force=force)
            self._lock = lock
            _ATTACHED_STORES.add(self)

    def detach_writer(self) -> None:
        """Release this store's hold on the writer lock."""
        if self._lock is not None:
            self._lock.release()
            self._lock = None
        _ATTACHED_STORES.discard(self)

    # ------------------------------------------------------------------
    # connection plumbing
    # ------------------------------------------------------------------
    def _connect(
        self, read_only: bool = False, cross_thread: bool = False
    ) -> sqlite3.Connection:
        # ``cross_thread`` relaxes sqlite3's same-thread check so a
        # connection can at least be *closed* from another thread (a lazy
        # session hands each worker thread its own connection but tears
        # them all down from whichever thread calls ``close``). Callers
        # must still confine each connection's queries to one thread.
        if read_only:
            # ``mode=ro`` can never take a write lock or create stray
            # -wal/-shm sidecars — what lazy readers under the read-only
            # lock policy need while a writer compacts. SQLite refuses a
            # read-only open of a WAL database whose -wal needs recovery
            # (or whose -shm it may not create); fall through to the
            # normal read-write connection in that case — reads still
            # work, the pragmas below stay safe.
            uri = f"file:{urllib.parse.quote(os.path.abspath(self.path))}?mode=ro"
            try:
                conn = sqlite3.connect(
                    uri, uri=True, check_same_thread=not cross_thread
                )
                conn.execute("PRAGMA busy_timeout = 5000")
                return conn
            except sqlite3.DatabaseError:
                pass
        try:
            conn = sqlite3.connect(self.path, check_same_thread=not cross_thread)
            # Concurrent-writer safety: WAL keeps readers unblocked while
            # an off-critical-path checkpoint (the pipelined add_source's
            # final task) writes, and the busy timeout makes two stores on
            # the same file queue instead of failing fast.
            conn.execute("PRAGMA busy_timeout = 5000")
            conn.execute("PRAGMA synchronous = NORMAL")
        except sqlite3.DatabaseError as exc:
            raise SnapshotError(
                f"{self.path!r} is not a readable snapshot: {exc}"
            ) from exc
        try:
            conn.execute("PRAGMA journal_mode = WAL")
        except sqlite3.DatabaseError:
            # Read-only media (or a file that is not a database at all —
            # the manifest check reports that case properly): rollback
            # journaling still serves plain reads.
            pass
        return conn

    def _read_manifest(self, conn: sqlite3.Connection) -> Dict[str, str]:
        try:
            rows = conn.execute("SELECT key, value FROM manifest").fetchall()
        except sqlite3.OperationalError as exc:
            # A valid SQLite file without our tables: some other database.
            raise SnapshotError(
                f"{self.path!r} is an SQLite file but not an ALADIN snapshot "
                f"({exc})"
            ) from exc
        except sqlite3.DatabaseError as exc:
            raise SnapshotError(
                f"{self.path!r} is not a readable snapshot: {exc}"
            ) from exc
        manifest = dict(rows)
        if manifest.get("magic") != _MAGIC:
            raise SnapshotError(
                f"{self.path!r} is an SQLite file but not an ALADIN snapshot"
            )
        version = int(manifest.get("format_version", -1))
        if version not in _READ_VERSIONS:
            raise SnapshotError(
                f"snapshot {self.path!r} has format version {version}; "
                f"this build reads versions "
                f"{', '.join(str(v) for v in _READ_VERSIONS)}"
            )
        return manifest

    def _set_manifest(self, conn: sqlite3.Connection, key: str, value: str) -> None:
        conn.execute(
            "INSERT INTO manifest (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, value),
        )

    # ------------------------------------------------------------------
    # full save
    # ------------------------------------------------------------------
    @_serialized
    def write_full(self, aladin) -> None:
        """Serialize the entire integrated state, replacing any previous
        content of the snapshot file."""
        with self._span(
            "persist.write_full", sources=len(aladin.source_names())
        ):
            conn = self._connect()
            try:
                with conn:
                    self._ensure_overwritable(conn)
                    try:
                        _ensure_schema(conn)
                    except sqlite3.DatabaseError as exc:
                        raise SnapshotError(
                            f"cannot write snapshot {self.path!r}: {exc}"
                        ) from exc
                    for table in _TABLES:
                        conn.execute(f"DELETE FROM {table}")
                    self._set_manifest(conn, "magic", _MAGIC)
                    self._set_manifest(conn, "format_version", str(FORMAT_VERSION))
                    self._write_config(conn, aladin)
                    executor = getattr(aladin, "_executor", None)
                    for name in aladin.source_names():
                        self._write_source(conn, aladin, name, executor=executor)
                    self._write_all_links(conn, aladin.repository)
                    self._write_index_full(conn, aladin._index)
            finally:
                conn.close()

    def _ensure_overwritable(self, conn: sqlite3.Connection) -> None:
        """Refuse to clobber an SQLite file that is not ours.

        A fresh or empty file is fine; anything carrying tables must bear
        the snapshot magic (any format version — overwriting an outdated
        snapshot is the upgrade path). This keeps ``save`` from silently
        deleting data out of an unrelated application database.
        """
        try:
            has_tables = conn.execute(
                "SELECT 1 FROM sqlite_master WHERE type = 'table' LIMIT 1"
            ).fetchone()
        except sqlite3.DatabaseError as exc:
            raise SnapshotError(
                f"{self.path!r} is not a readable snapshot: {exc}"
            ) from exc
        if not has_tables:
            return
        magic = None
        try:
            row = conn.execute(
                "SELECT value FROM manifest WHERE key = 'magic'"
            ).fetchone()
            magic = row[0] if row else None
        except sqlite3.DatabaseError:
            pass
        if magic != _MAGIC:
            raise SnapshotError(
                f"refusing to overwrite {self.path!r}: it is an SQLite "
                "database but not an ALADIN snapshot"
            )

    def _write_source(
        self, conn: sqlite3.Connection, aladin, name: str, executor=None
    ) -> None:
        # The hash walk below (per table sorted by name: schema JSON,
        # then row payloads in row-id order) is the content-hash
        # definition; ``_load_source``, ``_hash_stored_source``, and
        # ``_hash_memory_source`` replay it byte for byte, and the
        # compaction tests fail loudly if any of the four drift.
        database = aladin.database(name)
        record = aladin.repository.source(name)
        hasher = hashlib.sha256()
        for table_name in database.table_names():
            table = database.table(table_name)
            schema_json = codec.canonical_json(codec.schema_to_dict(table.schema))
            hasher.update(schema_json.encode("utf-8"))
            conn.execute(
                "INSERT INTO table_schemas (source, table_name, schema) "
                "VALUES (?, ?, ?)",
                (name, table_name, schema_json),
            )
            raw_rows = list(table.raw_rows())
            encoded = _encode_rows(raw_rows, executor)
            payloads = []
            for row_id, data in enumerate(encoded):
                hasher.update(data.encode("utf-8"))
                payloads.append((name, table_name, row_id, data))
            conn.executemany(
                "INSERT INTO rows (source, table_name, row_id, data) "
                "VALUES (?, ?, ?, ?)",
                payloads,
            )
            # The pushdown value index: one cells row per non-null scalar
            # cell, mirroring the ColumnStore's row_ids index so a lazy
            # reader's point lookups are answered by SQL instead of
            # hydration. Unrepresentable values are skipped — the reader
            # rejects such probes and falls back (see ``_cell_value``).
            column_names = table.schema.column_names
            cells = []
            for row_id, tup in enumerate(raw_rows):
                for position, value in enumerate(tup):
                    if is_null(value):
                        continue
                    stored = _cell_value(value)
                    if stored is None:
                        continue
                    cells.append(
                        (name, table_name, column_names[position], row_id, stored)
                    )
            conn.executemany(
                "INSERT INTO cells (source, table_name, column_name, row_id, value) "
                "VALUES (?, ?, ?, ?, ?)",
                cells,
            )
        conn.executemany(
            "INSERT INTO profiles (source, table_name, column_name, profile) "
            "VALUES (?, ?, ?, ?)",
            [
                (
                    name,
                    attr.table,
                    attr.column,
                    codec.canonical_json(codec.profile_to_dict(profile)),
                )
                for attr, profile in sorted(
                    record.profiles.items(), key=lambda item: item[0].qualified
                )
            ],
        )
        raw = aladin._raw_inputs.get(name)
        conn.execute(
            "INSERT INTO sources (name, content_hash, format_name, raw_text, "
            "import_options, structure, samples, row_counts) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                name,
                hasher.hexdigest(),
                raw[0] if raw else None,
                raw[1] if raw else None,
                codec.canonical_json(raw[2]) if raw else None,
                codec.canonical_json(codec.structure_to_dict(record.structure)),
                codec.canonical_json(record.sample_rows),
                codec.canonical_json(record.row_counts),
            ),
        )

    def _write_all_links(
        self, conn: sqlite3.Connection, repository: MetadataRepository
    ) -> None:
        conn.executemany(
            "INSERT INTO attribute_links (source, target, payload) VALUES (?, ?, ?)",
            [
                (
                    link.source,
                    link.target,
                    codec.canonical_json(codec.attribute_link_to_dict(link)),
                )
                for link in repository.attribute_links()
            ],
        )
        conn.executemany(
            "INSERT INTO object_links (source_a, source_b, payload) VALUES (?, ?, ?)",
            [
                (
                    link.source_a,
                    link.source_b,
                    codec.canonical_json(codec.object_link_to_dict(link)),
                )
                for link in repository.object_links()
            ],
        )

    def _write_index_full(
        self, conn: sqlite3.Connection, index: Optional[InvertedIndex]
    ) -> None:
        conn.execute("DELETE FROM index_postings")
        conn.execute("DELETE FROM index_documents")
        if index is None:
            self._set_manifest(conn, "index_built", "0")
            return
        for source, accession, length, is_primary, postings in index.export_documents():
            self._write_document(
                conn, source, accession, length, is_primary, postings
            )
        self._set_manifest(conn, "index_built", "1")

    def _write_document(
        self,
        conn: sqlite3.Connection,
        source: str,
        accession: str,
        length: int,
        is_primary: bool,
        postings,
    ) -> None:
        cursor = conn.execute(
            "INSERT INTO index_documents (source, accession, length, is_primary) "
            "VALUES (?, ?, ?, ?)",
            (source, accession, length, int(is_primary)),
        )
        doc_pk = cursor.lastrowid
        conn.executemany(
            "INSERT INTO index_postings (source, doc, token, field, frequency) "
            "VALUES (?, ?, ?, ?, ?)",
            [
                (source, doc_pk, token, field_name, frequency)
                for token, field_name, frequency in postings
            ],
        )

    # ------------------------------------------------------------------
    # per-source incremental checkpoints
    # ------------------------------------------------------------------
    @_serialized
    def checkpoint_source(self, aladin, name: str, executor=None) -> None:
        """Rewrite exactly one source's slice of the snapshot in place.

        Called after ``add_source`` / ``update_source``: the source's rows,
        profiles, structure record, links touching it, and index postings
        are replaced; every other source's slice stays byte-identical.
        ``executor`` (the pipeline's worker pool, resident or per-call)
        fans the row payload encoding when the backend has CPU
        parallelism; the written bytes are identical either way.
        """
        conn = self._connect()
        try:
            with conn:
                self._read_manifest(conn)
                _ensure_schema(conn)  # upgrades a v1/v2 file: adds `cells`
                self._write_config(conn, aladin)
                self._delete_source_slice(conn, name)
                self._write_source(conn, aladin, name, executor=executor)
                self._write_source_links(conn, aladin.repository, name)
                self._checkpoint_index(conn, aladin, name)
        finally:
            conn.close()

    def _write_config(self, conn: sqlite3.Connection, aladin) -> None:
        # asdict keeps this layer ignorant of the core config classes.
        self._set_manifest(
            conn, "config", codec.canonical_json(dataclasses.asdict(aladin.config))
        )
        # The written config follows *this* build's schema, so the file is
        # now a current-version snapshot even if it was opened as an older
        # one — stamp the version wherever the config lands, or an old
        # build could read a file whose manifest undersells its content.
        self._set_manifest(conn, "format_version", str(FORMAT_VERSION))

    @_serialized
    def checkpoint_remove(self, name: str) -> None:
        """Drop one source's slice (rows, profiles, links, postings)."""
        conn = self._connect()
        try:
            with conn:
                self._read_manifest(conn)
                _ensure_schema(conn)  # a v1/v2 file has no `cells` to delete from
                self._delete_source_slice(conn, name)
        finally:
            conn.close()

    @_serialized
    def remove_object_link(self, link: ObjectLink) -> int:
        """Delete one object link's row (link-level user feedback).

        Matches the repository's semantics — normalized endpoints plus
        kind — by scanning only the rows between the link's two endpoint
        sources (indexed columns), not the whole table.
        """
        normalized = link.normalized()
        key = (
            normalized.source_a,
            normalized.accession_a,
            normalized.source_b,
            normalized.accession_b,
            normalized.kind,
        )
        conn = self._connect()
        try:
            with conn:
                self._read_manifest(conn)
                doomed = []
                for rowid, payload in conn.execute(
                    "SELECT rowid, payload FROM object_links "
                    "WHERE (source_a = ? AND source_b = ?) "
                    "OR (source_a = ? AND source_b = ?)",
                    (link.source_a, link.source_b, link.source_b, link.source_a),
                ):
                    candidate = codec.object_link_from_dict(
                        codec.canonical_loads(payload)
                    ).normalized()
                    if (
                        candidate.source_a,
                        candidate.accession_a,
                        candidate.source_b,
                        candidate.accession_b,
                        candidate.kind,
                    ) == key:
                        doomed.append(rowid)
                for rowid in doomed:
                    conn.execute(
                        "DELETE FROM object_links WHERE rowid = ?", (rowid,)
                    )
                return len(doomed)
        finally:
            conn.close()

    @_serialized
    def write_index(self, index: Optional[InvertedIndex]) -> None:
        """Persist the inverted index (first lazy build after a save)."""
        conn = self._connect()
        try:
            with conn:
                self._read_manifest(conn)
                _ensure_schema(conn)  # a v1/v2 file lacks the token index
                try:
                    self._write_index_full(conn, index)
                except sqlite3.DatabaseError as exc:
                    raise SnapshotError(
                        f"cannot write index to snapshot {self.path!r}: {exc}"
                    ) from exc
        finally:
            conn.close()

    def _delete_source_slice(self, conn: sqlite3.Connection, name: str) -> None:
        conn.execute("DELETE FROM sources WHERE name = ?", (name,))
        conn.execute("DELETE FROM table_schemas WHERE source = ?", (name,))
        conn.execute("DELETE FROM rows WHERE source = ?", (name,))
        conn.execute("DELETE FROM cells WHERE source = ?", (name,))
        conn.execute("DELETE FROM profiles WHERE source = ?", (name,))
        conn.execute(
            "DELETE FROM attribute_links WHERE source = ? OR target = ?",
            (name, name),
        )
        conn.execute(
            "DELETE FROM object_links WHERE source_a = ? OR source_b = ?",
            (name, name),
        )
        conn.execute("DELETE FROM index_postings WHERE source = ?", (name,))
        conn.execute("DELETE FROM index_documents WHERE source = ?", (name,))

    def _write_source_links(
        self, conn: sqlite3.Connection, repository: MetadataRepository, name: str
    ) -> None:
        conn.executemany(
            "INSERT INTO attribute_links (source, target, payload) VALUES (?, ?, ?)",
            [
                (
                    link.source,
                    link.target,
                    codec.canonical_json(codec.attribute_link_to_dict(link)),
                )
                for link in repository.attribute_links()
                if name in (link.source, link.target)
            ],
        )
        conn.executemany(
            "INSERT INTO object_links (source_a, source_b, payload) VALUES (?, ?, ?)",
            [
                (
                    link.source_a,
                    link.source_b,
                    codec.canonical_json(codec.object_link_to_dict(link)),
                )
                for link in repository.object_links()
                if name in (link.source_a, link.source_b)
            ],
        )

    def _checkpoint_index(self, conn: sqlite3.Connection, aladin, name: str) -> None:
        index = aladin._index
        if index is None:
            return
        manifest = dict(conn.execute("SELECT key, value FROM manifest").fetchall())
        if manifest.get("index_built") != "1":
            # The index was built lazily after the last full save: persist
            # it whole once, then later checkpoints stay per-source.
            self._write_index_full(conn, index)
            return
        for source, accession, length, is_primary, postings in index.export_documents(
            source=name
        ):
            self._write_document(
                conn, source, accession, length, is_primary, postings
            )

    # ------------------------------------------------------------------
    # online compaction
    # ------------------------------------------------------------------
    def file_stats(self) -> Dict[str, Any]:
        """Size and churn accounting of the snapshot on disk.

        ``reclaimable_bytes`` is what compaction would free: SQLite's
        freelist (pages dead since DELETE-then-rewrite checkpoints and
        removed sources) plus the WAL, which compaction folds back into
        the main file. ``churn_ratio`` is the reclaimable fraction —
        the auto-compaction trigger.
        """
        size = os.path.getsize(self.path) if os.path.exists(self.path) else 0
        wal = 0
        if os.path.exists(self.path + "-wal"):
            wal = os.path.getsize(self.path + "-wal")
        freelist_bytes = 0
        if size:
            conn = self._connect()
            try:
                page_size = conn.execute("PRAGMA page_size").fetchone()[0]
                freelist = conn.execute("PRAGMA freelist_count").fetchone()[0]
                freelist_bytes = page_size * freelist
            finally:
                conn.close()
        total = size + wal
        reclaimable = freelist_bytes + wal
        return {
            "file_bytes": size,
            "wal_bytes": wal,
            "total_bytes": total,
            "reclaimable_bytes": reclaimable,
            "churn_ratio": reclaimable / total if total else 0.0,
        }

    @_serialized
    def compact(self, aladin=None) -> CompactionStats:
        """Rewrite the live content into a fresh file and swap it in.

        The compacted file is written next to the snapshot (``VACUUM
        INTO`` after folding the WAL back into the main file), then
        every per-source manifest content hash is re-verified against
        the compacted rows — and, when ``aladin`` is given, against
        hashes recomputed from the in-memory state — before the atomic
        ``os.replace``. A failure at any point leaves the original
        snapshot untouched.

        Callers that share the file across processes must hold the
        writer lock (:meth:`attach_writer`); concurrent *readers* of the
        pre-compaction file should reopen after a compaction.
        """
        started = time.perf_counter()
        with self._span("persist.compact") as span:
            if not os.path.exists(self.path):
                raise SnapshotError(f"snapshot {self.path!r} does not exist")
            before = self.file_stats()
            tmp = self.path + ".compact"
            self._remove_file_set(tmp)
            conn = self._connect()
            try:
                self._read_manifest(conn)  # never "compact" a foreign database
                # Fold the WAL into the main file so VACUUM INTO sees — and
                # the leftover sidecar after the swap holds — nothing live.
                conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
                try:
                    conn.execute("VACUUM INTO ?", (tmp,))
                except sqlite3.DatabaseError as exc:
                    raise SnapshotError(
                        f"cannot compact snapshot {self.path!r}: {exc}"
                    ) from exc
            finally:
                conn.close()
            try:
                verified = self._verify_compacted(tmp, aladin)
                os.replace(tmp, self.path)
            except BaseException:
                self._remove_file_set(tmp)
                raise
            # The old file's journal sidecars must not survive next to the
            # new file — SQLite could mis-associate them. The WAL was
            # truncated above, so nothing live is lost.
            self._remove_file_set(self.path, main=False)
            after = self.file_stats()
            stats = CompactionStats(
                bytes_before=before["total_bytes"],
                bytes_after=after["total_bytes"],
                reclaimed_bytes=before["total_bytes"] - after["total_bytes"],
                seconds=time.perf_counter() - started,
                sources_verified=verified,
            )
            if span is not None:
                span.set(reclaimed_bytes=stats.reclaimed_bytes)
            return stats

    @_serialized
    def maybe_compact(self, aladin, policy: PersistConfig) -> Optional[CompactionStats]:
        """The auto-compaction policy hook, run after checkpoints.

        Compacts when the policy says the accumulated churn is worth
        reclaiming (see :class:`PersistConfig`); returns the stats of a
        run, or ``None`` when no compaction was due.
        """
        if not policy.auto_compact:
            return None
        # Runs after *every* checkpoint, so gate on the cheap stat-only
        # size check first; the freelist probe (a SQLite connection)
        # only happens once the file is big enough to be worth it.
        size = os.path.getsize(self.path) if os.path.exists(self.path) else 0
        if os.path.exists(self.path + "-wal"):
            size += os.path.getsize(self.path + "-wal")
        if size < policy.compact_after_bytes:
            return None
        if self.file_stats()["churn_ratio"] < policy.compact_churn_ratio:
            return None
        return self.compact(aladin)

    @staticmethod
    def _remove_file_set(path: str, main: bool = True) -> None:
        """Remove a SQLite file and/or its journal sidecars, quietly."""
        doomed = ([path] if main else []) + [path + "-wal", path + "-shm"]
        for target in doomed:
            try:
                os.unlink(target)
            except FileNotFoundError:
                pass

    def _verify_compacted(self, tmp_path: str, aladin) -> int:
        """Re-verify the compacted file's manifest hashes; return count.

        Every source's content hash is recomputed from the compacted
        rows and checked against the manifest it carries; with the live
        system at hand, the same hashes are recomputed a third time from
        the in-memory tables — the compacted file must agree with both
        or the swap is refused.
        """
        tmp_store = SnapshotStore(tmp_path)
        conn = tmp_store._connect()
        file_hashes: Dict[str, str] = {}
        try:
            tmp_store._read_manifest(conn)
            for name, stored in conn.execute(
                "SELECT name, content_hash FROM sources ORDER BY name"
            ).fetchall():
                recomputed = _hash_stored_source(conn, name)
                if recomputed != stored:
                    raise SnapshotError(
                        f"compaction of {self.path!r} produced a content "
                        f"hash mismatch for source {name!r}; the original "
                        "snapshot was left untouched"
                    )
                file_hashes[name] = stored
        finally:
            conn.close()
        if aladin is not None:
            if sorted(aladin.source_names()) != sorted(file_hashes):
                raise SnapshotError(
                    f"compaction of {self.path!r} does not match the "
                    "in-memory state (source sets differ); the original "
                    "snapshot was left untouched"
                )
            for name in aladin.source_names():
                database = aladin.database(name)
                if _hash_memory_source(database) == file_hashes[name]:
                    continue
                # An untouched slice written by a pre-marker build hashes
                # to the legacy row encoding (bare NaN tokens for
                # non-finite cells); accept it before refusing the swap.
                if (
                    _hash_memory_source(database, legacy_rows=True)
                    == file_hashes[name]
                ):
                    continue
                raise SnapshotError(
                    f"compaction of {self.path!r} does not match the "
                    f"in-memory state (content hash differs for source "
                    f"{name!r}); the original snapshot was left untouched"
                )
        return len(file_hashes)

    # ------------------------------------------------------------------
    # load
    # ------------------------------------------------------------------
    def load_state(self) -> SnapshotState:
        """Deserialize the snapshot into warm, ready-to-attach state."""
        if not os.path.exists(self.path):
            raise SnapshotError(f"snapshot {self.path!r} does not exist")
        conn = self._connect()
        try:
            manifest = self._read_manifest(conn)
            try:
                sources = [
                    self._load_source(conn, row)
                    for row in conn.execute(
                        "SELECT name, content_hash, format_name, raw_text, "
                        "import_options, structure, samples, row_counts "
                        "FROM sources ORDER BY name"
                    ).fetchall()
                ]
                attribute_links = [
                    codec.attribute_link_from_dict(codec.canonical_loads(payload))
                    for (payload,) in conn.execute(
                        "SELECT payload FROM attribute_links ORDER BY rowid"
                    )
                ]
                object_links = [
                    codec.object_link_from_dict(codec.canonical_loads(payload))
                    for (payload,) in conn.execute(
                        "SELECT payload FROM object_links ORDER BY rowid"
                    )
                ]
                index = (
                    self._load_index(conn)
                    if manifest.get("index_built") == "1"
                    else None
                )
            except (sqlite3.DatabaseError, json.JSONDecodeError, KeyError,
                    ValueError, TypeError) as exc:
                raise SnapshotError(
                    f"snapshot {self.path!r} is corrupted: {exc}"
                ) from exc
        finally:
            conn.close()
        config_json = manifest.get("config")
        return SnapshotState(
            sources=sources,
            attribute_links=attribute_links,
            object_links=object_links,
            index=index,
            config=json.loads(config_json) if config_json else None,
        )

    def _load_tables(
        self,
        conn: sqlite3.Connection,
        name: str,
        content_hash: str,
        materialize: bool = True,
    ) -> Tuple[Database, int]:
        """Rebuild one source's tables from its stored slice, hash-verified.

        Returns the warm database plus the decoded row-payload volume in
        bytes (the RSS proxy lazy hydration accounts per source). With
        ``materialize=False`` the ColumnStore access paths are left
        unbuilt — the lazy path defers them to first access so a
        snapshot-backed lookup can be answered by pushdown instead.
        """
        hasher = hashlib.sha256()
        database = Database(name)
        payload_bytes = 0
        for table_name, schema_json in conn.execute(
            "SELECT table_name, schema FROM table_schemas "
            "WHERE source = ? ORDER BY table_name",
            (name,),
        ):
            hasher.update(schema_json.encode("utf-8"))
            table = database.create_table(
                codec.schema_from_dict(codec.canonical_loads(schema_json))
            )
            tuples = []
            for (data,) in conn.execute(
                "SELECT data FROM rows WHERE source = ? AND table_name = ? "
                "ORDER BY row_id",
                (name, table_name),
            ):
                hasher.update(data.encode("utf-8"))
                payload_bytes += len(data)
                tuples.append(codec.canonical_loads(data))
            table.bulk_load(tuples, materialize=materialize)
        if hasher.hexdigest() != content_hash:
            raise SnapshotError(
                f"snapshot {self.path!r}: content hash mismatch for source "
                f"{name!r} — the stored rows do not match the manifest"
            )
        return database, payload_bytes

    def _load_source(self, conn: sqlite3.Connection, row: Tuple) -> SourceState:
        (name, content_hash, format_name, raw_text, import_options,
         structure_json, samples_json, row_counts_json) = row
        database, _ = self._load_tables(conn, name, content_hash)
        profiles: Dict[AttributeRef, ColumnProfile] = {}
        for table_name, column_name, profile_json in conn.execute(
            "SELECT table_name, column_name, profile FROM profiles "
            "WHERE source = ? ORDER BY table_name, column_name",
            (name,),
        ):
            profile = codec.profile_from_dict(codec.canonical_loads(profile_json))
            profiles[AttributeRef(table_name, column_name)] = profile
            database.table(table_name).columns.restore_profile(column_name, profile)
        return SourceState(
            name=name,
            database=database,
            structure=codec.structure_from_dict(codec.canonical_loads(structure_json)),
            profiles=profiles,
            samples=codec.canonical_loads(samples_json),
            row_counts=json.loads(row_counts_json),
            format_name=format_name,
            raw_text=raw_text,
            import_options=json.loads(import_options) if import_options else {},
        )

    # ------------------------------------------------------------------
    # lazy load: manifest now, bodies on first touch
    # ------------------------------------------------------------------
    def load_manifest(self) -> SnapshotManifest:
        """Read the O(manifest) slice: stubs, flags, config — no row data.

        This is the lazy open's whole I/O bill: one row per source plus
        the per-column profiles. Row payloads, raw inputs, links, and
        postings stay on disk until :meth:`load_source_body` (or the
        lazy session's link/index loaders) fault them in.
        """
        if not os.path.exists(self.path):
            raise SnapshotError(f"snapshot {self.path!r} does not exist")
        conn = self._connect(read_only=True)
        try:
            manifest = self._read_manifest(conn)
            try:
                # A v1/v2 file has no cells table; pushdown degrades to
                # hydration for its sources until the first write upgrades
                # the schema (and per-source availability is re-probed).
                has_cells = (
                    conn.execute(
                        "SELECT 1 FROM sqlite_master "
                        "WHERE type = 'table' AND name = 'cells'"
                    ).fetchone()
                    is not None
                )
                profiles_by_source: Dict[str, Dict[AttributeRef, ColumnProfile]] = {}
                for source, table_name, column_name, profile_json in conn.execute(
                    "SELECT source, table_name, column_name, profile "
                    "FROM profiles ORDER BY source, table_name, column_name"
                ):
                    profiles_by_source.setdefault(source, {})[
                        AttributeRef(table_name, column_name)
                    ] = codec.profile_from_dict(codec.canonical_loads(profile_json))
                stubs = []
                for (name, content_hash, format_name, import_options,
                     structure_json, samples_json, row_counts_json) in conn.execute(
                    "SELECT name, content_hash, format_name, import_options, "
                    "structure, samples, row_counts FROM sources ORDER BY name"
                ):
                    stubs.append(SourceStub(
                        name=name,
                        content_hash=content_hash,
                        structure=codec.structure_from_dict(
                            codec.canonical_loads(structure_json)
                        ),
                        profiles=profiles_by_source.get(name, {}),
                        samples=codec.canonical_loads(samples_json),
                        row_counts=json.loads(row_counts_json),
                        format_name=format_name,
                        import_options=(
                            json.loads(import_options) if import_options else {}
                        ),
                    ))
            except (sqlite3.DatabaseError, json.JSONDecodeError, KeyError,
                    ValueError, TypeError) as exc:
                raise SnapshotError(
                    f"snapshot {self.path!r} is corrupted: {exc}"
                ) from exc
        finally:
            conn.close()
        config_json = manifest.get("config")
        return SnapshotManifest(
            version=int(manifest.get("format_version", -1)),
            index_built=manifest.get("index_built") == "1",
            has_cells=has_cells,
            sources=stubs,
            config=json.loads(config_json) if config_json else None,
        )

    def content_fingerprint(self) -> str:
        """One hash over the snapshot's per-source content hashes.

        Cheap — a manifest-sized SELECT on a short-lived read-only
        connection — and it changes exactly when a writer's checkpoint
        changes what a reader would observe. Serving layers key result
        caches on it, so a checkpoint invalidates precisely: same
        fingerprint, same bytes.
        """
        if not os.path.exists(self.path):
            raise SnapshotError(f"snapshot {self.path!r} does not exist")
        conn = self._connect(read_only=True)
        try:
            manifest = self._read_manifest(conn)
            try:
                rows = conn.execute(
                    "SELECT name, content_hash FROM sources ORDER BY name"
                ).fetchall()
            except sqlite3.DatabaseError as exc:
                raise SnapshotError(
                    f"snapshot {self.path!r} is corrupted: {exc}"
                ) from exc
        finally:
            conn.close()
        hasher = hashlib.sha256()
        hasher.update(manifest.get("index_built", "").encode("utf-8"))
        for name, content_hash in rows:
            hasher.update(b"\x00" + name.encode("utf-8"))
            hasher.update(b"\x01" + content_hash.encode("utf-8"))
        return hasher.hexdigest()

    def load_source_body(self, name: str, materialize: bool = True) -> SourceBody:
        """Fault in exactly one source's row data (the lazy hydration read).

        The content hash is re-fetched rather than trusted from the stub:
        a writer may have checkpointed the source since the manifest was
        read, and the single read transaction below guarantees the hash
        and the rows it verifies come from one consistent WAL snapshot —
        old or new, never torn.
        """
        if not os.path.exists(self.path):
            raise SnapshotError(f"snapshot {self.path!r} does not exist")
        conn = self._connect(read_only=True)
        try:
            try:
                conn.execute("BEGIN")
            except sqlite3.DatabaseError:
                pass  # already in a transaction: still one snapshot
            try:
                self._read_manifest(conn)
                row = conn.execute(
                    "SELECT content_hash, raw_text FROM sources WHERE name = ?",
                    (name,),
                ).fetchone()
                if row is None:
                    raise SnapshotError(
                        f"snapshot {self.path!r} has no source {name!r}"
                    )
                content_hash, raw_text = row
                database, payload_bytes = self._load_tables(
                    conn, name, content_hash, materialize=materialize
                )
            except (sqlite3.DatabaseError, json.JSONDecodeError, KeyError,
                    ValueError, TypeError) as exc:
                raise SnapshotError(
                    f"snapshot {self.path!r} is corrupted: {exc}"
                ) from exc
        finally:
            try:
                conn.rollback()
            except sqlite3.Error:
                pass
            conn.close()
        return SourceBody(
            name=name,
            database=database,
            payload_bytes=payload_bytes,
            raw_text=raw_text,
        )

    def _load_index(self, conn: sqlite3.Connection) -> InvertedIndex:
        index = InvertedIndex()
        postings_by_doc: Dict[int, List[Tuple[str, str, int]]] = {}
        for doc, token, field_name, frequency in conn.execute(
            "SELECT doc, token, field, frequency FROM index_postings ORDER BY rowid"
        ):
            postings_by_doc.setdefault(doc, []).append((token, field_name, frequency))
        for doc_pk, source, accession, length, is_primary in conn.execute(
            "SELECT id, source, accession, length, is_primary "
            "FROM index_documents ORDER BY id"
        ):
            index.restore_document(
                source,
                accession,
                length,
                bool(is_primary),
                postings_by_doc.get(doc_pk, []),
            )
        return index
