"""SQLite-backed snapshot store: durable integrated state, warm starts.

The paper's promise is that integration happens *once*; before this
subsystem every process restart re-imported, re-discovered, and re-linked
every source from raw text. A snapshot serializes the entire integrated
state — per-source relational tables, the one-time ColumnProfile
statistics, the discovered structure, the link web, and the BM25 inverted
index — so reopening rehydrates everything directly into the in-memory
caches without running a single discovery, linking, or indexing step.

Layout (one SQLite file):

* ``manifest`` — magic marker, format version, index-built flag;
* ``sources`` — per-source record: content hash, raw input (format, text,
  import options) for later ``update_source`` calls, discovered structure,
  sample rows, row counts;
* ``table_schemas`` / ``rows`` — the relational data, one JSON-encoded
  tuple per row;
* ``profiles`` — the per-column ColumnProfile statistics (Section 4.4's
  compute-once statistics survive restarts);
* ``attribute_links`` / ``object_links`` — the link web, each link stored
  once with its endpoint sources as indexed columns;
* ``index_documents`` / ``index_postings`` — the inverted index, postings
  keyed by document so no re-tokenization happens on load.

Every per-source slice is keyed by source name, which is what makes the
incremental checkpoints cheap: ``checkpoint_source`` deletes and rewrites
exactly one source's rows, profiles, links, and postings in place.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sqlite3
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.access.index import InvertedIndex
from repro.discovery.model import AttributeRef, SourceStructure
from repro.linking.model import AttributeLink, ObjectLink
from repro.metadata.repository import MetadataRepository
from repro.persist import codec
from repro.relational.columns import ColumnProfile
from repro.relational.database import Database

# Version 2: the persisted config gained `incremental_shared_scorer`.
# Pre-PR-4 readers rebuild AladinConfig with **payload and would die on
# the unknown key with a raw TypeError; the bump turns that into their
# clean "this build reads version 1" SnapshotError instead. This build
# still *reads* v1 snapshots (the layout is unchanged and unknown/missing
# config keys degrade to defaults), and ignores unknown config keys going
# forward, so the next new knob will not need a bump.
FORMAT_VERSION = 2
_READ_VERSIONS = (1, 2)
_MAGIC = "repro-aladin-snapshot"


def _encode_row_task(_state, tup) -> str:
    """Encode one raw row tuple; pure, so it can fan across worker pools."""
    return json.dumps(list(tup), separators=(",", ":"))


def _encode_rows(rows: List[tuple], executor=None) -> List[str]:
    """JSON-encode raw rows, fanning across ``executor`` when it pays.

    Row payload encoding is the checkpoint's CPU half (the SQLite writes
    are the I/O half). The gate is stricter than the index's tokenization
    fan-out: per-row encoding is so cheap that only a backend with real
    CPU parallelism *and a resident pool* (the fan-out rides workers the
    pipeline already forked, paying no pool spin-up) on a large enough
    batch comes out ahead — a per-call process pool would fork just for
    this and lose. The output is byte-identical to the inline loop in row
    order.
    """
    if (
        executor is None
        or not executor.cpu_parallel
        or not executor.resident
        or not getattr(executor, "pool_alive", False)  # dead pool: a fork
        # round just for row encoding would cost more than it saves
        or executor.workers <= 1
        or len(rows) < 64 * executor.workers
    ):
        return [_encode_row_task(None, tup) for tup in rows]
    chunksize = max(1, len(rows) // (executor.workers * 4))
    return executor.map_ordered(_encode_row_task, rows, chunksize=chunksize)

_TABLES = (
    "manifest",
    "sources",
    "table_schemas",
    "rows",
    "profiles",
    "attribute_links",
    "object_links",
    "index_documents",
    "index_postings",
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS manifest (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS sources (
    name TEXT PRIMARY KEY,
    content_hash TEXT NOT NULL,
    format_name TEXT,
    raw_text TEXT,
    import_options TEXT,
    structure TEXT NOT NULL,
    samples TEXT NOT NULL,
    row_counts TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS table_schemas (
    source TEXT NOT NULL,
    table_name TEXT NOT NULL,
    schema TEXT NOT NULL,
    PRIMARY KEY (source, table_name)
);
CREATE TABLE IF NOT EXISTS rows (
    source TEXT NOT NULL,
    table_name TEXT NOT NULL,
    row_id INTEGER NOT NULL,
    data TEXT NOT NULL,
    PRIMARY KEY (source, table_name, row_id)
);
CREATE TABLE IF NOT EXISTS profiles (
    source TEXT NOT NULL,
    table_name TEXT NOT NULL,
    column_name TEXT NOT NULL,
    profile TEXT NOT NULL,
    PRIMARY KEY (source, table_name, column_name)
);
CREATE TABLE IF NOT EXISTS attribute_links (
    source TEXT NOT NULL,
    target TEXT NOT NULL,
    payload TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_attribute_links_source ON attribute_links (source);
CREATE INDEX IF NOT EXISTS idx_attribute_links_target ON attribute_links (target);
CREATE TABLE IF NOT EXISTS object_links (
    source_a TEXT NOT NULL,
    source_b TEXT NOT NULL,
    payload TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_object_links_a ON object_links (source_a);
CREATE INDEX IF NOT EXISTS idx_object_links_b ON object_links (source_b);
CREATE TABLE IF NOT EXISTS index_documents (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    source TEXT NOT NULL,
    accession TEXT NOT NULL,
    length INTEGER NOT NULL,
    is_primary INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_index_documents_source ON index_documents (source);
CREATE TABLE IF NOT EXISTS index_postings (
    source TEXT NOT NULL,
    doc INTEGER NOT NULL,
    token TEXT NOT NULL,
    field TEXT NOT NULL,
    frequency INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_index_postings_source ON index_postings (source);
CREATE INDEX IF NOT EXISTS idx_index_postings_doc ON index_postings (doc);
"""


class SnapshotError(RuntimeError):
    """A snapshot file is missing, corrupted, or from another format version."""


@dataclass
class SourceState:
    """One rehydrated source: warm database plus its persisted metadata."""

    name: str
    database: Database
    structure: SourceStructure
    profiles: Dict[AttributeRef, ColumnProfile]
    samples: Dict[str, List[dict]]
    row_counts: Dict[str, int]
    format_name: Optional[str] = None
    raw_text: Optional[str] = None
    import_options: Dict[str, Any] = field(default_factory=dict)


@dataclass
class SnapshotState:
    """Everything a warm start needs, fully deserialized.

    ``config`` is the raw dict of the :class:`AladinConfig` the system was
    integrated with — the core layer rebuilds the dataclass (the persist
    layer sits below core and does not import it).
    """

    sources: List[SourceState]
    attribute_links: List[AttributeLink]
    object_links: List[ObjectLink]
    index: Optional[InvertedIndex]
    config: Optional[Dict[str, Any]] = None


class SnapshotStore:
    """One snapshot file: full save/load plus per-source checkpoints."""

    def __init__(self, path) -> None:
        self.path = os.fspath(path)

    # ------------------------------------------------------------------
    # connection plumbing
    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        try:
            conn = sqlite3.connect(self.path)
            # Concurrent-writer safety: WAL keeps readers unblocked while
            # an off-critical-path checkpoint (the pipelined add_source's
            # final task) writes, and the busy timeout makes two stores on
            # the same file queue instead of failing fast.
            conn.execute("PRAGMA busy_timeout = 5000")
            conn.execute("PRAGMA synchronous = NORMAL")
        except sqlite3.DatabaseError as exc:
            raise SnapshotError(
                f"{self.path!r} is not a readable snapshot: {exc}"
            ) from exc
        try:
            conn.execute("PRAGMA journal_mode = WAL")
        except sqlite3.DatabaseError:
            # Read-only media (or a file that is not a database at all —
            # the manifest check reports that case properly): rollback
            # journaling still serves plain reads.
            pass
        return conn

    def _read_manifest(self, conn: sqlite3.Connection) -> Dict[str, str]:
        try:
            rows = conn.execute("SELECT key, value FROM manifest").fetchall()
        except sqlite3.OperationalError as exc:
            # A valid SQLite file without our tables: some other database.
            raise SnapshotError(
                f"{self.path!r} is an SQLite file but not an ALADIN snapshot "
                f"({exc})"
            ) from exc
        except sqlite3.DatabaseError as exc:
            raise SnapshotError(
                f"{self.path!r} is not a readable snapshot: {exc}"
            ) from exc
        manifest = dict(rows)
        if manifest.get("magic") != _MAGIC:
            raise SnapshotError(
                f"{self.path!r} is an SQLite file but not an ALADIN snapshot"
            )
        version = int(manifest.get("format_version", -1))
        if version not in _READ_VERSIONS:
            raise SnapshotError(
                f"snapshot {self.path!r} has format version {version}; "
                f"this build reads versions "
                f"{', '.join(str(v) for v in _READ_VERSIONS)}"
            )
        return manifest

    def _set_manifest(self, conn: sqlite3.Connection, key: str, value: str) -> None:
        conn.execute(
            "INSERT INTO manifest (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, value),
        )

    # ------------------------------------------------------------------
    # full save
    # ------------------------------------------------------------------
    def write_full(self, aladin) -> None:
        """Serialize the entire integrated state, replacing any previous
        content of the snapshot file."""
        conn = self._connect()
        try:
            with conn:
                self._ensure_overwritable(conn)
                try:
                    conn.executescript(_SCHEMA)
                except sqlite3.DatabaseError as exc:
                    raise SnapshotError(
                        f"cannot write snapshot {self.path!r}: {exc}"
                    ) from exc
                for table in _TABLES:
                    conn.execute(f"DELETE FROM {table}")
                self._set_manifest(conn, "magic", _MAGIC)
                self._set_manifest(conn, "format_version", str(FORMAT_VERSION))
                self._write_config(conn, aladin)
                executor = getattr(aladin, "_executor", None)
                for name in aladin.source_names():
                    self._write_source(conn, aladin, name, executor=executor)
                self._write_all_links(conn, aladin.repository)
                self._write_index_full(conn, aladin._index)
        finally:
            conn.close()

    def _ensure_overwritable(self, conn: sqlite3.Connection) -> None:
        """Refuse to clobber an SQLite file that is not ours.

        A fresh or empty file is fine; anything carrying tables must bear
        the snapshot magic (any format version — overwriting an outdated
        snapshot is the upgrade path). This keeps ``save`` from silently
        deleting data out of an unrelated application database.
        """
        try:
            has_tables = conn.execute(
                "SELECT 1 FROM sqlite_master WHERE type = 'table' LIMIT 1"
            ).fetchone()
        except sqlite3.DatabaseError as exc:
            raise SnapshotError(
                f"{self.path!r} is not a readable snapshot: {exc}"
            ) from exc
        if not has_tables:
            return
        magic = None
        try:
            row = conn.execute(
                "SELECT value FROM manifest WHERE key = 'magic'"
            ).fetchone()
            magic = row[0] if row else None
        except sqlite3.DatabaseError:
            pass
        if magic != _MAGIC:
            raise SnapshotError(
                f"refusing to overwrite {self.path!r}: it is an SQLite "
                "database but not an ALADIN snapshot"
            )

    def _write_source(
        self, conn: sqlite3.Connection, aladin, name: str, executor=None
    ) -> None:
        database = aladin.database(name)
        record = aladin.repository.source(name)
        hasher = hashlib.sha256()
        for table_name in database.table_names():
            table = database.table(table_name)
            schema_json = codec.canonical_json(codec.schema_to_dict(table.schema))
            hasher.update(schema_json.encode("utf-8"))
            conn.execute(
                "INSERT INTO table_schemas (source, table_name, schema) "
                "VALUES (?, ?, ?)",
                (name, table_name, schema_json),
            )
            encoded = _encode_rows(list(table.raw_rows()), executor)
            payloads = []
            for row_id, data in enumerate(encoded):
                hasher.update(data.encode("utf-8"))
                payloads.append((name, table_name, row_id, data))
            conn.executemany(
                "INSERT INTO rows (source, table_name, row_id, data) "
                "VALUES (?, ?, ?, ?)",
                payloads,
            )
        conn.executemany(
            "INSERT INTO profiles (source, table_name, column_name, profile) "
            "VALUES (?, ?, ?, ?)",
            [
                (
                    name,
                    attr.table,
                    attr.column,
                    codec.canonical_json(codec.profile_to_dict(profile)),
                )
                for attr, profile in sorted(
                    record.profiles.items(), key=lambda item: item[0].qualified
                )
            ],
        )
        raw = aladin._raw_inputs.get(name)
        conn.execute(
            "INSERT INTO sources (name, content_hash, format_name, raw_text, "
            "import_options, structure, samples, row_counts) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                name,
                hasher.hexdigest(),
                raw[0] if raw else None,
                raw[1] if raw else None,
                json.dumps(raw[2]) if raw else None,
                codec.canonical_json(codec.structure_to_dict(record.structure)),
                json.dumps(record.sample_rows),
                json.dumps(record.row_counts),
            ),
        )

    def _write_all_links(
        self, conn: sqlite3.Connection, repository: MetadataRepository
    ) -> None:
        conn.executemany(
            "INSERT INTO attribute_links (source, target, payload) VALUES (?, ?, ?)",
            [
                (
                    link.source,
                    link.target,
                    codec.canonical_json(codec.attribute_link_to_dict(link)),
                )
                for link in repository.attribute_links()
            ],
        )
        conn.executemany(
            "INSERT INTO object_links (source_a, source_b, payload) VALUES (?, ?, ?)",
            [
                (
                    link.source_a,
                    link.source_b,
                    codec.canonical_json(codec.object_link_to_dict(link)),
                )
                for link in repository.object_links()
            ],
        )

    def _write_index_full(
        self, conn: sqlite3.Connection, index: Optional[InvertedIndex]
    ) -> None:
        conn.execute("DELETE FROM index_postings")
        conn.execute("DELETE FROM index_documents")
        if index is None:
            self._set_manifest(conn, "index_built", "0")
            return
        for source, accession, length, is_primary, postings in index.export_documents():
            self._write_document(
                conn, source, accession, length, is_primary, postings
            )
        self._set_manifest(conn, "index_built", "1")

    def _write_document(
        self,
        conn: sqlite3.Connection,
        source: str,
        accession: str,
        length: int,
        is_primary: bool,
        postings,
    ) -> None:
        cursor = conn.execute(
            "INSERT INTO index_documents (source, accession, length, is_primary) "
            "VALUES (?, ?, ?, ?)",
            (source, accession, length, int(is_primary)),
        )
        doc_pk = cursor.lastrowid
        conn.executemany(
            "INSERT INTO index_postings (source, doc, token, field, frequency) "
            "VALUES (?, ?, ?, ?, ?)",
            [
                (source, doc_pk, token, field_name, frequency)
                for token, field_name, frequency in postings
            ],
        )

    # ------------------------------------------------------------------
    # per-source incremental checkpoints
    # ------------------------------------------------------------------
    def checkpoint_source(self, aladin, name: str, executor=None) -> None:
        """Rewrite exactly one source's slice of the snapshot in place.

        Called after ``add_source`` / ``update_source``: the source's rows,
        profiles, structure record, links touching it, and index postings
        are replaced; every other source's slice stays byte-identical.
        ``executor`` (the pipeline's worker pool, resident or per-call)
        fans the row payload encoding when the backend has CPU
        parallelism; the written bytes are identical either way.
        """
        conn = self._connect()
        try:
            with conn:
                self._read_manifest(conn)
                self._write_config(conn, aladin)
                self._delete_source_slice(conn, name)
                self._write_source(conn, aladin, name, executor=executor)
                self._write_source_links(conn, aladin.repository, name)
                self._checkpoint_index(conn, aladin, name)
        finally:
            conn.close()

    def _write_config(self, conn: sqlite3.Connection, aladin) -> None:
        # asdict keeps this layer ignorant of the core config classes.
        self._set_manifest(
            conn, "config", json.dumps(dataclasses.asdict(aladin.config))
        )
        # The written config follows *this* build's schema, so the file is
        # now a current-version snapshot even if it was opened as an older
        # one — stamp the version wherever the config lands, or an old
        # build could read a file whose manifest undersells its content.
        self._set_manifest(conn, "format_version", str(FORMAT_VERSION))

    def checkpoint_remove(self, name: str) -> None:
        """Drop one source's slice (rows, profiles, links, postings)."""
        conn = self._connect()
        try:
            with conn:
                self._read_manifest(conn)
                self._delete_source_slice(conn, name)
        finally:
            conn.close()

    def remove_object_link(self, link: ObjectLink) -> int:
        """Delete one object link's row (link-level user feedback).

        Matches the repository's semantics — normalized endpoints plus
        kind — by scanning only the rows between the link's two endpoint
        sources (indexed columns), not the whole table.
        """
        normalized = link.normalized()
        key = (
            normalized.source_a,
            normalized.accession_a,
            normalized.source_b,
            normalized.accession_b,
            normalized.kind,
        )
        conn = self._connect()
        try:
            with conn:
                self._read_manifest(conn)
                doomed = []
                for rowid, payload in conn.execute(
                    "SELECT rowid, payload FROM object_links "
                    "WHERE (source_a = ? AND source_b = ?) "
                    "OR (source_a = ? AND source_b = ?)",
                    (link.source_a, link.source_b, link.source_b, link.source_a),
                ):
                    candidate = codec.object_link_from_dict(
                        json.loads(payload)
                    ).normalized()
                    if (
                        candidate.source_a,
                        candidate.accession_a,
                        candidate.source_b,
                        candidate.accession_b,
                        candidate.kind,
                    ) == key:
                        doomed.append(rowid)
                for rowid in doomed:
                    conn.execute(
                        "DELETE FROM object_links WHERE rowid = ?", (rowid,)
                    )
                return len(doomed)
        finally:
            conn.close()

    def write_index(self, index: Optional[InvertedIndex]) -> None:
        """Persist the inverted index (first lazy build after a save)."""
        conn = self._connect()
        try:
            with conn:
                self._read_manifest(conn)
                try:
                    self._write_index_full(conn, index)
                except sqlite3.DatabaseError as exc:
                    raise SnapshotError(
                        f"cannot write index to snapshot {self.path!r}: {exc}"
                    ) from exc
        finally:
            conn.close()

    def _delete_source_slice(self, conn: sqlite3.Connection, name: str) -> None:
        conn.execute("DELETE FROM sources WHERE name = ?", (name,))
        conn.execute("DELETE FROM table_schemas WHERE source = ?", (name,))
        conn.execute("DELETE FROM rows WHERE source = ?", (name,))
        conn.execute("DELETE FROM profiles WHERE source = ?", (name,))
        conn.execute(
            "DELETE FROM attribute_links WHERE source = ? OR target = ?",
            (name, name),
        )
        conn.execute(
            "DELETE FROM object_links WHERE source_a = ? OR source_b = ?",
            (name, name),
        )
        conn.execute("DELETE FROM index_postings WHERE source = ?", (name,))
        conn.execute("DELETE FROM index_documents WHERE source = ?", (name,))

    def _write_source_links(
        self, conn: sqlite3.Connection, repository: MetadataRepository, name: str
    ) -> None:
        conn.executemany(
            "INSERT INTO attribute_links (source, target, payload) VALUES (?, ?, ?)",
            [
                (
                    link.source,
                    link.target,
                    codec.canonical_json(codec.attribute_link_to_dict(link)),
                )
                for link in repository.attribute_links()
                if name in (link.source, link.target)
            ],
        )
        conn.executemany(
            "INSERT INTO object_links (source_a, source_b, payload) VALUES (?, ?, ?)",
            [
                (
                    link.source_a,
                    link.source_b,
                    codec.canonical_json(codec.object_link_to_dict(link)),
                )
                for link in repository.object_links()
                if name in (link.source_a, link.source_b)
            ],
        )

    def _checkpoint_index(self, conn: sqlite3.Connection, aladin, name: str) -> None:
        index = aladin._index
        if index is None:
            return
        manifest = dict(conn.execute("SELECT key, value FROM manifest").fetchall())
        if manifest.get("index_built") != "1":
            # The index was built lazily after the last full save: persist
            # it whole once, then later checkpoints stay per-source.
            self._write_index_full(conn, index)
            return
        for source, accession, length, is_primary, postings in index.export_documents(
            source=name
        ):
            self._write_document(
                conn, source, accession, length, is_primary, postings
            )

    # ------------------------------------------------------------------
    # load
    # ------------------------------------------------------------------
    def load_state(self) -> SnapshotState:
        """Deserialize the snapshot into warm, ready-to-attach state."""
        if not os.path.exists(self.path):
            raise SnapshotError(f"snapshot {self.path!r} does not exist")
        conn = self._connect()
        try:
            manifest = self._read_manifest(conn)
            try:
                sources = [
                    self._load_source(conn, row)
                    for row in conn.execute(
                        "SELECT name, content_hash, format_name, raw_text, "
                        "import_options, structure, samples, row_counts "
                        "FROM sources ORDER BY name"
                    ).fetchall()
                ]
                attribute_links = [
                    codec.attribute_link_from_dict(json.loads(payload))
                    for (payload,) in conn.execute(
                        "SELECT payload FROM attribute_links ORDER BY rowid"
                    )
                ]
                object_links = [
                    codec.object_link_from_dict(json.loads(payload))
                    for (payload,) in conn.execute(
                        "SELECT payload FROM object_links ORDER BY rowid"
                    )
                ]
                index = (
                    self._load_index(conn)
                    if manifest.get("index_built") == "1"
                    else None
                )
            except (sqlite3.DatabaseError, json.JSONDecodeError, KeyError,
                    ValueError, TypeError) as exc:
                raise SnapshotError(
                    f"snapshot {self.path!r} is corrupted: {exc}"
                ) from exc
        finally:
            conn.close()
        config_json = manifest.get("config")
        return SnapshotState(
            sources=sources,
            attribute_links=attribute_links,
            object_links=object_links,
            index=index,
            config=json.loads(config_json) if config_json else None,
        )

    def _load_source(self, conn: sqlite3.Connection, row: Tuple) -> SourceState:
        (name, content_hash, format_name, raw_text, import_options,
         structure_json, samples_json, row_counts_json) = row
        hasher = hashlib.sha256()
        database = Database(name)
        for table_name, schema_json in conn.execute(
            "SELECT table_name, schema FROM table_schemas "
            "WHERE source = ? ORDER BY table_name",
            (name,),
        ):
            hasher.update(schema_json.encode("utf-8"))
            table = database.create_table(
                codec.schema_from_dict(json.loads(schema_json))
            )
            tuples = []
            for (data,) in conn.execute(
                "SELECT data FROM rows WHERE source = ? AND table_name = ? "
                "ORDER BY row_id",
                (name, table_name),
            ):
                hasher.update(data.encode("utf-8"))
                tuples.append(json.loads(data))
            table.bulk_load(tuples)
        if hasher.hexdigest() != content_hash:
            raise SnapshotError(
                f"snapshot {self.path!r}: content hash mismatch for source "
                f"{name!r} — the stored rows do not match the manifest"
            )
        profiles: Dict[AttributeRef, ColumnProfile] = {}
        for table_name, column_name, profile_json in conn.execute(
            "SELECT table_name, column_name, profile FROM profiles "
            "WHERE source = ? ORDER BY table_name, column_name",
            (name,),
        ):
            profile = codec.profile_from_dict(json.loads(profile_json))
            profiles[AttributeRef(table_name, column_name)] = profile
            database.table(table_name).columns.restore_profile(column_name, profile)
        return SourceState(
            name=name,
            database=database,
            structure=codec.structure_from_dict(json.loads(structure_json)),
            profiles=profiles,
            samples=json.loads(samples_json),
            row_counts=json.loads(row_counts_json),
            format_name=format_name,
            raw_text=raw_text,
            import_options=json.loads(import_options) if import_options else {},
        )

    def _load_index(self, conn: sqlite3.Connection) -> InvertedIndex:
        index = InvertedIndex()
        postings_by_doc: Dict[int, List[Tuple[str, str, int]]] = {}
        for doc, token, field_name, frequency in conn.execute(
            "SELECT doc, token, field, frequency FROM index_postings ORDER BY rowid"
        ):
            postings_by_doc.setdefault(doc, []).append((token, field_name, frequency))
        for doc_pk, source, accession, length, is_primary in conn.execute(
            "SELECT id, source, accession, length, is_primary "
            "FROM index_documents ORDER BY id"
        ):
            index.restore_document(
                source,
                accession,
                length,
                bool(is_primary),
                postings_by_doc.get(doc_pk, []),
            )
        return index
