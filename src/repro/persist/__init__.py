"""Persistence subsystem: durable snapshots of the integrated state.

A snapshot is one SQLite file holding every layer's state — relational
tables, column profiles, discovered structure, the link web, and the
search index — so that :meth:`repro.core.Aladin.save` /
:meth:`repro.core.Aladin.open` turn process restarts from a full
re-integration into a cheap rehydration. Per-source checkpoints keep an
attached snapshot current as sources are added, updated, and removed;
online compaction (:meth:`repro.persist.snapshot.SnapshotStore.compact`)
reclaims the churn those checkpoints leave behind, and an advisory
sidecar lock (:class:`repro.persist.lock.SnapshotLock`) keeps two writer
*processes* from attaching to one snapshot at a time.

Opens come in two flavors: the eager :meth:`SnapshotStore.load_state`
materializes everything up front, while
:class:`repro.persist.lazy.LazySnapshotSession` reads only the manifest
(:meth:`SnapshotStore.load_manifest`) and faults each source's rows in on
first touch, pushing point lookups and single-table SELECTs down to SQL
on the snapshot's value index until then.
"""

from repro.persist.snapshot import (
    FORMAT_VERSION,
    CompactionStats,
    PersistConfig,
    SnapshotError,
    SnapshotManifest,
    SnapshotState,
    SnapshotStore,
    SourceBody,
    SourceState,
    SourceStub,
)
from repro.persist.lazy import LazyInvertedIndex, LazySnapshotSession
from repro.persist.lock import SnapshotLock, SnapshotLockedError

__all__ = [
    "FORMAT_VERSION",
    "CompactionStats",
    "LazyInvertedIndex",
    "LazySnapshotSession",
    "PersistConfig",
    "SnapshotError",
    "SnapshotLock",
    "SnapshotLockedError",
    "SnapshotManifest",
    "SnapshotState",
    "SnapshotStore",
    "SourceBody",
    "SourceState",
    "SourceStub",
]
