"""Persistence subsystem: durable snapshots of the integrated state.

A snapshot is one SQLite file holding every layer's state — relational
tables, column profiles, discovered structure, the link web, and the
search index — so that :meth:`repro.core.Aladin.save` /
:meth:`repro.core.Aladin.open` turn process restarts from a full
re-integration into a cheap rehydration. Per-source checkpoints keep an
attached snapshot current as sources are added, updated, and removed;
online compaction (:meth:`repro.persist.snapshot.SnapshotStore.compact`)
reclaims the churn those checkpoints leave behind, and an advisory
sidecar lock (:class:`repro.persist.lock.SnapshotLock`) keeps two writer
*processes* from attaching to one snapshot at a time.
"""

from repro.persist.snapshot import (
    FORMAT_VERSION,
    CompactionStats,
    PersistConfig,
    SnapshotError,
    SnapshotState,
    SnapshotStore,
    SourceState,
)
from repro.persist.lock import SnapshotLock, SnapshotLockedError

__all__ = [
    "FORMAT_VERSION",
    "CompactionStats",
    "PersistConfig",
    "SnapshotError",
    "SnapshotLock",
    "SnapshotLockedError",
    "SnapshotState",
    "SnapshotStore",
    "SourceState",
]
