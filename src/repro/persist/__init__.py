"""Persistence subsystem: durable snapshots of the integrated state.

A snapshot is one SQLite file holding every layer's state — relational
tables, column profiles, discovered structure, the link web, and the
search index — so that :meth:`repro.core.Aladin.save` /
:meth:`repro.core.Aladin.open` turn process restarts from a full
re-integration into a cheap rehydration. Per-source checkpoints keep an
attached snapshot current as sources are added, updated, and removed.
"""

from repro.persist.snapshot import (
    FORMAT_VERSION,
    SnapshotError,
    SnapshotState,
    SnapshotStore,
    SourceState,
)

__all__ = [
    "FORMAT_VERSION",
    "SnapshotError",
    "SnapshotState",
    "SnapshotStore",
    "SourceState",
]
