"""Advisory multi-process locking for snapshot writers.

Two ALADIN processes attached to the same snapshot file would interleave
their per-source checkpoints silently — SQLite serializes the individual
transactions (WAL + busy timeout), but nothing stops the two warehouses
from each believing it owns the file and overwriting the other's slices.
:class:`SnapshotLock` makes writer attachment explicit: a sidecar lock
file next to the snapshot (``<snapshot>.lock``) that exactly one process
may hold at a time.

Protocol:

* the lock file is held with :func:`fcntl.flock` (``LOCK_EX | LOCK_NB``)
  where available, so a crashed holder releases automatically — the
  kernel drops ``flock`` locks when the last inherited descriptor closes;
* where ``fcntl`` is unavailable the fallback is ``O_CREAT | O_EXCL``
  creation of the lock file, with *stale-lock detection*: an acquire that
  finds an existing lock file reads the holder's PID and, if that process
  is dead (``os.kill(pid, 0)`` raises ``ProcessLookupError``) and the
  hostname matches, breaks the stale lock and retries;
* the lock file carries a JSON description of the holder (PID, hostname,
  timestamp) so a refused acquire can say *who* holds the lock;
* the lock is **per process, reentrant**: a process-wide registry
  refcounts acquisitions of the same path, so one process may attach
  several stores/systems to one snapshot (the pre-lock status quo, left
  to SQLite's WAL + busy timeout) while a *second process* is excluded;
* ``force=True`` breaks any existing lock unconditionally — the escape
  hatch for an operator who knows the recorded holder is gone (e.g. a
  zombie on another host that PID probing cannot see).

Blocking is cooperative: ``acquire(timeout=N)`` polls until the deadline,
then raises :class:`SnapshotLockedError` naming the holder.
"""

from __future__ import annotations

import errno
import json
import os
import socket
import threading
import time
from typing import Any, Dict, Optional

from repro.persist.codec import canonical_json
from repro.persist.snapshot import SnapshotError

try:  # POSIX: flock gives crash-safe advisory locks
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX hosts use O_EXCL
    fcntl = None  # type: ignore[assignment]

_POLL_SECONDS = 0.05


class SnapshotLockedError(SnapshotError):
    """Another process holds the snapshot's writer lock.

    ``holder`` is the lock file's JSON payload (pid, host, since) when it
    could be read, so callers can render an actionable message.
    """

    def __init__(self, message: str, holder: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.holder = holder or {}


# Process-wide registry of held locks, keyed by realpath: reentrant
# acquisition *within* one process (many stores, one warehouse process)
# while other processes stay excluded. Guarded for thread backends.
_HELD: Dict[str, "SnapshotLock"] = {}
_HELD_GUARD = threading.Lock()


def _forget_inherited_locks() -> None:
    """Fork hygiene: a child is a new process and holds nothing.

    The registry (and every lock fd) is inherited by ``fork``, so
    without this hook a forked child would silently "reenter" the
    parent's writer lock — and, on the flock backend, its inherited fd
    would keep the OS lock pinned after the parent released (worker
    pools fork!) or unlink the live lock file on release. The child
    therefore closes its inherited lock fds (the parent's own fds keep
    the flock held) and forgets the registry; if it truly wants the
    lock it must acquire like any other process.
    """
    for lock in list(_HELD.values()):
        fd, lock._fd = lock._fd, None
        lock._count = 0
        if fd is not None:
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - nothing to do mid-fork
                pass
    _HELD.clear()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_forget_inherited_locks)


def _overwrite_fd(fd: int, payload: str) -> None:
    """Replace an open file's content (seek+write: works where pwrite
    does not exist — the O_EXCL backend runs exactly where fcntl and
    friends are missing)."""
    os.ftruncate(fd, 0)
    os.lseek(fd, 0, os.SEEK_SET)
    os.write(fd, payload.encode("utf-8"))


def _render_holder(holder: Dict[str, Any]) -> str:
    if not holder:
        return "an unknown process"
    pid = holder.get("pid", "?")
    host = holder.get("host", "?")
    return f"pid {pid} on {host}"


class SnapshotLock:
    """The sidecar writer lock of one snapshot file.

    ``backend`` is ``"flock"`` (default where :mod:`fcntl` exists) or
    ``"excl"`` (the ``O_CREAT | O_EXCL`` fallback, also selectable for
    tests). Use as a context manager or via ``acquire``/``release``.
    """

    def __init__(self, snapshot_path, backend: Optional[str] = None):
        self.snapshot_path = os.fspath(snapshot_path)
        self.lock_path = self.snapshot_path + ".lock"
        if backend is None:
            backend = "flock" if fcntl is not None else "excl"
        if backend == "flock" and fcntl is None:  # pragma: no cover
            backend = "excl"
        if backend not in ("flock", "excl"):
            raise ValueError(f"unknown lock backend {backend!r}")
        self.backend = backend
        self._fd: Optional[int] = None
        self._count = 0  # reentrant acquisitions by this process

    # ------------------------------------------------------------------
    @property
    def held(self) -> bool:
        """Does *this process* hold the lock (through any SnapshotLock)?"""
        return self._registry_key() in _HELD

    def _registry_key(self) -> str:
        return os.path.realpath(self.lock_path)

    def holder_info(self) -> Dict[str, Any]:
        """Best-effort read of the current holder's description."""
        try:
            with open(self.lock_path, "r", encoding="utf-8") as fh:
                return json.loads(fh.read() or "{}")
        except (OSError, json.JSONDecodeError):
            return {}

    # ------------------------------------------------------------------
    def acquire(
        self, timeout: float = 0.0, force: bool = False
    ) -> "SnapshotLock":
        """Take the writer lock, waiting up to ``timeout`` seconds.

        ``timeout`` 0 fails fast. Raises :class:`SnapshotLockedError`
        when another process still holds the lock at the deadline.
        ``force`` breaks any existing lock first (the escape hatch for a
        holder that stale detection cannot prove dead).
        """
        key = self._registry_key()
        deadline = time.monotonic() + max(0.0, timeout)
        break_pending = force
        while True:
            # Registry check and OS acquire are one atomic step under the
            # guard: two threads of one process racing here serialize, so
            # the loser always finds the winner in the registry (and
            # reenters) instead of polling a lock its own process holds.
            with _HELD_GUARD:
                owner = _HELD.get(key)
                if owner is not None:
                    # Reentry wins over force: a process already holding
                    # the lock must never unlink its own exclusion.
                    owner._count += 1
                    return self
                if break_pending:
                    self._break_lock()
                    break_pending = False
                try:
                    acquired = self._try_acquire()
                except OSError as exc:
                    raise SnapshotError(
                        f"cannot take writer lock {self.lock_path!r}: {exc}"
                    ) from exc
                if acquired:
                    self._count = 1
                    _HELD[key] = self
                    return self
            if time.monotonic() >= deadline:
                holder = self.holder_info()
                raise SnapshotLockedError(
                    f"snapshot {self.snapshot_path!r} is locked by "
                    f"{_render_holder(holder)} (lock file {self.lock_path}); "
                    "open read-only, retry with a timeout, or break the "
                    "lock with force once the holder is known dead",
                    holder=holder,
                )
            time.sleep(_POLL_SECONDS)

    def release(self) -> None:
        """Drop one acquisition; the OS lock goes with the last one.

        The OS unlock happens *inside* the guard: registry removal and
        unlock as one atomic step, mirroring the acquire side — a
        concurrent same-process fail-fast acquire therefore sees either
        "held, reenter" or "fully released, acquirable", never the
        half-released state in between.
        """
        key = self._registry_key()
        with _HELD_GUARD:
            owner = _HELD.get(key)
            if owner is None:
                return
            owner._count -= 1
            if owner._count > 0:
                return
            del _HELD[key]
            owner._unlock()

    def __enter__(self) -> "SnapshotLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    # ------------------------------------------------------------------
    # backend plumbing
    # ------------------------------------------------------------------
    def _try_acquire(self) -> bool:
        if self.backend == "flock":
            return self._try_flock()
        return self._try_excl()

    def _try_flock(self) -> bool:
        fd = os.open(self.lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            return False
        # A releasing holder unlinks the lock file, so the inode this fd
        # locked may no longer be what the path names — a lock on that
        # ghost inode would not exclude anyone. Verify and retry if so.
        if not self._path_is_inode(fd):
            os.close(fd)
            return False
        self._fd = fd
        self._write_holder(fd)
        return True

    def _path_is_inode(self, fd: int) -> bool:
        try:
            path_stat = os.stat(self.lock_path)
        except FileNotFoundError:
            return False
        fd_stat = os.fstat(fd)
        return (path_stat.st_dev, path_stat.st_ino) == (
            fd_stat.st_dev, fd_stat.st_ino,
        )

    def _try_excl(self) -> bool:
        try:
            fd = os.open(
                self.lock_path, os.O_RDWR | os.O_CREAT | os.O_EXCL, 0o644
            )
        except FileExistsError:
            if not self._holder_is_stale():
                return False
            if not self._break_stale_lock():
                return False
            try:
                fd = os.open(
                    self.lock_path,
                    os.O_RDWR | os.O_CREAT | os.O_EXCL,
                    0o644,
                )
            except FileExistsError:
                return False  # lost the re-acquire race
        self._fd = fd
        self._write_holder(fd)
        return True

    def _break_stale_lock(self) -> bool:
        """Remove a dead holder's lock file, safely under breaker races.

        Two processes can observe the same stale lock; if both simply
        unlinked it, the slower one would delete the lock the faster one
        already broke *and retook* — two live writers. Breakers therefore
        serialize on a sidecar (``<lock>.break``, itself ``O_EXCL``) and
        re-verify staleness while holding it, so only a still-stale lock
        is ever unlinked. A breaker that crashed mid-break leaves a
        sidecar with its own dead PID, which the same probe clears on a
        later attempt.
        """
        breaker = self.lock_path + ".break"
        try:
            breaker_fd = os.open(
                breaker, os.O_RDWR | os.O_CREAT | os.O_EXCL, 0o644
            )
        except FileExistsError:
            if self._holder_is_stale(breaker):
                try:
                    os.unlink(breaker)
                except FileNotFoundError:
                    pass
            return False
        try:
            _overwrite_fd(
                breaker_fd,
                canonical_json({"pid": os.getpid(), "host": socket.gethostname()}),
            )
            if self._holder_is_stale():  # re-check under the breaker lock
                self._break_lock()
                return True
            return False
        finally:
            os.close(breaker_fd)
            try:
                os.unlink(breaker)
            except FileNotFoundError:
                pass

    def _holder_is_stale(self, path: Optional[str] = None) -> bool:
        """Dead-PID detection for the O_EXCL backend.

        Only a same-host holder can be probed; a lock from another host
        (or an unreadable lock file) is assumed live — ``force`` is the
        way past those.
        """
        if path is None:
            holder = self.holder_info()
        else:
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    holder = json.loads(fh.read() or "{}")
            except (OSError, json.JSONDecodeError):
                return False
        pid = holder.get("pid")
        if not isinstance(pid, int) or holder.get("host") != socket.gethostname():
            return False
        if pid == os.getpid():
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except OSError as exc:  # pragma: no cover - e.g. EPERM: alive
            return exc.errno == errno.ESRCH
        return False

    def _write_holder(self, fd: int) -> None:
        payload = canonical_json(
            {
                "pid": os.getpid(),
                "host": socket.gethostname(),
                # Wall time for humans reading the sidecar; the monotonic
                # stamp is the reference for in-process age arithmetic
                # (wall clocks can step backwards under NTP).
                "since": time.time(),
                "since_monotonic": time.monotonic(),
            }
        )
        _overwrite_fd(fd, payload)

    def _break_lock(self) -> None:
        try:
            os.unlink(self.lock_path)
        except FileNotFoundError:
            pass

    def _unlock(self) -> None:
        fd, self._fd = self._fd, None
        self._count = 0
        if self.backend == "excl":
            # Unlink only while the file still records *us*: a lock that
            # was force-broken and retaken belongs to its new holder now,
            # and deleting it would let a third writer in beside them.
            if self.holder_info().get("pid") == os.getpid():
                self._break_lock()
        if fd is not None:
            # flock drops with the close; unlinking the (now unlocked)
            # file keeps the directory clean — but only while the path
            # still names our inode, so a force-broken-and-retaken lock
            # is never deleted out from under its new holder.
            if self.backend == "flock" and self._path_is_inode(fd):
                self._break_lock()
            os.close(fd)
