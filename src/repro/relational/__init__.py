"""In-memory relational substrate for ALADIN.

The paper assumes "a relational database as its basis" (Section 1) and its
discovery steps interact with the database only through a narrow surface:

* the data dictionary (which tables/columns/constraints exist),
* per-attribute value scans (uniqueness checks, value-set comparisons),
* joins along discovered relationships, and
* plain ``SELECT`` queries for the structured-query access mode.

This package provides exactly that surface: typed columns, tables with
optional PRIMARY KEY / UNIQUE / FOREIGN KEY constraints, a catalog, a
relational-algebra query engine, and a small SQL parser.
"""

from repro.relational.types import DataType, coerce_value, infer_type, is_null
from repro.relational.columns import ColumnProfile, ColumnStore
from repro.relational.schema import (
    Column,
    ForeignKey,
    SchemaError,
    TableSchema,
    UniqueConstraint,
)
from repro.relational.table import ConstraintViolation, Row, Table
from repro.relational.database import Database
from repro.relational.catalog import Catalog
from repro.relational.expressions import (
    And,
    Between,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Not,
    Or,
    col,
    lit,
)
from repro.relational.query import Query, ResultSet
from repro.relational.sql import SqlError, execute_sql, parse_sql

__all__ = [
    "And",
    "Between",
    "Catalog",
    "Column",
    "ColumnProfile",
    "ColumnStore",
    "Comparison",
    "ConstraintViolation",
    "DataType",
    "Database",
    "Expression",
    "ForeignKey",
    "InList",
    "IsNull",
    "Like",
    "Not",
    "Or",
    "Query",
    "ResultSet",
    "Row",
    "SchemaError",
    "SqlError",
    "Table",
    "TableSchema",
    "UniqueConstraint",
    "coerce_value",
    "col",
    "execute_sql",
    "infer_type",
    "is_null",
    "lit",
    "parse_sql",
]
