"""Data-dictionary views over a :class:`~repro.relational.database.Database`.

Section 4.2: "Existing foreign key constraints are found using the data
dictionary." The catalog is that dictionary — a read-only, uniform way for
the discovery layer to enumerate tables, columns, and declared constraints
without touching storage internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.relational.database import Database
from repro.relational.types import DataType


@dataclass(frozen=True)
class ColumnInfo:
    table: str
    column: str
    data_type: DataType
    nullable: bool
    declared_unique: bool

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass(frozen=True)
class ForeignKeyInfo:
    table: str
    columns: Tuple[str, ...]
    target_table: str
    target_columns: Tuple[str, ...]


class Catalog:
    """Read-only dictionary over one database."""

    def __init__(self, database: Database):
        self._db = database

    @property
    def database(self) -> Database:
        return self._db

    def tables(self) -> List[str]:
        return self._db.table_names()

    def columns(self, table: Optional[str] = None) -> List[ColumnInfo]:
        infos: List[ColumnInfo] = []
        names = [table.lower()] if table else self.tables()
        for name in names:
            tab = self._db.table(name)
            declared = set(tab.schema.declared_unique_columns())
            for column in tab.schema.columns:
                infos.append(
                    ColumnInfo(
                        table=name,
                        column=column.name,
                        data_type=column.data_type,
                        nullable=column.nullable,
                        declared_unique=column.name in declared,
                    )
                )
        return infos

    def declared_foreign_keys(self) -> List[ForeignKeyInfo]:
        fks: List[ForeignKeyInfo] = []
        for name in self.tables():
            tab = self._db.table(name)
            for fk in tab.schema.foreign_keys:
                fks.append(
                    ForeignKeyInfo(
                        table=name,
                        columns=tuple(fk.columns),
                        target_table=fk.target_table,
                        target_columns=tuple(fk.target_columns),
                    )
                )
        return fks

    def declared_primary_key(self, table: str) -> Optional[Tuple[str, ...]]:
        return self._db.table(table).schema.primary_key

    def row_count(self, table: str) -> int:
        return len(self._db.table(table))
