"""Column data types, value coercion, and type inference.

Life-science flat files carry everything as text; parsers that shred them
into relations must guess column types from the data. ``infer_type`` mirrors
what a generic import tool does: a column is INTEGER if every non-null value
parses as an integer, FLOAT if every value parses as a number, TEXT
otherwise. The discovery heuristics in :mod:`repro.discovery` later rely on
the distinction between digit-only surrogate keys and alphanumeric accession
numbers, so faithful type handling matters.
"""

from __future__ import annotations

import enum
import math
from typing import Any, Iterable, Optional


class DataType(enum.Enum):
    """The three storage types of the substrate."""

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"

    def python_type(self) -> type:
        if self is DataType.INTEGER:
            return int
        if self is DataType.FLOAT:
            return float
        return str

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INTEGER, DataType.FLOAT)


def is_null(value: Any) -> bool:
    """Return True for the substrate's notion of SQL NULL.

    ``None`` is NULL; NaN floats are treated as NULL as well because they
    poison comparisons and commonly appear when numeric columns are parsed
    from incomplete flat files.
    """
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    return False


def _parse_int(text: str) -> Optional[int]:
    text = text.strip()
    if not text:
        return None
    sign = 1
    if text[0] in "+-":
        sign = -1 if text[0] == "-" else 1
        text = text[1:]
    # ASCII digits only: str.isdigit() accepts superscripts ('²') and
    # other Unicode digit-like characters that int() rejects.
    if not text or not all("0" <= ch <= "9" for ch in text):
        return None
    return sign * int(text)


def _parse_float(text: str) -> Optional[float]:
    try:
        value = float(text.strip())
    except (ValueError, OverflowError):
        return None
    if math.isnan(value) or math.isinf(value):
        return None
    return value


def coerce_value(value: Any, data_type: DataType) -> Any:
    """Coerce ``value`` to ``data_type``; NULL passes through.

    Raises:
        TypeError: if the value cannot represent the target type.
    """
    if is_null(value):
        return None
    if data_type is DataType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float):
            if value.is_integer():
                return int(value)
            raise TypeError(f"cannot store non-integral float {value!r} in INTEGER column")
        if isinstance(value, str):
            parsed = _parse_int(value)
            if parsed is None:
                raise TypeError(f"cannot parse {value!r} as INTEGER")
            return parsed
        raise TypeError(f"cannot store {type(value).__name__} in INTEGER column")
    if data_type is DataType.FLOAT:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            parsed = _parse_float(value)
            if parsed is None:
                raise TypeError(f"cannot parse {value!r} as FLOAT")
            return parsed
        raise TypeError(f"cannot store {type(value).__name__} in FLOAT column")
    # TEXT accepts anything representable as a string.
    if isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        return str(value)
    raise TypeError(f"cannot store {type(value).__name__} in TEXT column")


def infer_type(values: Iterable[Any]) -> DataType:
    """Infer the narrowest DataType that fits every non-null value.

    An all-null (or empty) column defaults to TEXT, the safest choice for
    flat-file data.
    """
    saw_value = False
    could_be_int = True
    could_be_float = True
    for value in values:
        if is_null(value):
            continue
        saw_value = True
        if isinstance(value, bool):
            could_be_float = False
            could_be_int = False
            break
        if isinstance(value, int):
            continue
        if isinstance(value, float):
            could_be_int = could_be_int and value.is_integer()
            continue
        if isinstance(value, str):
            if could_be_int and _parse_int(value) is None:
                could_be_int = False
            if could_be_float and _parse_float(value) is None:
                could_be_float = False
            if not could_be_float:
                break
            continue
        could_be_int = False
        could_be_float = False
        break
    if not saw_value:
        return DataType.TEXT
    if could_be_int:
        return DataType.INTEGER
    if could_be_float:
        return DataType.FLOAT
    return DataType.TEXT
