"""Table schemas and declared integrity constraints.

ALADIN does *not* require constraints to be present (Section 4.1: "it is
[not] necessary that integrity constraints, such as UNIQUE, PRIMARY KEY, or
FOREIGN KEY, are present"), but it *uses* them when they are (Section 3:
"existing integrity constraints are exploited, if they are available").
Schemas therefore carry optional constraint declarations that the discovery
steps read through the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.relational.types import DataType


class SchemaError(ValueError):
    """Raised for malformed schema definitions."""


_IDENT_OK = set("abcdefghijklmnopqrstuvwxyz0123456789_")


def validate_identifier(name: str, kind: str) -> str:
    """Validate and normalize (lower-case) a table/column identifier."""
    if not name:
        raise SchemaError(f"empty {kind} name")
    lowered = name.lower()
    if lowered[0].isdigit():
        raise SchemaError(f"{kind} name {name!r} may not start with a digit")
    if not set(lowered) <= _IDENT_OK:
        raise SchemaError(f"{kind} name {name!r} contains invalid characters")
    return lowered


@dataclass(frozen=True)
class Column:
    """A typed, optionally non-nullable column."""

    name: str
    data_type: DataType = DataType.TEXT
    nullable: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", validate_identifier(self.name, "column"))


@dataclass(frozen=True)
class UniqueConstraint:
    """A declared single- or multi-column UNIQUE constraint."""

    columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError("UNIQUE constraint needs at least one column")
        object.__setattr__(
            self, "columns", tuple(validate_identifier(c, "column") for c in self.columns)
        )


@dataclass(frozen=True)
class ForeignKey:
    """A declared foreign key: ``columns`` reference ``target_columns`` of ``target_table``."""

    columns: Tuple[str, ...]
    target_table: str
    target_columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError("FOREIGN KEY needs at least one column")
        if len(self.columns) != len(self.target_columns):
            raise SchemaError("FOREIGN KEY column count mismatch")
        object.__setattr__(
            self, "columns", tuple(validate_identifier(c, "column") for c in self.columns)
        )
        object.__setattr__(self, "target_table", validate_identifier(self.target_table, "table"))
        object.__setattr__(
            self,
            "target_columns",
            tuple(validate_identifier(c, "column") for c in self.target_columns),
        )


@dataclass
class TableSchema:
    """Schema of one table: columns plus optional declared constraints."""

    name: str
    columns: List[Column]
    primary_key: Optional[Tuple[str, ...]] = None
    unique_constraints: List[UniqueConstraint] = field(default_factory=list)
    foreign_keys: List[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.name = validate_identifier(self.name, "table")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} needs at least one column")
        seen = set()
        for column in self.columns:
            if column.name in seen:
                raise SchemaError(f"duplicate column {column.name!r} in table {self.name!r}")
            seen.add(column.name)
        if self.primary_key is not None:
            self.primary_key = tuple(
                validate_identifier(c, "column") for c in self.primary_key
            )
            self._require_columns(self.primary_key, "PRIMARY KEY")
        for unique in self.unique_constraints:
            self._require_columns(unique.columns, "UNIQUE")
        for fk in self.foreign_keys:
            self._require_columns(fk.columns, "FOREIGN KEY")

    def _require_columns(self, names: Sequence[str], kind: str) -> None:
        known = {c.name for c in self.columns}
        for name in names:
            if name not in known:
                raise SchemaError(
                    f"{kind} on table {self.name!r} references unknown column {name!r}"
                )

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        lowered = name.lower()
        for column in self.columns:
            if column.name == lowered:
                return column
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(c.name == lowered for c in self.columns)

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for i, column in enumerate(self.columns):
            if column.name == lowered:
                return i
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def declared_unique_columns(self) -> List[str]:
        """Single columns declared unique via PK or a 1-column UNIQUE constraint."""
        names: List[str] = []
        if self.primary_key is not None and len(self.primary_key) == 1:
            names.append(self.primary_key[0])
        for unique in self.unique_constraints:
            if len(unique.columns) == 1 and unique.columns[0] not in names:
                names.append(unique.columns[0])
        return names

    def without_constraints(self) -> "TableSchema":
        """A copy of this schema with every declared constraint stripped.

        Used by the evaluation harness to simulate generic parsers that emit
        bare tables (the common case the paper's heuristics target).
        """
        return TableSchema(name=self.name, columns=list(self.columns))
