"""A small SQL parser for the query access mode.

Grammar (case-insensitive keywords)::

    SELECT [DISTINCT] column_list
    FROM table
    [JOIN table ON col = col | LEFT JOIN table ON col = col]*
    [WHERE condition]
    [ORDER BY col [ASC|DESC] [, ...]]
    [LIMIT n]

Conditions support ``= != < <= > >= AND OR NOT LIKE IN (...)``,
``IS [NOT] NULL``, ``BETWEEN x AND y``, and parentheses. This is the
"simple enough to allow even novice users to formulate meaningful queries"
SQL interface of Section 4.6.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.relational.database import Database
from repro.relational.expressions import (
    Between,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Not,
    col,
)
from repro.relational.query import Query, ResultSet


class SqlError(ValueError):
    """Raised for unparsable or unsupported SQL."""


@dataclass(frozen=True)
class JoinSpec:
    """One parsed ``[LEFT] JOIN table ON left = right`` clause."""

    table: str
    left_column: str
    right_column: str
    left: bool


@dataclass
class SelectPlan:
    """A parsed SELECT held as plain data, unbound to any database.

    The plan is the seam between parsing and execution: the in-memory
    engine lowers it onto a :class:`Query` (:func:`plan_to_query`), while
    the snapshot pushdown executor reads the same plan to run
    single-table scans directly against SQLite without hydrating the
    source. ``columns`` is the raw select list (``"*"`` entries
    included), ``order_by`` pairs are ``(column, descending)``.
    """

    columns: List[str]
    table: str
    joins: List[JoinSpec]
    where: Optional[Expression]
    order_by: List[Tuple[str, bool]]
    limit: Optional[int]
    distinct: bool

    @property
    def single_table(self) -> bool:
        return not self.joins


_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)?)
      | (?P<op><=|>=|!=|<>|=|<|>)
      | (?P<punct>[(),*])
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "distinct", "from", "join", "left", "on", "where", "and", "or",
    "not", "like", "in", "is", "null", "between", "order", "by", "asc",
    "desc", "limit",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # "string" | "number" | "ident" | "keyword" | "op" | "punct"
    value: Any
    text: str


def _tokenize(sql: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            rest = sql[pos:].strip()
            if not rest:
                break
            raise SqlError(f"cannot tokenize SQL near {rest[:20]!r}")
        pos = match.end()
        if match.lastgroup == "string":
            raw = match.group("string")
            tokens.append(_Token("string", raw[1:-1].replace("''", "'"), raw))
        elif match.lastgroup == "number":
            raw = match.group("number")
            value = float(raw) if "." in raw else int(raw)
            tokens.append(_Token("number", value, raw))
        elif match.lastgroup == "ident":
            raw = match.group("ident")
            lowered = raw.lower()
            if lowered in _KEYWORDS:
                tokens.append(_Token("keyword", lowered, raw))
            else:
                tokens.append(_Token("ident", lowered, raw))
        elif match.lastgroup == "op":
            raw = match.group("op")
            tokens.append(_Token("op", "!=" if raw == "<>" else raw, raw))
        else:
            raw = match.group("punct")
            tokens.append(_Token("punct", raw, raw))
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SqlError("unexpected end of SQL")
        self._pos += 1
        return token

    def _accept_keyword(self, *words: str) -> Optional[str]:
        token = self._peek()
        if token is not None and token.kind == "keyword" and token.value in words:
            self._pos += 1
            return token.value
        return None

    def _expect_keyword(self, word: str) -> None:
        if self._accept_keyword(word) is None:
            got = self._peek()
            raise SqlError(f"expected {word.upper()}, got {got.text if got else 'EOF'}")

    def _accept_punct(self, char: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "punct" and token.value == char:
            self._pos += 1
            return True
        return False

    def _expect_punct(self, char: str) -> None:
        if not self._accept_punct(char):
            got = self._peek()
            raise SqlError(f"expected {char!r}, got {got.text if got else 'EOF'}")

    def _expect_ident(self) -> str:
        token = self._next()
        if token.kind != "ident":
            raise SqlError(f"expected identifier, got {token.text!r}")
        return token.value

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------
    def parse_plan(self) -> SelectPlan:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct") is not None
        columns = self._parse_select_list()
        self._expect_keyword("from")
        table = self._expect_ident()
        joins: List[JoinSpec] = []
        while True:
            if self._accept_keyword("join"):
                joins.append(self._parse_join(left=False))
            elif self._accept_keyword("left"):
                self._expect_keyword("join")
                joins.append(self._parse_join(left=True))
            else:
                break
        where = self._parse_or() if self._accept_keyword("where") else None
        order_by: List[Tuple[str, bool]] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            while True:
                column = self._expect_ident()
                descending = False
                if self._accept_keyword("desc"):
                    descending = True
                else:
                    self._accept_keyword("asc")
                order_by.append((column, descending))
                if not self._accept_punct(","):
                    break
        limit: Optional[int] = None
        if self._accept_keyword("limit"):
            token = self._next()
            if token.kind != "number" or not isinstance(token.value, int):
                raise SqlError("LIMIT expects an integer")
            limit = token.value
        leftover = self._peek()
        if leftover is not None:
            raise SqlError(f"unexpected trailing token {leftover.text!r}")
        return SelectPlan(
            columns=columns,
            table=table,
            joins=joins,
            where=where,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_list(self) -> List[str]:
        columns: List[str] = []
        while True:
            if self._accept_punct("*"):
                columns.append("*")
            else:
                columns.append(self._expect_ident())
            if not self._accept_punct(","):
                break
        return columns

    def _parse_join(self, left: bool) -> JoinSpec:
        table = self._expect_ident()
        self._expect_keyword("on")
        left_col = self._expect_ident()
        token = self._next()
        if token.kind != "op" or token.value != "=":
            raise SqlError("JOIN ... ON expects an equality")
        right_col = self._expect_ident()
        return JoinSpec(
            table=table, left_column=left_col, right_column=right_col, left=left
        )

    # condition grammar: or -> and -> not -> primary
    def _parse_or(self) -> Expression:
        expr = self._parse_and()
        while self._accept_keyword("or"):
            expr = expr | self._parse_and()
        return expr

    def _parse_and(self) -> Expression:
        expr = self._parse_not()
        while self._accept_keyword("and"):
            expr = expr & self._parse_not()
        return expr

    def _parse_not(self) -> Expression:
        if self._accept_keyword("not"):
            return ~self._parse_not()
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        if self._accept_punct("("):
            expr = self._parse_or()
            self._expect_punct(")")
            return expr
        operand = self._parse_operand()
        token = self._peek()
        if token is None:
            raise SqlError("dangling operand in WHERE clause")
        if token.kind == "op":
            self._next()
            right = self._parse_operand()
            return Comparison(operand, token.value, right)
        if token.kind == "keyword" and token.value == "like":
            self._next()
            pattern = self._next()
            if pattern.kind != "string":
                raise SqlError("LIKE expects a string pattern")
            return Like(operand, pattern.value)
        if token.kind == "keyword" and token.value == "is":
            self._next()
            negated = self._accept_keyword("not") is not None
            self._expect_keyword("null")
            return IsNull(operand, negated=negated)
        if token.kind == "keyword" and token.value == "in":
            self._next()
            self._expect_punct("(")
            choices: List[Any] = []
            while True:
                value = self._next()
                if value.kind not in ("string", "number"):
                    raise SqlError("IN list expects literals")
                choices.append(value.value)
                if not self._accept_punct(","):
                    break
            self._expect_punct(")")
            return InList(operand, tuple(choices))
        if token.kind == "keyword" and token.value == "between":
            self._next()
            low = self._parse_operand()
            self._expect_keyword("and")
            high = self._parse_operand()
            return Between(operand, low, high)
        raise SqlError(f"unexpected token {token.text!r} in condition")

    def _parse_operand(self):
        token = self._next()
        if token.kind == "ident":
            return col(token.value)
        if token.kind in ("string", "number"):
            from repro.relational.expressions import lit

            return lit(token.value)
        raise SqlError(f"expected column or literal, got {token.text!r}")


def plan_select(sql: str) -> SelectPlan:
    """Parse a SELECT statement into an unbound :class:`SelectPlan`."""
    return _Parser(_tokenize(sql)).parse_plan()


def plan_to_query(database: Database, plan: SelectPlan) -> Query:
    """Lower a :class:`SelectPlan` onto the in-memory query engine."""
    query = Query(database)
    if plan.distinct:
        query.distinct()
    query.from_(plan.table)
    for join in plan.joins:
        if join.left:
            query.left_join(join.table, join.left_column, join.right_column)
        else:
            query.join(join.table, join.left_column, join.right_column)
    if plan.where is not None:
        query.where(plan.where)
    for column, descending in plan.order_by:
        query.order_by(column, descending)
    if plan.limit is not None:
        query.limit(plan.limit)
    if plan.columns != ["*"]:
        query.select(*plan.columns)
    return query


def parse_sql(database: Database, sql: str) -> Query:
    """Parse a SELECT statement into an executable :class:`Query`."""
    return plan_to_query(database, plan_select(sql))


def execute_sql(database: Database, sql: str) -> ResultSet:
    """Parse and execute a SELECT statement."""
    return parse_sql(database, sql).execute()
