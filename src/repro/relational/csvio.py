"""Dump/load a database to a directory of CSV files plus a schema manifest.

Several real life-science sources ship "direct relational dump files"
(Section 4.1: Swiss-Prot, GeneOntology, EnsEmbl). This module is both the
writer used by the synthetic generators to materialize such dumps and the
reader used by the import layer's ``RelationalDumpImporter``.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Union

from repro.relational.database import Database
from repro.relational.schema import Column, ForeignKey, TableSchema, UniqueConstraint
from repro.relational.types import DataType

_MANIFEST = "schema.json"
_NULL_MARKER = "\\N"


def dump_database(database: Database, directory: Union[str, Path]) -> Path:
    """Write ``database`` as ``<dir>/<table>.csv`` files plus ``schema.json``."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, dict] = {"database": database.name, "tables": {}}
    for table in database.tables():
        schema = table.schema
        manifest["tables"][table.name] = {
            "columns": [
                {"name": c.name, "type": c.data_type.value, "nullable": c.nullable}
                for c in schema.columns
            ],
            "primary_key": list(schema.primary_key) if schema.primary_key else None,
            "unique": [list(u.columns) for u in schema.unique_constraints],
            "foreign_keys": [
                {
                    "columns": list(fk.columns),
                    "target_table": fk.target_table,
                    "target_columns": list(fk.target_columns),
                }
                for fk in schema.foreign_keys
            ],
        }
        with open(path / f"{table.name}.csv", "w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            writer.writerow(table.column_names)
            for tup in table.raw_rows():
                writer.writerow([_encode(v) for v in tup])
    with open(path / _MANIFEST, "w", encoding="utf-8") as fh:
        # repro-lint: allow[raw-json-dumps] relational sits below persist in the layer map; the CSV manifest is a debug artifact, not content-hashed
        json.dump(manifest, fh, indent=2, sort_keys=True)
    return path


def load_database(
    directory: Union[str, Path], include_constraints: bool = True
) -> Database:
    """Load a database written by :func:`dump_database`.

    Args:
        include_constraints: when False, declared PK/UNIQUE/FK metadata is
            dropped — emulating a dump whose DDL was lost, the scenario
            ALADIN's constraint-discovery heuristics must handle.
    """
    path = Path(directory)
    with open(path / _MANIFEST, encoding="utf-8") as fh:
        manifest = json.load(fh)
    database = Database(manifest["database"])
    for table_name, spec in sorted(manifest["tables"].items()):
        columns = [
            Column(c["name"], DataType(c["type"]), c["nullable"]) for c in spec["columns"]
        ]
        if include_constraints:
            schema = TableSchema(
                name=table_name,
                columns=columns,
                primary_key=tuple(spec["primary_key"]) if spec["primary_key"] else None,
                unique_constraints=[UniqueConstraint(tuple(u)) for u in spec["unique"]],
                foreign_keys=[
                    ForeignKey(
                        tuple(fk["columns"]),
                        fk["target_table"],
                        tuple(fk["target_columns"]),
                    )
                    for fk in spec["foreign_keys"]
                ],
            )
        else:
            schema = TableSchema(name=table_name, columns=columns)
        table = database.create_table(schema)
        csv_path = path / f"{table_name}.csv"
        with open(csv_path, newline="", encoding="utf-8") as fh:
            reader = csv.reader(fh)
            header = next(reader)
            for record in reader:
                row = {}
                for name, raw in zip(header, record):
                    row[name] = _decode(raw)
                table.insert(row)
    return database


def _encode(value):
    """Encode one cell; leading backslashes are escaped so that a literal
    ``"\\N"`` string cannot be confused with the NULL marker."""
    if value is None:
        return _NULL_MARKER
    if isinstance(value, str) and value.startswith("\\"):
        return "\\" + value
    return value


def _decode(raw: str):
    if raw == _NULL_MARKER:
        return None
    if raw.startswith("\\\\"):
        return raw[1:]
    return raw
