"""Predicate expressions evaluated over row dictionaries.

These back both the programmatic :class:`repro.relational.query.Query`
builder and the SQL parser. SQL three-valued logic is approximated the way
most applications observe it: a comparison with NULL is false, ``IS NULL``
tests nullness explicitly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.relational.types import is_null


class Expression:
    """Base class for boolean predicates over a row dict."""

    def evaluate(self, row: Dict[str, Any]) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def __and__(self, other: "Expression") -> "And":
        return And(self, other)

    def __or__(self, other: "Expression") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class ColumnRef:
    """Reference to a column, optionally qualified (``table.column``)."""

    name: str

    def resolve(self, row: Dict[str, Any]) -> Any:
        key = self.name.lower()
        if key in row:
            return row[key]
        # Allow unqualified lookup against qualified row keys and vice versa.
        if "." not in key:
            matches = [k for k in row if k.endswith("." + key)]
            if len(matches) == 1:
                return row[matches[0]]
            if len(matches) > 1:
                raise KeyError(f"ambiguous column {self.name!r}: {sorted(matches)}")
        else:
            bare = key.split(".", 1)[1]
            if bare in row:
                return row[bare]
        raise KeyError(f"unknown column {self.name!r} in row with keys {sorted(row)}")


@dataclass(frozen=True)
class Literal:
    value: Any

    def resolve(self, row: Dict[str, Any]) -> Any:
        return self.value


def col(name: str) -> ColumnRef:
    """Shorthand to build a column reference."""
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """Shorthand to build a literal operand."""
    return Literal(value)


def _operand(value: Any):
    if isinstance(value, (ColumnRef, Literal)):
        return value
    return Literal(value)


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Expression):
    left: Any
    op: str
    right: Any

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ValueError(f"unknown comparison operator {self.op!r}")
        object.__setattr__(self, "left", _operand(self.left))
        object.__setattr__(self, "right", _operand(self.right))

    def evaluate(self, row: Dict[str, Any]) -> bool:
        left = self.left.resolve(row)
        right = self.right.resolve(row)
        if is_null(left) or is_null(right):
            return False
        # Numeric cross-type comparisons are fine; otherwise require same kind.
        if isinstance(left, str) != isinstance(right, str):
            if self.op == "=":
                return False
            if self.op == "!=":
                return True
            raise TypeError(
                f"cannot order {type(left).__name__} against {type(right).__name__}"
            )
        return _COMPARATORS[self.op](left, right)


@dataclass(frozen=True)
class And(Expression):
    left: Expression
    right: Expression

    def evaluate(self, row: Dict[str, Any]) -> bool:
        return self.left.evaluate(row) and self.right.evaluate(row)


@dataclass(frozen=True)
class Or(Expression):
    left: Expression
    right: Expression

    def evaluate(self, row: Dict[str, Any]) -> bool:
        return self.left.evaluate(row) or self.right.evaluate(row)


@dataclass(frozen=True)
class Not(Expression):
    inner: Expression

    def evaluate(self, row: Dict[str, Any]) -> bool:
        return not self.inner.evaluate(row)


@dataclass(frozen=True)
class IsNull(Expression):
    operand: Any
    negated: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "operand", _operand(self.operand))

    def evaluate(self, row: Dict[str, Any]) -> bool:
        result = is_null(self.operand.resolve(row))
        return not result if self.negated else result


@dataclass(frozen=True)
class InList(Expression):
    operand: Any
    choices: Tuple[Any, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "operand", _operand(self.operand))
        object.__setattr__(self, "choices", tuple(self.choices))

    def evaluate(self, row: Dict[str, Any]) -> bool:
        value = self.operand.resolve(row)
        if is_null(value):
            return False
        return value in self.choices


@dataclass(frozen=True)
class Between(Expression):
    operand: Any
    low: Any
    high: Any

    def __post_init__(self) -> None:
        object.__setattr__(self, "operand", _operand(self.operand))
        object.__setattr__(self, "low", _operand(self.low))
        object.__setattr__(self, "high", _operand(self.high))

    def evaluate(self, row: Dict[str, Any]) -> bool:
        value = self.operand.resolve(row)
        low = self.low.resolve(row)
        high = self.high.resolve(row)
        if is_null(value) or is_null(low) or is_null(high):
            return False
        return low <= value <= high


@dataclass(frozen=True)
class Like(Expression):
    """SQL LIKE with ``%`` (any run) and ``_`` (single char), case-insensitive."""

    operand: Any
    pattern: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "operand", _operand(self.operand))
        regex = re.escape(self.pattern.lower()).replace("%", ".*").replace("_", ".")
        object.__setattr__(self, "_regex", re.compile(f"^{regex}$", re.DOTALL))

    def evaluate(self, row: Dict[str, Any]) -> bool:
        value = self.operand.resolve(row)
        if is_null(value):
            return False
        return bool(self._regex.match(str(value).lower()))
