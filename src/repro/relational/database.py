"""A named collection of tables with a data dictionary.

One :class:`Database` holds the relational representation of exactly one
life-science data source (the paper imports "each data source ... into the
relational database system"; we keep one Database per source so that
per-source discovery never touches other sources, which is what makes
incremental addition cheap — Section 4.3).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.relational.schema import ForeignKey, SchemaError, TableSchema, validate_identifier
from repro.relational.table import Row, Table
from repro.relational.types import is_null


class Database:
    """A named set of tables plus catalog access."""

    def __init__(self, name: str):
        self.name = validate_identifier(name, "database")
        self._tables: Dict[str, Table] = {}

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists in {self.name!r}")
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def drop_table(self, name: str) -> None:
        lowered = name.lower()
        if lowered not in self._tables:
            raise SchemaError(f"no table {name!r} in database {self.name!r}")
        del self._tables[lowered]

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        lowered = name.lower()
        if lowered not in self._tables:
            raise SchemaError(f"no table {name!r} in database {self.name!r}")
        return self._tables[lowered]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def tables(self) -> Iterable[Table]:
        for name in self.table_names():
            yield self._tables[name]

    def total_rows(self) -> int:
        return sum(len(t) for t in self._tables.values())

    def column_cache_stats(self) -> Dict[str, int]:
        """Aggregate ColumnStore hit/miss counters across all tables.

        Bulk materialization and snapshot rehydration count as *warm*: a
        database whose caches were built by ``materialize_all`` or restored
        from a snapshot reports zero misses, and every subsequent read is a
        hit. A non-zero miss count therefore always means something was
        genuinely recomputed from the row store. ``pushdown_hits`` counts
        lookups answered by a snapshot backing's SQL index instead of a
        materialized cache (lazy hydration's deferred-work dividend).
        """
        hits = sum(t.columns.hits for t in self._tables.values())
        misses = sum(t.columns.misses for t in self._tables.values())
        pushdown = sum(t.columns.pushdown_hits for t in self._tables.values())
        return {"hits": hits, "misses": misses, "pushdown_hits": pushdown}

    # ------------------------------------------------------------------
    # DML convenience
    # ------------------------------------------------------------------
    def insert(self, table_name: str, row: Row) -> None:
        self.table(table_name).insert(row)

    def insert_many(self, table_name: str, rows: Iterable[Row]) -> int:
        return self.table(table_name).insert_many(rows)

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def check_foreign_keys(self) -> List[str]:
        """Validate every declared FK; return human-readable violations.

        Checked lazily (not on insert) because flat-file loads are unordered.
        """
        violations: List[str] = []
        for table in self.tables():
            for fk in table.schema.foreign_keys:
                violations.extend(self._check_one_fk(table, fk))
        return violations

    def _check_one_fk(self, table: Table, fk: ForeignKey) -> List[str]:
        if not self.has_table(fk.target_table):
            return [
                f"{table.name}: FK {fk.columns} -> missing table {fk.target_table!r}"
            ]
        target = self.table(fk.target_table)
        target_keys = set()
        target_indexes = [target.schema.column_index(c) for c in fk.target_columns]
        for tup in target.raw_rows():
            target_keys.add(tuple(tup[i] for i in target_indexes))
        violations = []
        source_indexes = [table.schema.column_index(c) for c in fk.columns]
        for tup in table.raw_rows():
            key = tuple(tup[i] for i in source_indexes)
            if any(is_null(v) for v in key):
                continue
            if key not in target_keys:
                violations.append(
                    f"{table.name}: FK value {key!r} not found in "
                    f"{fk.target_table}({', '.join(fk.target_columns)})"
                )
        return violations

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def strip_constraints(self) -> "Database":
        """Copy of this database with all declared constraints removed.

        Simulates the "generic parser" situation the paper's heuristics are
        designed for: the data survives, the metadata does not.
        """
        stripped = Database(self.name)
        for table in self.tables():
            new_table = stripped.create_table(table.schema.without_constraints())
            for row in table.rows():
                new_table.insert(row)
        return stripped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{t.name}[{len(t)}]" for t in self.tables())
        return f"Database({self.name!r}: {parts})"
