"""A small relational-algebra executor with a fluent builder.

Supports the shapes ALADIN's access layer needs (Section 4.6 "querying
allows full SQL queries on the schemata as imported"): projection,
selection, inner/left equi-joins, ordering, limiting, and the handful of
aggregates used by the statistics collector.

Joined rows use qualified keys (``table.column``); single-table rows use
bare column names. :class:`repro.relational.expressions.ColumnRef` resolves
either spelling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.relational.database import Database
from repro.relational.expressions import Expression
from repro.relational.table import Row, Table
from repro.relational.types import is_null


@dataclass
class ResultSet:
    """Materialized query result: ordered rows plus column order."""

    columns: List[str]
    rows: List[Dict[str, Any]]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column_values(self, column: str) -> List[Any]:
        key = column.lower()
        return [row[key] for row in self.rows]

    def first(self) -> Optional[Dict[str, Any]]:
        return self.rows[0] if self.rows else None

    def as_tuples(self) -> List[Tuple[Any, ...]]:
        return [tuple(row[c] for c in self.columns) for row in self.rows]


@dataclass(frozen=True)
class _Join:
    table: str
    left_column: str
    right_column: str
    kind: str = "inner"  # "inner" | "left"


class Query:
    """Fluent single-statement query against one database."""

    def __init__(self, database: Database):
        self._db = database
        self._from: Optional[str] = None
        self._joins: List[_Join] = []
        self._where: Optional[Expression] = None
        self._select: Optional[List[str]] = None
        self._order_by: List[Tuple[str, bool]] = []
        self._limit: Optional[int] = None
        self._distinct = False

    # ------------------------------------------------------------------
    # builder
    # ------------------------------------------------------------------
    def from_(self, table: str) -> "Query":
        self._from = table.lower()
        return self

    def join(self, table: str, left_column: str, right_column: str) -> "Query":
        self._joins.append(_Join(table.lower(), left_column.lower(), right_column.lower(), "inner"))
        return self

    def left_join(self, table: str, left_column: str, right_column: str) -> "Query":
        self._joins.append(_Join(table.lower(), left_column.lower(), right_column.lower(), "left"))
        return self

    def where(self, expression: Expression) -> "Query":
        if self._where is None:
            self._where = expression
        else:
            self._where = self._where & expression
        return self

    def select(self, *columns: str) -> "Query":
        self._select = [c.lower() for c in columns]
        return self

    def distinct(self) -> "Query":
        self._distinct = True
        return self

    def order_by(self, column: str, descending: bool = False) -> "Query":
        self._order_by.append((column.lower(), descending))
        return self

    def limit(self, n: int) -> "Query":
        self._limit = n
        return self

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self) -> ResultSet:
        if self._from is None:
            raise ValueError("query has no FROM table")
        rows = self._scan_base()
        for join in self._joins:
            rows = self._apply_join(rows, join)
        if self._where is not None:
            rows = [row for row in rows if self._where.evaluate(row)]
        for column, descending in reversed(self._order_by):
            rows = _stable_sort(rows, column, descending)
        columns = self._output_columns(rows)
        projected = [self._project(row, columns) for row in rows]
        if self._distinct:
            projected = _distinct_rows(projected, columns)
        if self._limit is not None:
            projected = projected[: self._limit]
        return ResultSet(columns=columns, rows=projected)

    def count(self) -> int:
        return len(self.execute())

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _qualified(self) -> bool:
        return bool(self._joins)

    def _scan_base(self) -> List[Dict[str, Any]]:
        table = self._db.table(self._from)
        if not self._qualified():
            return list(table.rows())
        prefix = table.name + "."
        return [{prefix + k: v for k, v in row.items()} for row in table.rows()]

    def _apply_join(self, rows: List[Dict[str, Any]], join: _Join) -> List[Dict[str, Any]]:
        right = self._db.table(join.table)
        prefix = right.name + "."
        # Hash the right side on the join key.
        index: Dict[Any, List[Row]] = {}
        right_col = join.right_column.split(".")[-1]
        for row in right.rows():
            key = row[right_col]
            if is_null(key):
                continue
            index.setdefault(key, []).append(row)
        left_key = join.left_column if "." in join.left_column else None
        out: List[Dict[str, Any]] = []
        null_right = {prefix + c: None for c in right.column_names}
        for row in rows:
            if left_key is not None:
                value = row.get(left_key)
            else:
                value = _resolve_bare(row, join.left_column)
            matches = [] if is_null(value) else index.get(value, [])
            if matches:
                for match in matches:
                    merged = dict(row)
                    merged.update({prefix + k: v for k, v in match.items()})
                    out.append(merged)
            elif join.kind == "left":
                merged = dict(row)
                merged.update(null_right)
                out.append(merged)
        return out

    def _output_columns(self, rows: List[Dict[str, Any]]) -> List[str]:
        if self._select:
            resolved = []
            for name in self._select:
                if name == "*":
                    resolved.extend(self._all_columns())
                else:
                    resolved.append(name)
            return resolved
        return self._all_columns()

    def _all_columns(self) -> List[str]:
        base = self._db.table(self._from)
        if not self._qualified():
            return list(base.column_names)
        columns = [f"{base.name}.{c}" for c in base.column_names]
        for join in self._joins:
            right = self._db.table(join.table)
            columns.extend(f"{right.name}.{c}" for c in right.column_names)
        return columns

    def _project(self, row: Dict[str, Any], columns: List[str]) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for name in columns:
            if name in row:
                out[name] = row[name]
            else:
                out[name] = _resolve_bare(row, name)
        return out


def _resolve_bare(row: Dict[str, Any], name: str) -> Any:
    if name in row:
        return row[name]
    if "." not in name:
        matches = [k for k in row if k.endswith("." + name)]
        if len(matches) == 1:
            return row[matches[0]]
        if len(matches) > 1:
            raise KeyError(f"ambiguous column {name!r}: {sorted(matches)}")
    else:
        bare = name.split(".", 1)[1]
        if bare in row:
            return row[bare]
    raise KeyError(f"unknown column {name!r}")


def _sort_key(value: Any) -> Tuple[int, Any]:
    # NULLs last; numbers before strings to keep orderings total.
    if is_null(value):
        return (2, 0)
    if isinstance(value, str):
        return (1, value)
    return (0, value)


def _stable_sort(
    rows: List[Dict[str, Any]], column: str, descending: bool
) -> List[Dict[str, Any]]:
    def key(row: Dict[str, Any]):
        return _sort_key(_resolve_bare(row, column))

    return sorted(rows, key=key, reverse=descending)


def _distinct_rows(rows: List[Dict[str, Any]], columns: List[str]) -> List[Dict[str, Any]]:
    seen = set()
    out = []
    for row in rows:
        key = tuple(row[c] for c in columns)
        if key not in seen:
            seen.add(key)
            out.append(row)
    return out
