"""Row storage with constraint enforcement and per-column access paths.

Tables store rows as tuples in insertion order. Declared PRIMARY KEY and
UNIQUE constraints are enforced on insert; declared FOREIGN KEYs are checked
lazily via :meth:`Database.check_foreign_keys` because life-science dumps
frequently load referencing tables before referenced ones.

The per-column accessors (``values``, ``distinct_values``, ``value_set``)
are the workhorses of the discovery layer: uniqueness detection, accession
analysis, and inclusion-dependency mining are all expressed over them. They
delegate to a per-table :class:`~repro.relational.columns.ColumnStore` that
materializes each access path once and keeps it consistent under
``insert``/``delete_where`` — callers must treat the returned containers
as immutable.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.relational.columns import ColumnProfile, ColumnStore
from repro.relational.schema import TableSchema
from repro.relational.types import coerce_value, is_null


class ConstraintViolation(ValueError):
    """Raised when an insert violates a declared constraint."""


Row = Dict[str, Any]


class Table:
    """One relation: a schema plus rows stored as tuples."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: List[Tuple[Any, ...]] = []
        # One uniqueness index per declared unique key (PK + UNIQUEs).
        self._unique_indexes: Dict[Tuple[str, ...], Dict[Tuple[Any, ...], int]] = {}
        for key in self._unique_keys():
            self._unique_indexes[key] = {}
        self.columns = ColumnStore(self)

    # ------------------------------------------------------------------
    # schema helpers
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def column_names(self) -> List[str]:
        return self.schema.column_names

    def _unique_keys(self) -> List[Tuple[str, ...]]:
        keys: List[Tuple[str, ...]] = []
        if self.schema.primary_key is not None:
            keys.append(tuple(self.schema.primary_key))
        for unique in self.schema.unique_constraints:
            if tuple(unique.columns) not in keys:
                keys.append(tuple(unique.columns))
        return keys

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, row: Row) -> None:
        """Insert one row given as a column->value mapping.

        Missing columns become NULL. Values are coerced to column types.
        """
        unknown = set(k.lower() for k in row) - set(self.column_names)
        if unknown:
            raise KeyError(
                f"row for table {self.name!r} has unknown columns: {sorted(unknown)}"
            )
        normalized = {k.lower(): v for k, v in row.items()}
        values: List[Any] = []
        for column in self.schema.columns:
            value = coerce_value(normalized.get(column.name), column.data_type)
            if value is None and not column.nullable:
                raise ConstraintViolation(
                    f"column {self.name}.{column.name} is NOT NULL but got NULL"
                )
            values.append(value)
        tup = tuple(values)
        self._check_unique(tup)
        row_id = len(self._rows)
        self._rows.append(tup)
        self._index_row(tup, row_id)
        self.columns.note_insert(tup, row_id)

    def insert_many(self, rows: Iterable[Row], materialize: bool = True) -> int:
        """Bulk insert with the cache-materializing fast path.

        Rows are validated and coerced exactly like :meth:`insert`, but the
        ColumnStore caches are built eagerly in one column-major sweep after
        the load instead of lazily on first access — discovery reads every
        column anyway, so bulk loads (importers, snapshot rehydration) pay
        the materialization cost once, here, where it is cheapest.
        """
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        if materialize and count:
            self.columns.materialize_all()
        return count

    def bulk_load(self, tuples: Iterable[Sequence[Any]], materialize: bool = True) -> int:
        """Append pre-coerced row tuples directly (snapshot rehydration path).

        Values must already conform to the schema — they were coerced by
        :meth:`insert` before being serialized — so type coercion is
        skipped; unique indexes are still rebuilt and enforced. With
        ``materialize`` the ColumnStore access paths are built in one pass
        (profiles excluded: rehydration restores the persisted ones).
        """
        width = len(self.schema.columns)
        count = 0
        for values in tuples:
            tup = tuple(values)
            if len(tup) != width:
                raise ValueError(
                    f"row of width {len(tup)} for table {self.name!r} "
                    f"with {width} columns"
                )
            self._check_unique(tup)
            row_id = len(self._rows)
            self._rows.append(tup)
            self._index_row(tup, row_id)
            # No-op on a fresh table; keeps already-materialized caches
            # consistent if someone bulk-loads into a read table.
            self.columns.note_insert(tup, row_id)
            count += 1
        if materialize and count:
            self.columns.materialize_all(with_profiles=False)
        return count

    def _key_values(self, tup: Tuple[Any, ...], key: Tuple[str, ...]) -> Optional[Tuple[Any, ...]]:
        picked = tuple(tup[self.schema.column_index(c)] for c in key)
        # SQL semantics: NULLs never collide in unique indexes.
        if any(is_null(v) for v in picked):
            return None
        return picked

    def _check_unique(self, tup: Tuple[Any, ...]) -> None:
        for key, index in self._unique_indexes.items():
            picked = self._key_values(tup, key)
            if picked is not None and picked in index:
                raise ConstraintViolation(
                    f"duplicate value {picked!r} for unique key {key} of table {self.name!r}"
                )

    def _index_row(self, tup: Tuple[Any, ...], row_id: int) -> None:
        for key, index in self._unique_indexes.items():
            picked = self._key_values(tup, key)
            if picked is not None:
                index[picked] = row_id

    def delete_where(self, predicate) -> int:
        """Delete rows matching ``predicate`` (a callable on row dicts).

        Unique indexes are maintained selectively — deleted keys are
        dropped and surviving entries renumbered — instead of re-deriving
        every key from every surviving row; the ColumnStore invalidates
        its caches (row ids shift under deletion).
        """
        kept: List[Tuple[Any, ...]] = []
        old_to_new: Dict[int, int] = {}
        deleted = 0
        for old_id, tup in enumerate(self._rows):
            if predicate(self._as_dict(tup)):
                deleted += 1
            else:
                old_to_new[old_id] = len(kept)
                kept.append(tup)
        if deleted:
            self._rows = kept
            for key, index in self._unique_indexes.items():
                self._unique_indexes[key] = {
                    picked: old_to_new[row_id]
                    for picked, row_id in index.items()
                    if row_id in old_to_new
                }
            self.columns.note_delete()
        return deleted

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def _as_dict(self, tup: Tuple[Any, ...]) -> Row:
        return dict(zip(self.column_names, tup))

    def rows(self) -> Iterator[Row]:
        for tup in self._rows:
            yield self._as_dict(tup)

    def row_at(self, index: int) -> Row:
        return self._as_dict(self._rows[index])

    def raw_rows(self) -> Sequence[Tuple[Any, ...]]:
        return self._rows

    def values(self, column: str) -> List[Any]:
        """All values (including NULLs) of one column, in row order."""
        return self.columns.values(column)

    def non_null_values(self, column: str) -> List[Any]:
        return self.columns.non_null_values(column)

    def distinct_values(self, column: str) -> List[Any]:
        return self.columns.distinct_values(column)

    def value_set(self, column: str) -> FrozenSet[Any]:
        return self.columns.value_set(column)

    def column_profile(self, column: str) -> ColumnProfile:
        """The column's cached :class:`ColumnProfile` (one-time statistics)."""
        return self.columns.profile(column)

    def lookup_unique(self, column: str, value: Any) -> Optional[Row]:
        """Find the first row where ``column`` equals ``value``.

        Declared-unique columns resolve through the uniqueness index;
        everything else goes through the ColumnStore's value->row_ids hash
        index (no linear scan).
        """
        key = (column.lower(),)
        index = self._unique_indexes.get(key)
        if index is not None:
            row_id = index.get((value,))
            return None if row_id is None else self.row_at(row_id)
        if is_null(value):
            idx = self.schema.column_index(column)
            for tup in self._rows:
                if tup[idx] == value:
                    return self._as_dict(tup)
            return None
        row_ids = self.columns.lookup_row_ids(column, value)
        return self.row_at(row_ids[0]) if row_ids else None

    def find_where(self, column: str, value: Any) -> List[Row]:
        """All rows where ``column`` equals ``value``, index-driven."""
        if is_null(value):
            idx = self.schema.column_index(column)
            return [self._as_dict(tup) for tup in self._rows if tup[idx] == value]
        row_ids = self.columns.lookup_row_ids(column, value)
        return [self.row_at(i) for i in row_ids]

    def is_unique(self, column: str) -> bool:
        """SELECT COUNT(col) == COUNT(DISTINCT col) — ignoring NULLs.

        This is the "SQL query for each attribute" from Section 4.2 used to
        mark attributes as unique. Empty columns are vacuously unique here;
        :attr:`ColumnProfile.is_unique` additionally requires non-emptiness.
        """
        profile = self.columns.profile(column)
        return profile.non_null_count == profile.distinct_count
