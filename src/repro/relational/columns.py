"""Columnar access paths: cached per-column arrays, sets, and indexes.

Every layer above :class:`~repro.relational.table.Table` — uniqueness
detection, inclusion-dependency mining, accession analysis, link-discovery
statistics, vocabulary overlap, duplicate blocking — is expressed over
per-column reads. Before this module each caller rebuilt the column it
needed from the row store on every call; a single ``add_source`` re-derived
the same value sets dozens of times. The :class:`ColumnStore` materializes
each access path once, lazily, and keeps it consistent under mutation:

* ``values`` / ``non_null_values`` — row-ordered arrays;
* ``value_set`` — a frozen set for containment and overlap tests;
* ``distinct_values`` — first-seen-order distinct list;
* ``row_ids`` — a ``value -> [row_id, ...]`` hash index driving
  ``find_where`` / ``lookup_unique`` without linear scans;
* ``profile`` — a :class:`ColumnProfile` with the one-time per-source
  statistics of Section 4.4 ("computed only once for each data source and
  ... reused for subsequently added data sources").

Invalidation is precise: ``note_insert`` extends materialized structures in
O(1) per row (only the aggregate profile is dropped, since averages cannot
be patched incrementally without storing partial sums — and those *are*
stored, see ``_ProfileAccumulator``); ``note_delete`` drops caches because
row ids shift. Callers must treat every returned container as immutable —
they are the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set, TYPE_CHECKING

from repro.relational.types import DataType, is_null

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.relational.table import Table

_PROTEIN_CHARS = frozenset("ACDEFGHIKLMNPQRSTVWY")
_DNA_CHARS = frozenset("ACGTUN")


@dataclass(frozen=True)
class ColumnProfile:
    """One column's value statistics, computed once per source.

    This is the storage-level half of
    :class:`repro.linking.stats.AttributeStatistics`: everything derivable
    from the column alone, with the same conventions (text lengths over
    ``str(v)``, numeric = number or digit-only string, alphabet fractions
    over characters).
    """

    column: str
    data_type: DataType
    row_count: int
    non_null_count: int
    distinct_count: int
    is_unique: bool  # unique over non-null values AND non-empty
    avg_length: float
    min_length: int
    max_length: int
    numeric_fraction: float
    alpha_fraction: float
    protein_alphabet_fraction: float
    dna_alphabet_fraction: float


class _ProfileAccumulator:
    """Running sums behind a ColumnProfile, patchable on insert."""

    __slots__ = (
        "total_chars", "alpha_chars", "protein_chars", "dna_chars",
        "numeric_count", "min_length", "max_length",
    )

    def __init__(self) -> None:
        self.total_chars = 0
        self.alpha_chars = 0
        self.protein_chars = 0
        self.dna_chars = 0
        self.numeric_count = 0
        self.min_length: Optional[int] = None
        self.max_length: Optional[int] = None

    def add(self, value: Any) -> None:
        text = str(value)
        length = len(text)
        self.total_chars += length
        self.alpha_chars += sum(ch.isalpha() for ch in text)
        self.protein_chars += sum(ch in _PROTEIN_CHARS for ch in text)
        self.dna_chars += sum(ch in _DNA_CHARS for ch in text)
        if isinstance(value, (int, float)) or (isinstance(value, str) and value.isdigit()):
            self.numeric_count += 1
        self.min_length = length if self.min_length is None else min(self.min_length, length)
        self.max_length = length if self.max_length is None else max(self.max_length, length)


class ColumnStore:
    """Lazily materialized, incrementally maintained column caches.

    One store per :class:`Table`. Every cache is built at most once between
    mutations; ``hits``/``misses`` count served-from-cache vs. materializing
    accesses so the E6 acceptance test can assert that a second discovery
    pass performs zero recomputation.
    """

    def __init__(self, table: "Table"):
        self._table = table
        self._values: Dict[str, List[Any]] = {}
        self._non_null: Dict[str, List[Any]] = {}
        self._sets: Dict[str, Set[Any]] = {}
        self._frozen: Dict[str, FrozenSet[Any]] = {}
        self._distinct: Dict[str, List[Any]] = {}
        self._row_ids: Dict[str, Dict[Any, List[int]]] = {}
        self._accumulators: Dict[str, _ProfileAccumulator] = {}
        self._profiles: Dict[str, ColumnProfile] = {}
        self._backing = None  # ColumnSource while snapshot-backed
        self.hits = 0
        self.misses = 0
        self.pushdown_hits = 0

    # ------------------------------------------------------------------
    # cache accounting
    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "pushdown_hits": self.pushdown_hits,
        }

    def reset_cache_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.pushdown_hits = 0

    # ------------------------------------------------------------------
    # snapshot backing (the ColumnSource seam)
    # ------------------------------------------------------------------
    def attach_backing(self, backing: Any) -> None:
        """Back this store by a lazy column source (snapshot pushdown).

        ``backing`` answers ``lookup_row_ids(column, value)`` from the
        snapshot's own SQL indexes (or returns ``None`` to decline, e.g.
        for a probe value SQLite cannot bind exactly). While attached and
        unmutated, the rows here are a byte-identical replica of the
        snapshot slice, so cache builds are rehydration work — counted as
        neither hit nor miss, like :meth:`materialize_all`. The first
        mutation detaches the backing: the replica has diverged and every
        answer must come from memory again.
        """
        self._backing = backing

    def _note_build(self) -> None:
        """Account one cache materialization on the lazy-access path.

        With a pristine snapshot backing attached, builds are rehydration
        work, not cache misses — warm-started stores keep ``misses == 0``.
        """
        if self._backing is None:
            self.misses += 1

    def lookup_row_ids(self, column: str, value: Any) -> List[int]:
        """``value -> row ids`` through the cheapest available path.

        A materialized ``row_ids`` index answers directly; otherwise an
        attached backing is asked to push the lookup down to the snapshot
        (no cache is built); only then is the full index materialized.
        """
        column = column.lower()
        cached = self._row_ids.get(column)
        if cached is not None:
            self.hits += 1
            return cached.get(value, [])
        if self._backing is not None:
            pushed = self._backing.lookup_row_ids(column, value)
            if pushed is not None:
                self.pushdown_hits += 1
                return pushed
        return self.row_ids(column).get(value, [])

    # ------------------------------------------------------------------
    # access paths
    # ------------------------------------------------------------------
    def values(self, column: str) -> List[Any]:
        """Row-ordered values including NULLs. Do not mutate."""
        column = column.lower()
        cached = self._values.get(column)
        if cached is not None:
            self.hits += 1
            return cached
        self._note_build()
        idx = self._table.schema.column_index(column)
        cached = [tup[idx] for tup in self._table.raw_rows()]
        self._values[column] = cached
        return cached

    def non_null_values(self, column: str) -> List[Any]:
        """Row-ordered non-null values. Do not mutate."""
        column = column.lower()
        cached = self._non_null.get(column)
        if cached is not None:
            self.hits += 1
            return cached
        self._note_build()
        cached = [v for v in self.values(column) if not is_null(v)]
        self._non_null[column] = cached
        return cached

    def value_set(self, column: str) -> FrozenSet[Any]:
        """Frozen set of the column's non-null values."""
        column = column.lower()
        frozen = self._frozen.get(column)
        if frozen is not None:
            self.hits += 1
            return frozen
        self._note_build()
        frozen = frozenset(self._mutable_set(column))
        self._frozen[column] = frozen
        return frozen

    def distinct_values(self, column: str) -> List[Any]:
        """Distinct non-null values in first-seen order. Do not mutate."""
        column = column.lower()
        cached = self._distinct.get(column)
        if cached is not None:
            self.hits += 1
            return cached
        self._note_build()
        seen: Set[Any] = set()
        out: List[Any] = []
        for value in self.non_null_values(column):
            if value not in seen:
                seen.add(value)
                out.append(value)
        self._distinct[column] = out
        return out

    def row_ids(self, column: str) -> Dict[Any, List[int]]:
        """Hash index ``value -> ascending row ids`` (non-null values only).

        Do not mutate; this is the shared access path behind
        ``find_where``, ``lookup_unique`` and the object resolver.
        """
        column = column.lower()
        cached = self._row_ids.get(column)
        if cached is not None:
            self.hits += 1
            return cached
        self._note_build()
        index: Dict[Any, List[int]] = {}
        idx = self._table.schema.column_index(column)
        for row_id, tup in enumerate(self._table.raw_rows()):
            value = tup[idx]
            if not is_null(value):
                index.setdefault(value, []).append(row_id)
        self._row_ids[column] = index
        return index

    def profile(self, column: str) -> ColumnProfile:
        """The column's :class:`ColumnProfile`, cached until mutation."""
        column = column.lower()
        cached = self._profiles.get(column)
        if cached is not None:
            self.hits += 1
            return cached
        self._note_build()
        non_null = self.non_null_values(column)
        accumulator = self._accumulators.get(column)
        if accumulator is None:
            accumulator = _ProfileAccumulator()
            for value in non_null:
                accumulator.add(value)
            self._accumulators[column] = accumulator
        profile = self._profile_from(
            column, len(non_null), len(self.value_set(column)), accumulator
        )
        self._profiles[column] = profile
        return profile

    def _profile_from(
        self,
        column: str,
        non_null_count: int,
        distinct_count: int,
        accumulator: _ProfileAccumulator,
    ) -> ColumnProfile:
        return ColumnProfile(
            column=column,
            data_type=self._table.schema.column(column).data_type,
            row_count=len(self._table),
            non_null_count=non_null_count,
            distinct_count=distinct_count,
            is_unique=non_null_count > 0 and distinct_count == non_null_count,
            avg_length=(
                accumulator.total_chars / non_null_count if non_null_count else 0.0
            ),
            min_length=accumulator.min_length or 0,
            max_length=accumulator.max_length or 0,
            numeric_fraction=(
                accumulator.numeric_count / non_null_count if non_null_count else 0.0
            ),
            alpha_fraction=(
                accumulator.alpha_chars / accumulator.total_chars
                if accumulator.total_chars else 0.0
            ),
            protein_alphabet_fraction=(
                accumulator.protein_chars / accumulator.total_chars
                if accumulator.total_chars else 0.0
            ),
            dna_alphabet_fraction=(
                accumulator.dna_chars / accumulator.total_chars
                if accumulator.total_chars else 0.0
            ),
        )

    # ------------------------------------------------------------------
    # bulk materialization and rehydration
    # ------------------------------------------------------------------
    def materialize_all(self, with_profiles: bool = True) -> None:
        """Build every missing access path for every column in one pass.

        This is the bulk-load fast path: after a batch insert (or a
        snapshot rehydration) nothing is materialized yet, so one
        column-major sweep builds values, non-null arrays, sets, distinct
        lists, row-id indexes — and, unless ``with_profiles`` is False,
        the accumulators and profiles — without the per-access laziness.
        Structures that already exist (kept consistent by ``note_insert``)
        are left untouched. Materialization is load work, not query work:
        it counts as neither a hit nor a miss, so a warm-started table
        reports zero misses until something genuinely recomputes.
        """
        for column in self._table.schema.column_names:
            self._materialize_column(column, with_profiles)

    def _materialize_column(self, column: str, with_profiles: bool) -> None:
        values = self._values.get(column)
        if values is None:
            idx = self._table.schema.column_index(column)
            values = [tup[idx] for tup in self._table.raw_rows()]
            self._values[column] = values
        non_null = self._non_null.get(column)
        row_index = self._row_ids.get(column)
        if non_null is None or row_index is None:
            new_non_null: Optional[List[Any]] = [] if non_null is None else None
            new_index: Optional[Dict[Any, List[int]]] = (
                {} if row_index is None else None
            )
            for row_id, value in enumerate(values):
                if is_null(value):
                    continue
                if new_non_null is not None:
                    new_non_null.append(value)
                if new_index is not None:
                    new_index.setdefault(value, []).append(row_id)
            if new_non_null is not None:
                non_null = new_non_null
                self._non_null[column] = non_null
            if new_index is not None:
                self._row_ids[column] = new_index
        mutable = self._sets.get(column)
        if mutable is None:
            mutable = set(non_null)
            self._sets[column] = mutable
        if column not in self._frozen:
            self._frozen[column] = frozenset(mutable)
        if column not in self._distinct:
            seen: Set[Any] = set()
            distinct: List[Any] = []
            for value in non_null:
                if value not in seen:
                    seen.add(value)
                    distinct.append(value)
            self._distinct[column] = distinct
        if with_profiles and column not in self._profiles:
            accumulator = self._accumulators.get(column)
            if accumulator is None:
                accumulator = _ProfileAccumulator()
                for value in non_null:
                    accumulator.add(value)
                self._accumulators[column] = accumulator
            self._profiles[column] = self._profile_from(
                column, len(non_null), len(mutable), accumulator
            )

    def restore_profile(self, column: str, profile: ColumnProfile) -> None:
        """Install a deserialized :class:`ColumnProfile` as the cached one.

        Snapshot rehydration calls this instead of recomputing: the
        restored object becomes the cache, so the first ``profile()`` read
        after a warm start is a hit. The accumulator is left unset — it is
        only rebuilt if the table mutates later.
        """
        self._profiles[column.lower()] = profile

    # ------------------------------------------------------------------
    # maintenance hooks (called by Table)
    # ------------------------------------------------------------------
    def note_insert(self, tup: tuple, row_id: int) -> None:
        """Extend every *materialized* cache with one appended row.

        Unmaterialized columns stay lazy (bulk import costs nothing);
        materialized ones are patched in O(1) per structure instead of
        being thrown away.
        """
        # Before the emptiness check: a snapshot-backed store with no
        # materialized caches still diverges from its snapshot slice on
        # insert, and the backing must never answer for diverged rows.
        self._backing = None
        if not (self._values or self._non_null or self._sets or self._row_ids
                or self._distinct or self._accumulators or self._profiles
                or self._frozen):
            return
        columns = self._table.schema.column_names
        for position, column in enumerate(columns):
            value = tup[position]
            values = self._values.get(column)
            if values is not None:
                values.append(value)
            if is_null(value):
                continue
            non_null = self._non_null.get(column)
            if non_null is not None:
                non_null.append(value)
            mutable = self._sets.get(column)
            is_new = False
            if mutable is not None:
                is_new = value not in mutable
                if is_new:
                    mutable.add(value)
                    self._frozen.pop(column, None)
            distinct = self._distinct.get(column)
            if distinct is not None:
                if mutable is None:
                    # No membership set yet: fall back to scan-free check
                    # against the distinct list's own set materialization.
                    mutable = set(distinct)
                    self._sets[column] = mutable
                    is_new = value not in mutable
                    if is_new:
                        mutable.add(value)
                if is_new:
                    distinct.append(value)
            index = self._row_ids.get(column)
            if index is not None:
                index.setdefault(value, []).append(row_id)
            accumulator = self._accumulators.get(column)
            if accumulator is not None:
                accumulator.add(value)
        # A new row changes row_count for every column's profile, even
        # all-NULL ones; the accumulators above keep profile rebuilds O(1).
        self._profiles.clear()

    def note_delete(self) -> None:
        """Drop every cache: deletions shift row ids and remove values."""
        self._backing = None
        self._values.clear()
        self._non_null.clear()
        self._sets.clear()
        self._frozen.clear()
        self._distinct.clear()
        self._row_ids.clear()
        self._accumulators.clear()
        self._profiles.clear()

    # ------------------------------------------------------------------
    def _mutable_set(self, column: str) -> Set[Any]:
        mutable = self._sets.get(column)
        if mutable is None:
            mutable = set(self.non_null_values(column))
            self._sets[column] = mutable
        return mutable
