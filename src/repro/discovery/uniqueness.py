"""Unique-attribute detection.

Section 4.2: "As the first step, the algorithm detects 'unique' attributes
by issuing a SQL query for each attribute in the schema that has no known
UNIQUE constraint. Attributes that are unique are marked as such."

Declared UNIQUE/PK columns are taken from the catalog without scanning;
every other column is checked with the COUNT(col) = COUNT(DISTINCT col)
test (NULLs ignored, per SQL semantics) served from the ColumnStore's
cached per-column profile — the "SQL query per attribute" runs at most
once per source. Empty tables yield no unique attributes — vacuous
uniqueness would poison the downstream heuristics.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.discovery.model import AttributeRef, DiscoveryConfig
from repro.relational.catalog import Catalog
from repro.relational.database import Database


def detect_unique_attributes(
    database: Database, config: Optional[DiscoveryConfig] = None
) -> Set[AttributeRef]:
    """All attributes that are unique, declared or observed."""
    config = config or DiscoveryConfig()
    catalog = Catalog(database)
    unique: Set[AttributeRef] = set()
    for info in catalog.columns():
        table = database.table(info.table)
        if len(table) < config.min_rows_for_uniqueness:
            continue
        if info.declared_unique:
            unique.add(AttributeRef(info.table, info.column))
            continue
        # ColumnProfile.is_unique is False for empty columns by design.
        if table.column_profile(info.column).is_unique:
            unique.add(AttributeRef(info.table, info.column))
    return unique
