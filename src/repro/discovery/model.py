"""Shared data model of the discovery layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass(frozen=True)
class AttributeRef:
    """A (table, column) pair within one source database."""

    table: str
    column: str

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.column}"

    @classmethod
    def parse(cls, qualified: str) -> "AttributeRef":
        table, column = qualified.split(".", 1)
        return cls(table, column)


@dataclass(frozen=True)
class Relationship:
    """A directed relationship: ``source`` is a foreign key of ``target``.

    ``cardinality`` is ``"1:1"`` (source values unique) or ``"1:N"``
    (several source rows may share one target row). ``origin`` records
    whether the edge came from the data dictionary (``"declared"``) or was
    guessed from value containment (``"guessed"``).
    """

    source: AttributeRef
    target: AttributeRef
    cardinality: str
    origin: str = "guessed"

    def __post_init__(self) -> None:
        if self.cardinality not in ("1:1", "1:N"):
            raise ValueError(f"bad cardinality {self.cardinality!r}")
        if self.origin not in ("declared", "guessed"):
            raise ValueError(f"bad origin {self.origin!r}")


@dataclass(frozen=True)
class PathStep:
    """One hop of a primary-to-relation path.

    ``forward`` is True when the hop follows the relationship direction
    (from FK side to PK side) and False when traversed against it — paths
    ignore direction (Section 4.3) but remember it for join construction.
    """

    relationship: Relationship
    forward: bool

    @property
    def from_table(self) -> str:
        return self.relationship.source.table if self.forward else self.relationship.target.table

    @property
    def to_table(self) -> str:
        return self.relationship.target.table if self.forward else self.relationship.source.table


@dataclass(frozen=True)
class SecondaryPath:
    """A path from the primary relation to ``target_table``."""

    target_table: str
    steps: Tuple[PathStep, ...]

    @property
    def length(self) -> int:
        return len(self.steps)

    def tables(self) -> List[str]:
        if not self.steps:
            return [self.target_table]
        out = [self.steps[0].from_table]
        for step in self.steps:
            out.append(step.to_table)
        return out


@dataclass
class DiscoveryConfig:
    """Thresholds of the discovery heuristics (Section 4.2).

    Defaults follow the paper where it is explicit: accessions have at
    least four characters (PDB codes), at least one non-digit character,
    and value lengths differing by at most 20 percent.
    """

    accession_min_length: int = 4
    # Documented refinement (DESIGN.md Section 6): accession numbers are
    # keys, not prose. Without a ceiling, uniformly-templated long text
    # (e.g. definition sentences) can satisfy the spread rule. The longest
    # real accessions we model (ENSG...) have 15 characters.
    accession_max_length: int = 24
    accession_max_length_spread: float = 0.20
    min_rows_for_uniqueness: int = 1
    # Inclusion-dependency mining.
    ind_max_violation_fraction: float = 0.0  # 0 = exact containment (paper)
    ind_min_source_values: int = 1
    allow_intra_table_relationships: bool = False
    # Primary-relation selection.
    allow_multiple_primaries: bool = False
    multi_primary_slack: int = 0  # in-degree distance from the best table
    # Secondary paths.
    max_path_length: int = 6
    max_paths_per_table: int = 4


@dataclass
class SourceStructure:
    """Everything steps 2-3 learned about one source.

    This is the per-source record held in the metadata repository; link
    discovery reads ``primary_relations`` and ``accession_candidates``
    from it (cross-references "always point to primary objects in other
    databases", Section 3).
    """

    source_name: str
    unique_attributes: Set[AttributeRef] = field(default_factory=set)
    accession_candidates: Dict[str, AttributeRef] = field(default_factory=dict)
    relationships: List[Relationship] = field(default_factory=list)
    primary_relations: List[str] = field(default_factory=list)
    secondary_paths: Dict[str, Tuple[SecondaryPath, ...]] = field(default_factory=dict)
    unreachable_tables: List[str] = field(default_factory=list)

    @property
    def primary_relation(self) -> Optional[str]:
        """The single best primary relation, or None if none was found."""
        return self.primary_relations[0] if self.primary_relations else None

    def primary_accession(self) -> Optional[AttributeRef]:
        """Accession attribute of the primary relation (link target)."""
        if self.primary_relation is None:
            return None
        return self.accession_candidates.get(self.primary_relation)

    def relationship_pairs(self) -> Set[Tuple[str, str]]:
        """(source.qualified, target.qualified) pairs — for evaluation."""
        return {(r.source.qualified, r.target.qualified) for r in self.relationships}
