"""Secondary-relation discovery: connect every table to the primary.

Section 4.3: "We compute the path(s) from the primary relation to each of
the other relations of the data source using transitivity of
relationships, ignoring direction and cardinality. ... The paths are
stored in the metadata repository. ... If multiple paths exist, all are
stored. The paths may also be used to guide the construction of
structured queries."

Tables with no path are reported as unreachable — the paper expects this
never to happen for real sources ("a situation we have yet to encounter")
but the pipeline must survive it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.discovery.graph import RelationshipGraph
from repro.discovery.model import DiscoveryConfig, SecondaryPath


def connect_secondary_relations(
    graph: RelationshipGraph,
    primary_relation: str,
    config: Optional[DiscoveryConfig] = None,
) -> Tuple[Dict[str, Tuple[SecondaryPath, ...]], List[str]]:
    """Paths from the primary relation to every other table.

    Returns:
        (paths keyed by target table, list of unreachable tables).
    """
    config = config or DiscoveryConfig()
    paths: Dict[str, Tuple[SecondaryPath, ...]] = {}
    unreachable: List[str] = []
    for table in graph.tables:
        if table == primary_relation:
            continue
        found = graph.all_paths(
            primary_relation,
            table,
            max_length=config.max_path_length,
            max_paths=config.max_paths_per_table,
        )
        if not found:
            unreachable.append(table)
            continue
        paths[table] = tuple(SecondaryPath(target_table=table, steps=p) for p in found)
    return paths, unreachable
