"""Primary-relation selection.

Section 4.2: "We choose as the primary relation the table with highest
in-degree of all tables containing an accession number candidate. This
heuristic is based on the observation that life science databases contain
mostly fields that describe some primary objects ... Thus, many tables
necessarily point to the primary relation."

The multi-primary extension the paper sketches ("a more complex metric
... using for instance the difference of the in-degree of a relation to
the average in-degree") is implemented behind
``DiscoveryConfig.allow_multiple_primaries``.

Ties (equal in-degree) are broken by column count (the paper's primary
objects are "described by a set of nested fields" — object tables are
wide, pure reference tables are narrow), then row count, then average
accession length, then name — deterministic. A single-table source
trivially yields that table if it has an accession candidate.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.discovery.graph import RelationshipGraph
from repro.discovery.model import AttributeRef, DiscoveryConfig
from repro.relational.database import Database


def choose_primary_relations(
    database: Database,
    graph: RelationshipGraph,
    accession_candidates: Dict[str, AttributeRef],
    config: Optional[DiscoveryConfig] = None,
) -> List[str]:
    """Primary relation(s), best first; empty if no table qualifies."""
    config = config or DiscoveryConfig()
    if not accession_candidates:
        return []

    def score(table: str):
        attr = accession_candidates[table]
        avg_len = database.table(table).column_profile(attr.column).avg_length
        return (
            graph.in_degree(table),
            len(database.table(table).schema.columns),
            len(database.table(table)),
            avg_len,
        )

    ranked = sorted(accession_candidates, key=lambda t: (score(t), t), reverse=True)
    best = ranked[0]
    if not config.allow_multiple_primaries:
        return [best]
    # Multi-primary: keep tables whose in-degree is within `slack` of the
    # best AND above the graph's mean in-degree (the paper's suggested
    # difference-to-average metric).
    best_in = graph.in_degree(best)
    mean = graph.mean_in_degree()
    primaries = [
        table
        for table in ranked
        if graph.in_degree(table) >= best_in - config.multi_primary_slack
        and graph.in_degree(table) >= mean
    ]
    return primaries or [best]
