"""The relationship graph over one source's tables.

Nodes are tables; a directed edge runs from the FK-holding table to the
referenced table ("the network formed by the guessed foreign key
relationships", Section 4.2). Primary-relation selection reads in-degrees
here; secondary-path discovery walks it ignoring direction.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Set, Tuple

from repro.discovery.model import PathStep, Relationship


class RelationshipGraph:
    """Directed multigraph of table relationships."""

    def __init__(self, tables: Iterable[str], relationships: Iterable[Relationship]):
        self.tables: List[str] = sorted(tables)
        self.relationships: List[Relationship] = list(relationships)
        self._out: Dict[str, List[Relationship]] = defaultdict(list)
        self._in: Dict[str, List[Relationship]] = defaultdict(list)
        known = set(self.tables)
        for rel in self.relationships:
            if rel.source.table not in known or rel.target.table not in known:
                raise ValueError(
                    f"relationship {rel.source.qualified} -> {rel.target.qualified} "
                    "references unknown table"
                )
            self._out[rel.source.table].append(rel)
            self._in[rel.target.table].append(rel)

    # ------------------------------------------------------------------
    # degrees
    # ------------------------------------------------------------------
    def in_degree(self, table: str) -> int:
        """Number of incoming FK edges (self-loops excluded)."""
        return sum(1 for rel in self._in[table] if rel.source.table != table)

    def out_degree(self, table: str) -> int:
        return sum(1 for rel in self._out[table] if rel.target.table != table)

    def in_degrees(self) -> Dict[str, int]:
        return {table: self.in_degree(table) for table in self.tables}

    def mean_in_degree(self) -> float:
        if not self.tables:
            return 0.0
        return sum(self.in_degrees().values()) / len(self.tables)

    # ------------------------------------------------------------------
    # undirected traversal
    # ------------------------------------------------------------------
    def neighbors(self, table: str) -> List[PathStep]:
        """All hops leaving ``table``, in either edge direction."""
        steps = [PathStep(rel, forward=True) for rel in self._out[table]]
        steps.extend(PathStep(rel, forward=False) for rel in self._in[table])
        return steps

    def all_paths(
        self, start: str, goal: str, max_length: int, max_paths: int
    ) -> List[Tuple[PathStep, ...]]:
        """All simple paths start -> goal up to ``max_length`` hops.

        Shortest paths first (BFS order), truncated at ``max_paths``
        (Section 4.3: "If multiple paths exist, all are stored" — bounded
        here to keep worst-case metadata small).
        """
        if start == goal:
            return [()]
        results: List[Tuple[PathStep, ...]] = []
        frontier: List[Tuple[str, Tuple[PathStep, ...], Set[str]]] = [
            (start, (), {start})
        ]
        while frontier and len(results) < max_paths:
            next_frontier = []
            for table, path, visited in frontier:
                if len(path) >= max_length:
                    continue
                for step in self.neighbors(table):
                    nxt = step.to_table
                    if nxt in visited:
                        continue
                    new_path = path + (step,)
                    if nxt == goal:
                        results.append(new_path)
                        if len(results) >= max_paths:
                            break
                    else:
                        next_frontier.append((nxt, new_path, visited | {nxt}))
                if len(results) >= max_paths:
                    break
            frontier = next_frontier
        return results

    def reachable_from(self, start: str) -> Set[str]:
        seen = {start}
        stack = [start]
        while stack:
            table = stack.pop()
            for step in self.neighbors(table):
                nxt = step.to_table
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen
