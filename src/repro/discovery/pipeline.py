"""Steps 2-3 as one callable: database in, :class:`SourceStructure` out.

"In particular the discovery of primary and secondary objects can go hand
in hand in a single processing step" (Section 3) — this module is that
single step. No data or metadata from other sources is involved, which is
what makes incremental source addition possible.
"""

from __future__ import annotations

from typing import Optional

from repro.discovery.accession import find_accession_candidates
from repro.discovery.graph import RelationshipGraph
from repro.discovery.inclusion import mine_inclusion_dependencies
from repro.discovery.model import DiscoveryConfig, SourceStructure
from repro.discovery.primary import choose_primary_relations
from repro.discovery.secondary import connect_secondary_relations
from repro.discovery.uniqueness import detect_unique_attributes
from repro.relational.database import Database


def discover_structure(
    database: Database, config: Optional[DiscoveryConfig] = None
) -> SourceStructure:
    """Run unique/accession/FK/primary/secondary discovery on one source."""
    config = config or DiscoveryConfig()
    structure = SourceStructure(source_name=database.name)
    structure.unique_attributes = detect_unique_attributes(database, config)
    structure.accession_candidates = find_accession_candidates(
        database, structure.unique_attributes, config
    )
    structure.relationships = mine_inclusion_dependencies(
        database, structure.unique_attributes, config
    )
    graph = RelationshipGraph(database.table_names(), structure.relationships)
    structure.primary_relations = choose_primary_relations(
        database, graph, structure.accession_candidates, config
    )
    if structure.primary_relation is not None:
        structure.secondary_paths, structure.unreachable_tables = (
            connect_secondary_relations(graph, structure.primary_relation, config)
        )
    else:
        structure.unreachable_tables = [
            t for t in database.table_names()
        ]
    return structure
