"""Foreign-key inference via inclusion-dependency mining.

Section 4.2: "Existing foreign key constraints are found using the data
dictionary. Then, all unique attributes are considered as potential
targets for such a relationship and all attributes are considered as
potential sources. ... If the values of a potential source are a true
subset of the values of a potential target, we assume a 1:N relationship
... If the values of a potential source are the same set as the values of
a potential target, we assume a 1:1 relationship."

The candidate enumeration uses the inverted-index pruning of De Marchi et
al. [MLP02], the work the paper cites for "more sophisticated techniques":
an index from value to the set of unique attributes containing it lets us
intersect candidate targets while streaming over the source's values,
abandoning hopeless sources early instead of testing every attribute pair.

Approximate dependencies [KM92] are supported through
``ind_max_violation_fraction``: a source may violate containment on at
most that fraction of its distinct values (0 = exact, the paper's rule).

Cardinality refinement (documented deviation, DESIGN.md Section 6): the
paper labels set-equality 1:1 and strict subset 1:N; we additionally call
a *unique* source attribute 1:1 even on strict subset — that is the
``biosequence.bioentry_id ⊂ bioentry.bioentry_id`` pattern, which is a
one-to-one extension table, not a multi-valued annotation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from repro.discovery.model import AttributeRef, DiscoveryConfig, Relationship
from repro.relational.catalog import Catalog
from repro.relational.database import Database
from repro.relational.types import DataType


def mine_inclusion_dependencies(
    database: Database,
    unique_attributes: Set[AttributeRef],
    config: Optional[DiscoveryConfig] = None,
) -> List[Relationship]:
    """Declared FKs plus guessed unary inclusion dependencies."""
    config = config or DiscoveryConfig()
    relationships: List[Relationship] = []
    declared_pairs: Set[Tuple[AttributeRef, AttributeRef]] = set()
    catalog = Catalog(database)

    # 1. Declared constraints from the data dictionary.
    for fk in catalog.declared_foreign_keys():
        if len(fk.columns) != 1:
            continue  # composite FKs are outside the paper's unary model
        source = AttributeRef(fk.table, fk.columns[0])
        target = AttributeRef(fk.target_table, fk.target_columns[0])
        declared_pairs.add((source, target))
        cardinality = "1:1" if _is_unique_column(database, source) else "1:N"
        relationships.append(Relationship(source, target, cardinality, origin="declared"))

    # 2. Guessed dependencies over the remaining attribute pairs.
    target_sets, target_types = _collect_target_sets(database, unique_attributes)
    inverted = _build_inverted_index(target_sets)
    for source in _enumerate_source_attributes(database):
        source_values = database.table(source.table).value_set(source.column)
        if len(source_values) < config.ind_min_source_values:
            continue
        source_type = database.table(source.table).schema.column(source.column).data_type
        candidates = _candidate_targets(
            source_values, inverted, config.ind_max_violation_fraction
        )
        for target in sorted(candidates, key=lambda a: (a.table, a.column)):
            if target == source:
                continue
            if not config.allow_intra_table_relationships and target.table == source.table:
                continue
            if (source, target) in declared_pairs:
                continue
            if not _types_compatible(source_type, target_types[target]):
                continue
            if not _contained(
                source_values, target_sets[target], config.ind_max_violation_fraction
            ):
                continue
            source_unique = _is_unique_observed(database, source)
            if source_unique and source_values == target_sets[target]:
                cardinality = "1:1"
            elif source_unique:
                cardinality = "1:1"  # unique partial coverage: extension table
            else:
                cardinality = "1:N"
            relationships.append(Relationship(source, target, cardinality, origin="guessed"))
    return relationships


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _collect_target_sets(
    database: Database, unique_attributes: Set[AttributeRef]
) -> Tuple[Dict[AttributeRef, Set], Dict[AttributeRef, DataType]]:
    sets: Dict[AttributeRef, Set] = {}
    types: Dict[AttributeRef, DataType] = {}
    for attr in unique_attributes:
        table = database.table(attr.table)
        sets[attr] = table.value_set(attr.column)
        types[attr] = table.schema.column(attr.column).data_type
    return sets, types


def _build_inverted_index(
    target_sets: Dict[AttributeRef, Set]
) -> Dict[object, Set[AttributeRef]]:
    """De Marchi-style index: value -> set of unique attributes holding it."""
    index: Dict[object, Set[AttributeRef]] = defaultdict(set)
    for attr, values in target_sets.items():
        for value in values:
            index[value].add(attr)
    return index


def _candidate_targets(
    source_values: Set,
    inverted: Dict[object, Set[AttributeRef]],
    max_violation_fraction: float,
) -> Set[AttributeRef]:
    """Attributes that contain (almost) every source value.

    Exact mode intersects the per-value attribute sets and stops as soon
    as the intersection dies. Approximate mode counts, per candidate, how
    many source values it covers.
    """
    if max_violation_fraction <= 0.0:
        candidates: Optional[Set[AttributeRef]] = None
        for value in source_values:
            holders = inverted.get(value)
            if not holders:
                return set()
            candidates = set(holders) if candidates is None else candidates & holders
            if not candidates:
                return set()
        return candidates or set()
    counts: Dict[AttributeRef, int] = defaultdict(int)
    for value in source_values:
        for attr in inverted.get(value, ()):
            counts[attr] += 1
    needed = len(source_values) * (1.0 - max_violation_fraction)
    return {attr for attr, count in counts.items() if count >= needed}


def _contained(source_values: Set, target_values: Set, max_violation_fraction: float) -> bool:
    if max_violation_fraction <= 0.0:
        return source_values <= target_values
    violations = len(source_values - target_values)
    return violations <= max_violation_fraction * len(source_values)


def _types_compatible(a: DataType, b: DataType) -> bool:
    return a.is_numeric == b.is_numeric


def _is_unique_column(database: Database, attr: AttributeRef) -> bool:
    return database.table(attr.table).is_unique(attr.column)


def _is_unique_observed(database: Database, attr: AttributeRef) -> bool:
    return database.table(attr.table).column_profile(attr.column).is_unique


def _enumerate_source_attributes(database: Database):
    for table_name in database.table_names():
        table = database.table(table_name)
        for column in table.column_names:
            yield AttributeRef(table_name, column)
