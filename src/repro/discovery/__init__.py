"""Discovery of primary and secondary relations (pipeline steps 2 and 3).

Implements Section 4.2 and 4.3 of the paper:

1. mark unique attributes by scanning data (:mod:`uniqueness`),
2. find accession-number candidates — unique, alphanumeric, ≥4 chars,
   ≤20 % length spread, longest-average-length per table
   (:mod:`accession`),
3. infer foreign-key relationships by inclusion-dependency mining —
   declared constraints from the data dictionary first, then value-set
   containment with a De Marchi-style inverted index (:mod:`inclusion`),
4. choose the primary relation: highest in-degree among tables with an
   accession candidate (:mod:`primary`),
5. connect every other relation to the primary relation via paths over the
   relationship graph, ignoring direction (:mod:`secondary`).

:func:`discover_structure` runs 1-5 and returns a
:class:`SourceStructure`, the per-source metadata consumed by link
discovery and the metadata repository.
"""

from repro.discovery.model import (
    AttributeRef,
    DiscoveryConfig,
    PathStep,
    Relationship,
    SecondaryPath,
    SourceStructure,
)
from repro.discovery.uniqueness import detect_unique_attributes
from repro.discovery.accession import find_accession_candidates, is_accession_like
from repro.discovery.inclusion import mine_inclusion_dependencies
from repro.discovery.graph import RelationshipGraph
from repro.discovery.primary import choose_primary_relations
from repro.discovery.secondary import connect_secondary_relations
from repro.discovery.pipeline import discover_structure

__all__ = [
    "AttributeRef",
    "DiscoveryConfig",
    "PathStep",
    "Relationship",
    "RelationshipGraph",
    "SecondaryPath",
    "SourceStructure",
    "choose_primary_relations",
    "connect_secondary_relations",
    "detect_unique_attributes",
    "discover_structure",
    "find_accession_candidates",
    "is_accession_like",
    "mine_inclusion_dependencies",
]
