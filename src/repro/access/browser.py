"""The generic browsing front-end.

"Users may traverse this web of biological objects using a generic
front-end very much like they travel the web using their browser"
(Section 1). The browser keeps a history, renders pages with all four
link types, shows data lineage for duplicates, and highlights conflicts
(Section 4.6, type 3: "Conflicts are highlighted, and data lineage is
shown").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.access.objects import ObjectPage, ObjectWeb
from repro.duplicates.conflicts import Conflict, find_conflicts
from repro.duplicates.record import RecordView
from repro.linking.model import ObjectLink


@dataclass
class BrowseView:
    """Everything shown for one object: the page plus its link panels."""

    page: ObjectPage
    same_relation: List[str]
    duplicates: List[ObjectLink]
    linked: List[ObjectLink]
    conflicts: List[Conflict] = field(default_factory=list)

    def render(self) -> str:
        """Plain-text rendering (the reproduction's 'web page')."""
        lines = [f"=== {self.page.source} / {self.page.accession} ==="]
        for key, value in self.page.fields.items():
            if value is not None:
                lines.append(f"  {key}: {value}")
        for table, rows in self.page.annotations.items():
            lines.append(f"  -- {table} ({len(rows)}) --")
            for row in rows[:5]:
                rendered = ", ".join(
                    f"{k}={v}" for k, v in row.items() if v is not None
                )
                lines.append(f"    {rendered}")
        if self.duplicates:
            lines.append("  [duplicates]")
            for link in self.duplicates:
                other = [e for e in link.endpoints() if e != self.page.identity][0]
                lines.append(
                    f"    {other[0]}/{other[1]} (certainty {link.certainty:.2f})"
                )
        if self.conflicts:
            lines.append("  [conflicts]")
            for conflict in self.conflicts:
                lines.append(
                    f"    {conflict.value_a!r} vs {conflict.value_b!r} "
                    f"({conflict.source_b})"
                )
        if self.linked:
            lines.append("  [links]")
            for link in self.linked[:10]:
                other = [e for e in link.endpoints() if e != self.page.identity][0]
                lines.append(
                    f"    {link.kind}: {other[0]}/{other[1]} "
                    f"(certainty {link.certainty:.2f})"
                )
        return "\n".join(lines)


class Browser:
    """Stateful navigation over the object web."""

    def __init__(self, web: ObjectWeb, tracer=None):
        self._web = web
        self._history: List[Tuple[str, str]] = []
        #: Optional :class:`~repro.obs.trace.Tracer`; each page visit
        #: then records one ``op.browse`` root span (``None`` = off).
        self.tracer = tracer

    @property
    def history(self) -> List[Tuple[str, str]]:
        return list(self._history)

    def visit(self, source: str, accession: str) -> BrowseView:
        """Open one object page with all four link types resolved."""
        if self.tracer is None:
            return self._visit_impl(source, accession)
        with self.tracer.span("op.browse", source=source, accession=accession):
            return self._visit_impl(source, accession)

    def _visit_impl(self, source: str, accession: str) -> BrowseView:
        page = self._web.page(source, accession)
        if page is None:
            raise KeyError(f"no object {source}/{accession}")
        self._history.append((source, accession))
        duplicates = self._web.duplicates(source, accession)
        conflicts = self._conflicts_for(page, duplicates)
        return BrowseView(
            page=page,
            same_relation=self._web.same_relation(source, accession),
            duplicates=duplicates,
            linked=self._web.linked(source, accession),
            conflicts=conflicts,
        )

    def follow(self, view: BrowseView, link: ObjectLink) -> BrowseView:
        """Follow one link from a rendered view (type 3 or 4 navigation)."""
        target = [e for e in link.endpoints() if e != view.page.identity]
        if not target:
            raise ValueError("link does not leave the current page")
        return self.visit(*target[0])

    def back(self) -> Optional[BrowseView]:
        """Pop the current page; re-visit the previous one."""
        if len(self._history) < 2:
            return None
        self._history.pop()
        source, accession = self._history.pop()
        return self.visit(source, accession)

    # ------------------------------------------------------------------
    def _conflicts_for(
        self, page: ObjectPage, duplicates: List[ObjectLink]
    ) -> List[Conflict]:
        conflicts: List[Conflict] = []
        own_view = _page_record_view(page)
        for link in duplicates:
            other = [e for e in link.endpoints() if e != page.identity][0]
            other_page = self._web.page(*other)
            if other_page is None:
                continue
            conflicts.extend(find_conflicts(own_view, _page_record_view(other_page)))
        return conflicts


def _page_record_view(page: ObjectPage) -> RecordView:
    values = [
        str(v)
        for v in page.fields.values()
        if isinstance(v, str) and v and not v.isdigit()
    ]
    return RecordView(source=page.source, accession=page.accession, values=values)
