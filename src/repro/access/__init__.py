"""The data access engine: browse, search, query (Section 4.6).

The integrated result "is best explained in analogy to the Web: The
discovered objects correspond to Web pages, and the discovered links
correspond to HTML links" (Section 1). Accordingly:

* :mod:`objects`/:mod:`browser` — the object web with the four link types
  (same relation, dependency, duplicate, linked) and a browser that
  renders pages with lineage and highlighted conflicts;
* :mod:`crawler` + :mod:`index` + :mod:`search` — a crawler feeding an
  inverted index, BM25-ranked full-text search with vertical and
  horizontal partitions;
* :mod:`queries` — SQL over the imported schemata plus cross-source link
  joins with certainty-ordered results and optional duplicate-cluster
  collapsing;
* :mod:`ranking` — path-based result ordering between objects ("query
  results can be ordered based on the number, consistency, and length of
  different paths between two objects", Section 6, citing BLM+04).
"""

from repro.access.objects import ObjectPage, ObjectWeb
from repro.access.browser import Browser, BrowseView
from repro.access.crawler import Crawler
from repro.access.index import InvertedIndex, PostingField
from repro.access.search import SearchEngine, SearchHit
from repro.access.queries import QueryEngine, RankedRow
from repro.access.ranking import PathRanker, LinkPath

__all__ = [
    "Browser",
    "BrowseView",
    "Crawler",
    "InvertedIndex",
    "LinkPath",
    "ObjectPage",
    "ObjectWeb",
    "PathRanker",
    "PostingField",
    "QueryEngine",
    "RankedRow",
    "SearchEngine",
    "SearchHit",
]
