"""Inverted full-text index over object pages.

Stands in for the "commercial vendor software" (DB2 Search Extender /
Oracle text search) the paper delegates search to. Postings remember the
source and the field (table.column) each token came from, so searches can
be restricted to vertical partitions (fields) and horizontal partitions
(sources, primary objects only) — Section 4.6.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.access.objects import ObjectPage
from repro.linking.textlinks import tokenize


@dataclass(frozen=True)
class PostingField:
    """Where a token occurrence came from."""

    doc_id: int
    field: str  # "table.column" or "accession"
    frequency: int


def tokenize_page(page: ObjectPage) -> Tuple[int, Dict[str, Dict[str, int]]]:
    """Tokenize one page into ``(total tokens, field -> token -> count)``.

    A pure function of the page (plain dicts, picklable), so the execution
    subsystem can fan page tokenization across workers; applying the
    results in page order rebuilds the exact index a serial
    :meth:`InvertedIndex.add_page` loop would produce.
    """
    field_tokens: Dict[str, Dict[str, int]] = {}
    total = 0

    def count(field_name: str, text: str) -> int:
        tokens = list(tokenize(text))
        if not tokens:
            return 0
        # Field entries appear at their first token, exactly as the old
        # inline defaultdict did — posting order is part of the contract.
        counts = field_tokens.setdefault(field_name, {})
        for token in tokens:
            counts[token] = counts.get(token, 0) + 1
        return len(tokens)

    total += count("accession", page.accession)
    for column, value in page.fields.items():
        if isinstance(value, str):
            total += count(column, value)
    for table, rows in page.annotations.items():
        for row in rows:
            for column, value in row.items():
                if isinstance(value, str):
                    total += count(f"{table}.{column}", value)
    return total, field_tokens


def _tokenize_task(_state: Any, page: ObjectPage):
    """Worker entry point: identity plus the tokenization payload."""
    return page.identity, tokenize_page(page)


class InvertedIndex:
    """Token -> postings, with per-document metadata."""

    def __init__(self) -> None:
        self._postings: Dict[str, List[PostingField]] = defaultdict(list)
        self._documents: List[Tuple[str, str]] = []  # (source, accession)
        self._doc_lengths: List[int] = []
        self._primary_flags: List[bool] = []
        # Pages tokenized by add_page. Snapshot rehydration restores
        # postings without tokenizing, so a warm-started index keeps this
        # at zero — the counter the warm-open assertions check.
        self.pages_indexed = 0

    def __len__(self) -> int:
        return len(self._documents)

    @property
    def average_length(self) -> float:
        if not self._doc_lengths:
            return 0.0
        return sum(self._doc_lengths) / len(self._doc_lengths)

    def document(self, doc_id: int) -> Tuple[str, str]:
        return self._documents[doc_id]

    def doc_length(self, doc_id: int) -> int:
        return self._doc_lengths[doc_id]

    def document_count(self) -> int:
        return len(self._documents)

    def document_frequency(self, token: str) -> int:
        return len({p.doc_id for p in self._postings.get(token, ())})

    def postings(self, token: str) -> List[PostingField]:
        return list(self._postings.get(token, ()))

    def source_of(self, doc_id: int) -> str:
        return self._documents[doc_id][0]

    # ------------------------------------------------------------------
    def add_page(self, page: ObjectPage) -> int:
        """Index one object page, field by field."""
        return self.add_tokenized(page.identity, tokenize_page(page))

    def add_tokenized(
        self,
        identity: Tuple[str, str],
        tokenized: Tuple[int, Dict[str, Dict[str, int]]],
    ) -> int:
        """Apply one :func:`tokenize_page` result as the next document.

        The split lets tokenization (the CPU work) run on worker pools
        while document numbering stays a strictly ordered append here.
        """
        self.pages_indexed += 1
        total, field_tokens = tokenized
        doc_id = len(self._documents)
        self._documents.append(identity)
        for field_name, counts in field_tokens.items():
            for token, frequency in counts.items():
                self._postings[token].append(
                    PostingField(doc_id=doc_id, field=field_name, frequency=frequency)
                )
        self._doc_lengths.append(total)
        self._primary_flags.append(True)
        return doc_id

    def add_pages(self, pages: Iterable[ObjectPage], executor=None) -> int:
        """Index many pages; tokenization fans across ``executor`` workers.

        Documents are applied in page order whatever the backend, so the
        index is byte-identical to a serial :meth:`add_page` loop.
        """
        pages = list(pages)
        # Tokenization is pure-Python CPU work: fan out only on a backend
        # with real CPU parallelism (process), and only when the crawl is
        # large enough to amortize pool dispatch.
        if (
            executor is None
            or not executor.cpu_parallel
            or executor.workers <= 1
            or len(pages) < 4 * executor.workers
        ):
            for page in pages:
                self.add_page(page)
            return len(pages)
        chunksize = max(1, len(pages) // (executor.workers * 4))
        tokenized = executor.map_ordered(
            _tokenize_task,
            pages,
            labels=[f"tokenize:{page.source}/{page.accession}" for page in pages],
            chunksize=chunksize,
        )
        for identity, payload in tokenized:
            self.add_tokenized(identity, payload)
        return len(pages)

    def remove_source(self, source: str) -> int:
        """Drop every document of one source; returns how many were removed.

        Surviving documents are renumbered densely and postings remapped —
        one pass over the postings lists, no page re-crawling or
        re-tokenization. This is what keeps ``remove_source`` /
        ``update_source`` from rebuilding the search index from scratch.
        """
        keep: Dict[int, int] = {}
        removed = 0
        for doc_id, (doc_source, _) in enumerate(self._documents):
            if doc_source == source:
                removed += 1
            else:
                keep[doc_id] = len(keep)
        if not removed:
            return 0
        self._documents = [
            d for doc_id, d in enumerate(self._documents) if doc_id in keep
        ]
        self._doc_lengths = [
            length for doc_id, length in enumerate(self._doc_lengths) if doc_id in keep
        ]
        self._primary_flags = [
            flag for doc_id, flag in enumerate(self._primary_flags) if doc_id in keep
        ]
        remapped: Dict[str, List[PostingField]] = defaultdict(list)
        for token, postings in self._postings.items():
            survivors = [
                PostingField(
                    doc_id=keep[p.doc_id], field=p.field, frequency=p.frequency
                )
                for p in postings
                if p.doc_id in keep
            ]
            if survivors:
                remapped[token] = survivors
        self._postings = remapped
        return removed

    def vocabulary_size(self) -> int:
        return len(self._postings)

    # ------------------------------------------------------------------
    # snapshot round-trip
    # ------------------------------------------------------------------
    def export_documents(self, source: Optional[str] = None):
        """Yield ``(source, accession, length, is_primary, postings)`` per
        document in doc-id order, where ``postings`` is a list of
        ``(token, field, frequency)`` triples.

        This is the persistence export: one inversion pass over the
        postings lists groups them per document. The scan itself is
        O(total postings) — inherent to the inverted layout — but with a
        ``source`` filter (the per-source checkpoint path) only that
        source's documents are materialized, so checkpoint memory stays
        proportional to the source's slice.
        """
        if source is None:
            wanted = None
            per_doc: Dict[int, List[Tuple[str, str, int]]] = {
                doc_id: [] for doc_id in range(len(self._documents))
            }
        else:
            wanted = {
                doc_id
                for doc_id, (doc_source, _) in enumerate(self._documents)
                if doc_source == source
            }
            per_doc = {doc_id: [] for doc_id in wanted}
        for token, postings in self._postings.items():
            for posting in postings:
                if wanted is None or posting.doc_id in wanted:
                    per_doc[posting.doc_id].append(
                        (token, posting.field, posting.frequency)
                    )
        for doc_id in sorted(per_doc):
            doc_source, accession = self._documents[doc_id]
            yield (
                doc_source,
                accession,
                self._doc_lengths[doc_id],
                self._primary_flags[doc_id],
                per_doc[doc_id],
            )

    def restore_document(
        self,
        source: str,
        accession: str,
        length: int,
        is_primary: bool,
        postings: Iterable[Tuple[str, str, int]],
    ) -> int:
        """Append one exported document without re-crawling or tokenizing.

        The inverse of :meth:`export_documents`: warm starts rebuild the
        index from persisted postings, so ``pages_indexed`` stays zero.
        """
        doc_id = len(self._documents)
        self._documents.append((source, accession))
        self._doc_lengths.append(length)
        self._primary_flags.append(bool(is_primary))
        for token, field_name, frequency in postings:
            self._postings[token].append(
                PostingField(doc_id=doc_id, field=field_name, frequency=frequency)
            )
        return doc_id
