"""Ranked full-text search with partitions (Section 4.6).

"Search allows a full-text search on all stored data and a focused search
restricted to certain vertical (e.g., a single attribute-type) and
horizontal partitions (e.g., only on primary objects) of the data.
Ranking algorithms order the search results based on similarity of the
result to the query." Ranking is Okapi BM25.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.access.index import InvertedIndex
from repro.linking.textlinks import tokenize

_K1 = 1.5
_B = 0.75


@dataclass(frozen=True)
class SearchHit:
    """One ranked result."""

    source: str
    accession: str
    score: float
    matched_fields: Tuple[str, ...]


class SearchEngine:
    """BM25 search over an :class:`InvertedIndex`."""

    def __init__(self, index: InvertedIndex, tracer=None):
        self._index = index
        #: Optional :class:`~repro.obs.trace.Tracer`; each query then
        #: records one ``op.search`` root span (``None`` = span-free).
        self.tracer = tracer

    def search(
        self,
        query: str,
        top_k: int = 10,
        sources: Optional[Sequence[str]] = None,
        fields: Optional[Sequence[str]] = None,
    ) -> List[SearchHit]:
        """Ranked hits for ``query``.

        Args:
            sources: horizontal partition — restrict to these sources.
            fields: vertical partition — only count occurrences in these
                fields ("a single attribute-type").
        """
        if self.tracer is None:
            return self._search_impl(query, top_k, sources, fields)
        with self.tracer.span("op.search", query=query, top_k=top_k) as span:
            hits = self._search_impl(query, top_k, sources, fields)
            span.set(hits=len(hits))
            return hits

    def _search_impl(
        self,
        query: str,
        top_k: int,
        sources: Optional[Sequence[str]],
        fields: Optional[Sequence[str]],
    ) -> List[SearchHit]:
        tokens = tokenize(query)
        if not tokens:
            return []
        allowed_sources = set(sources) if sources is not None else None
        allowed_fields = set(fields) if fields is not None else None
        n_docs = self._index.document_count()
        avg_len = self._index.average_length or 1.0
        scores: Dict[int, float] = defaultdict(float)
        matched: Dict[int, Set[str]] = defaultdict(set)
        for token in tokens:
            postings = self._index.postings(token)
            if not postings:
                continue
            df = self._index.document_frequency(token)
            idf = math.log(1 + (n_docs - df + 0.5) / (df + 0.5))
            per_doc: Dict[int, int] = defaultdict(int)
            doc_fields: Dict[int, Set[str]] = defaultdict(set)
            for posting in postings:
                if allowed_fields is not None and posting.field not in allowed_fields:
                    continue
                per_doc[posting.doc_id] += posting.frequency
                doc_fields[posting.doc_id].add(posting.field)
            for doc_id, tf in per_doc.items():
                if allowed_sources is not None:
                    if self._index.source_of(doc_id) not in allowed_sources:
                        continue
                length_norm = 1 - _B + _B * self._index.doc_length(doc_id) / avg_len
                scores[doc_id] += idf * tf * (_K1 + 1) / (tf + _K1 * length_norm)
                matched[doc_id] |= doc_fields[doc_id]
        hits = []
        for doc_id, score in scores.items():
            source, accession = self._index.document(doc_id)
            hits.append(
                SearchHit(
                    source=source,
                    accession=accession,
                    score=round(score, 4),
                    matched_fields=tuple(sorted(matched[doc_id])),
                )
            )
        hits.sort(key=lambda h: (-h.score, h.source, h.accession))
        return hits[:top_k]
