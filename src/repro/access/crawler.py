"""Crawl the object web to feed the search index.

"Just like in the Web, a specialized search engine can 'crawl' the links
and index biological objects and their data and textual annotation, thus
providing search capability" (Section 1).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, List, Optional, Set, Tuple

from repro.access.objects import ObjectPage, ObjectWeb


class Crawler:
    """BFS over pages and links, starting from every source's objects."""

    def __init__(self, web: ObjectWeb):
        self._web = web

    def crawl(
        self,
        seeds: Optional[List[Tuple[str, str]]] = None,
        follow_links: bool = True,
        max_pages: Optional[int] = None,
    ) -> Iterator[ObjectPage]:
        """Yield pages; with ``follow_links`` the frontier expands over links.

        Without seeds, every object of every source is a seed (full crawl);
        with seeds and ``follow_links`` the crawl discovers exactly the
        link-connected component of the seeds.
        """
        frontier: deque = deque()
        if seeds is None:
            for source in self._web.sources_with_pages():
                for accession in self._web.accessions(source):
                    frontier.append((source, accession))
        else:
            frontier.extend(seeds)
        visited: Set[Tuple[str, str]] = set()
        emitted = 0
        while frontier:
            if max_pages is not None and emitted >= max_pages:
                return
            source, accession = frontier.popleft()
            if (source, accession) in visited:
                continue
            visited.add((source, accession))
            page = self._web.page(source, accession)
            if page is None:
                continue
            yield page
            emitted += 1
            if not follow_links:
                continue
            for link in self._web.repository.links_of(source, accession):
                for endpoint in link.endpoints():
                    if endpoint not in visited:
                        frontier.append(endpoint)
