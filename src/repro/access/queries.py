"""Structured queries: SQL per source plus cross-source link joins.

Section 4.6: "querying allows full SQL queries on the schemata as
imported", and results must be ranked "according to certainty values
derived from the different discovery steps during data import". The
cross-database query of Section 6 ("all genes ... connected to a disease
via a protein") is expressed as a *link join*: a per-source SQL query
whose result objects are expanded over discovered links into other
sources.

Duplicate handling follows Section 4.5: clusters can optionally be
collapsed so "only one representative of each duplicate cluster" is
returned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.access.objects import ObjectWeb
from repro.duplicates.clustering import UnionFind
from repro.linking.model import ObjectLink
from repro.relational.sql import execute_sql


@dataclass
class RankedRow:
    """One query answer with provenance and certainty."""

    source: str
    accession: str
    row: Dict[str, object]
    certainty: float
    path: Tuple[str, ...] = ()  # accessions traversed to reach this row

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankedRow({self.source}/{self.accession}, certainty={self.certainty:.2f})"


class QueryEngine:
    """SQL + link-join query access over the object web."""

    def __init__(self, web: ObjectWeb):
        self._web = web

    # ------------------------------------------------------------------
    def sql(self, source: str, statement: str):
        """Plain SQL against one source's imported schema.

        Under a lazy open an unhydrated source is first offered to the
        snapshot pushdown executor — a single-table scan runs where the
        data lives without faulting the rows in; anything it declines
        hydrates the source and executes in memory as before.
        """
        result = self._web.pushdown_sql(source, statement)
        if result is not None:
            return result
        return execute_sql(self._web.database(source), statement)

    # ------------------------------------------------------------------
    def select_objects(self, source: str, statement: str) -> List[RankedRow]:
        """Run SQL on a source and lift result rows to primary objects.

        The statement must select (at least) the source's accession
        column of the primary relation.
        """
        structure = self._web.repository.structure(source)
        accession_attr = structure.primary_accession()
        if accession_attr is None:
            raise ValueError(f"source {source!r} has no primary accession")
        result = self.sql(source, statement)
        column = None
        for candidate in (accession_attr.column, accession_attr.qualified):
            if candidate in result.columns:
                column = candidate
                break
        if column is None:
            raise ValueError(
                f"query must select the accession column {accession_attr.qualified!r}"
            )
        rows = []
        for row in result.rows:
            accession = row[column]
            if accession is None:
                continue
            rows.append(
                RankedRow(
                    source=source,
                    accession=accession,
                    row=dict(row),
                    certainty=1.0,
                    path=(accession,),
                )
            )
        return rows

    # ------------------------------------------------------------------
    def link_join(
        self,
        rows: Sequence[RankedRow],
        target_source: str,
        kinds: Optional[Sequence[str]] = None,
        min_certainty: float = 0.0,
    ) -> List[RankedRow]:
        """Expand result objects over links into ``target_source``.

        Each output row's certainty is the product of the input row's
        certainty and the link certainty — multiplying evidence along the
        path, which makes longer/weaker chains rank below short/strong
        ones.
        """
        repository = self._web.repository
        out: List[RankedRow] = []
        seen: Set[Tuple[str, str, Tuple[str, ...]]] = set()
        allowed = set(kinds) if kinds is not None else None
        for row in rows:
            for link in repository.links_of(row.source, row.accession):
                if allowed is not None and link.kind not in allowed:
                    continue
                for endpoint in link.endpoints():
                    if endpoint == (row.source, row.accession):
                        continue
                    if endpoint[0] != target_source:
                        continue
                    certainty = row.certainty * link.certainty
                    if certainty < min_certainty:
                        continue
                    path = row.path + (endpoint[1],)
                    key = (endpoint[0], endpoint[1], row.path)
                    if key in seen:
                        continue
                    seen.add(key)
                    page = self._web.page(*endpoint)
                    out.append(
                        RankedRow(
                            source=endpoint[0],
                            accession=endpoint[1],
                            row=dict(page.fields) if page else {},
                            certainty=round(certainty, 6),
                            path=path,
                        )
                    )
        out.sort(key=lambda r: (-r.certainty, r.source, r.accession))
        return out

    # ------------------------------------------------------------------
    def collapse_duplicates(self, rows: Sequence[RankedRow]) -> List[RankedRow]:
        """Keep one representative per duplicate cluster (Section 4.5).

        The representative is the highest-certainty member; cluster
        membership comes from the repository's duplicate links.
        """
        repository = self._web.repository
        uf = UnionFind()
        for row in rows:
            uf.find((row.source, row.accession))
        for link in repository.object_links(kind="duplicate"):
            uf.union(
                (link.source_a, link.accession_a), (link.source_b, link.accession_b)
            )
        best: Dict[object, RankedRow] = {}
        for row in rows:
            root = uf.find((row.source, row.accession))
            current = best.get(root)
            if current is None or row.certainty > current.certainty:
                best[root] = row
        out = list(best.values())
        out.sort(key=lambda r: (-r.certainty, r.source, r.accession))
        return out
