"""The object web: pages and the four relationship types.

Section 4.6 enumerates what a user can follow from an object:

1. *Same relation* — other objects of the same primary relation;
2. *Dependency* — secondary objects (annotations) of the object;
3. *Duplicates* — objects of other sources describing the same
   real-world object;
4. *Linked* — cross-source links of any other discovered kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.linking.model import ObjectLink
from repro.linking.resolve import ObjectResolver
from repro.metadata.repository import MetadataRepository
from repro.relational.database import Database


@dataclass
class ObjectPage:
    """One primary object rendered as a page."""

    source: str
    accession: str
    fields: Dict[str, object] = field(default_factory=dict)
    annotations: Dict[str, List[Dict[str, object]]] = field(default_factory=dict)

    @property
    def identity(self) -> Tuple[str, str]:
        return (self.source, self.accession)

    def text_content(self) -> str:
        """All textual content of the page — what the search engine indexes."""
        chunks: List[str] = [self.accession]
        for value in self.fields.values():
            if isinstance(value, str):
                chunks.append(value)
        for rows in self.annotations.values():
            for row in rows:
                for value in row.values():
                    if isinstance(value, str):
                        chunks.append(value)
        return " ".join(chunks)


class ObjectWeb:
    """Materialized view of all integrated objects and their links."""

    def __init__(self, repository: MetadataRepository):
        self._repository = repository
        self._databases: Dict[str, Database] = {}
        self._resolvers: Dict[str, ObjectResolver] = {}
        # (source, table) -> accession -> rows; built lazily, one scan per
        # secondary table instead of one per page visit.
        self._annotation_cache: Dict[Tuple[str, str], Dict[str, List[Dict[str, object]]]] = {}
        # Lazy-open hooks: fault a source's database in on first touch,
        # and (optionally) answer single-source SQL straight from the
        # snapshot before hydrating (see set_hydrator / set_sql_pushdown).
        self._hydrator = None
        self._sql_pushdown = None

    # ------------------------------------------------------------------
    # lazy hydration hooks
    # ------------------------------------------------------------------
    def set_hydrator(self, hydrator) -> None:
        """Install the fault-in callback of a lazy snapshot session.

        ``hydrator(name)`` must attach the named source's database (via
        :meth:`attach_database`) and ``hydrator(None)`` must attach every
        remaining one. Already-attached sources are never re-faulted.
        """
        self._hydrator = hydrator

    def set_sql_pushdown(self, pushdown) -> None:
        """Install the snapshot SQL executor for unhydrated sources.

        ``pushdown(source, statement)`` returns a ResultSet answered from
        the snapshot file, or ``None`` to decline (unsupported statement
        shape) — the caller then hydrates and runs in memory.
        """
        self._sql_pushdown = pushdown

    def _ensure_attached(self, source: str) -> None:
        if self._hydrator is not None and source not in self._databases:
            self._hydrator(source)

    def _ensure_all_attached(self) -> None:
        if self._hydrator is not None:
            self._hydrator(None)

    def database(self, source: str) -> Database:
        """One source's database, faulting it in under a lazy open."""
        self._ensure_attached(source)
        return self._databases[source]

    def pushdown_sql(self, source: str, statement: str):
        """Try answering ``statement`` from the snapshot, ``None`` to decline.

        Only meaningful for a source that is *not* hydrated yet — once the
        rows are resident, memory is strictly faster than SQLite.
        """
        if self._sql_pushdown is None or source in self._databases:
            return None
        return self._sql_pushdown(source, statement)

    def attach_database(self, name: str, database: Database) -> None:
        if not self._repository.has_source(name):
            raise KeyError(f"source {name!r} not in the metadata repository")
        self.detach_database(name)  # drop any previous attachment's caches
        self._databases[name] = database
        try:
            self._resolvers[name] = ObjectResolver(
                database, self._repository.structure(name)
            )
        except ValueError:
            self._resolvers.pop(name, None)  # no primary relation: no pages

    def detach_database(self, name: str) -> None:
        """Forget one source's pages; every other attachment stays live."""
        self._databases.pop(name, None)
        self._resolvers.pop(name, None)
        self._annotation_cache = {
            key: value for key, value in self._annotation_cache.items()
            if key[0] != name
        }

    @property
    def repository(self) -> MetadataRepository:
        return self._repository

    def sources_with_pages(self) -> List[str]:
        self._ensure_all_attached()
        return sorted(self._resolvers)

    # ------------------------------------------------------------------
    def accessions(self, source: str) -> List[str]:
        self._ensure_attached(source)
        resolver = self._resolvers.get(source)
        return resolver.primary_accessions() if resolver else []

    def page(self, source: str, accession: str) -> Optional[ObjectPage]:
        """Materialize one object page (own row + secondary annotations)."""
        self._ensure_attached(source)
        resolver = self._resolvers.get(source)
        if resolver is None:
            return None
        database = self._databases[source]
        primary = resolver.primary_relation
        row = database.table(primary).lookup_unique(resolver.accession_column, accession)
        if row is None:
            return None
        page = ObjectPage(source=source, accession=accession, fields=dict(row))
        structure = self._repository.structure(source)
        for table_name in structure.secondary_paths:
            rows = self._annotation_rows(source, table_name, resolver).get(accession)
            if rows:
                page.annotations[table_name] = rows
        return page

    def _annotation_rows(
        self, source: str, table_name: str, resolver: ObjectResolver
    ) -> Dict[str, List[Dict[str, object]]]:
        key = (source, table_name)
        cached = self._annotation_cache.get(key)
        if cached is None:
            # Secondary-path-aware index: the resolver maps the whole
            # table to its owners in one forward sweep over the shared
            # ColumnStore value indexes — no per-row backward path walks.
            cached = {}
            table = self._databases[source].table(table_name)
            owners_by_row = resolver.owners_index(table_name)
            for row_id in range(len(table)):
                owners = owners_by_row.get(row_id)
                if not owners:
                    continue
                row = table.row_at(row_id)
                for owner in owners:
                    cached.setdefault(owner, []).append(dict(row))
            self._annotation_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # the four link types
    # ------------------------------------------------------------------
    def same_relation(self, source: str, accession: str, limit: int = 10) -> List[str]:
        """Type 1: sibling objects in the same primary relation."""
        siblings = [a for a in self.accessions(source) if a != accession]
        return siblings[:limit]

    def dependencies(self, source: str, accession: str) -> Dict[str, List[Dict[str, object]]]:
        """Type 2: the secondary objects of this object."""
        page = self.page(source, accession)
        return page.annotations if page else {}

    def duplicates(self, source: str, accession: str) -> List[ObjectLink]:
        """Type 3: duplicate links of this object."""
        return self._repository.links_of(source, accession, kind="duplicate")

    def linked(self, source: str, accession: str) -> List[ObjectLink]:
        """Type 4: all non-duplicate cross-source links of this object."""
        return [
            link
            for link in self._repository.links_of(source, accession)
            if link.kind != "duplicate"
        ]
