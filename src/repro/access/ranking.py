"""Path-based ranking between objects.

Section 6: "query results can be ordered based on the number,
consistency, and length of different paths between two objects, as
suggested in [BLM+04]" — and Section 5 observes that multiple overlapping
link sets connect the same databases ("there exist at least five
different sets of links from Swiss-Prot to PDB ... Ranking of results
based on the strength of evidence is thus a very important feature").

The ranker enumerates simple paths up to a length bound over the object
link graph and scores a pair by summing path contributions: each path
contributes the product of its link certainties damped by its length;
*consistency* (how many distinct evidence kinds support direct paths)
enters as a multiplier.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.linking.model import ObjectLink
from repro.metadata.repository import MetadataRepository

Identity = Tuple[str, str]


@dataclass(frozen=True)
class LinkPath:
    """One evidence path between two objects."""

    endpoints: Tuple[Identity, Identity]
    links: Tuple[ObjectLink, ...]

    @property
    def length(self) -> int:
        return len(self.links)

    @property
    def certainty(self) -> float:
        value = 1.0
        for link in self.links:
            value *= link.certainty
        return value

    @property
    def kinds(self) -> Tuple[str, ...]:
        return tuple(link.kind for link in self.links)


class PathRanker:
    """Evidence aggregation over the object-link graph."""

    def __init__(self, repository: MetadataRepository, max_length: int = 3,
                 max_paths: int = 25):
        self._repository = repository
        self.max_length = max_length
        self.max_paths = max_paths

    # ------------------------------------------------------------------
    def paths_between(self, a: Identity, b: Identity) -> List[LinkPath]:
        """All simple link paths a -> b up to the length bound (BFS order)."""
        results: List[LinkPath] = []
        frontier: List[Tuple[Identity, Tuple[ObjectLink, ...], Set[Identity]]] = [
            (a, (), {a})
        ]
        while frontier and len(results) < self.max_paths:
            next_frontier = []
            for position, links, visited in frontier:
                if len(links) >= self.max_length:
                    continue
                for link in self._repository.links_of(*position):
                    for endpoint in link.endpoints():
                        if endpoint == position or endpoint in visited:
                            continue
                        new_links = links + (link,)
                        if endpoint == b:
                            results.append(LinkPath(endpoints=(a, b), links=new_links))
                            if len(results) >= self.max_paths:
                                break
                        else:
                            next_frontier.append(
                                (endpoint, new_links, visited | {endpoint})
                            )
                    if len(results) >= self.max_paths:
                        break
                if len(results) >= self.max_paths:
                    break
            frontier = next_frontier
        return results

    # ------------------------------------------------------------------
    def score(self, a: Identity, b: Identity) -> float:
        """Aggregate evidence score for the pair (0 = unconnected).

        score = consistency_bonus * Σ_paths certainty(path) / length(path)

        where consistency_bonus = 1 + (distinct evidence kinds among
        direct links - 1) * 0.5 — independent channels agreeing is
        stronger evidence than one channel repeated (Section 5's five
        overlapping Swiss-Prot→PDB link sets).
        """
        paths = self.paths_between(a, b)
        if not paths:
            return 0.0
        base = sum(path.certainty / path.length for path in paths)
        direct_kinds = {path.kinds[0] for path in paths if path.length == 1}
        consistency = 1.0 + max(0, len(direct_kinds) - 1) * 0.5
        return round(base * consistency, 6)

    def rank_targets(
        self, origin: Identity, candidates: Sequence[Identity]
    ) -> List[Tuple[Identity, float]]:
        """Candidates ordered by evidence score (descending, stable)."""
        scored = [(candidate, self.score(origin, candidate)) for candidate in candidates]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored
