"""The metadata repository (Section 3).

"The process of discovering new structures and links produces much
metadata that is stored in a central repository. In the spirit of the
'Corpus' in the Revere project, it contains not only known and discovered
schemata, but also information about primary and secondary relations,
statistical metadata, and sample data to improve discovery efficiency.
Finally, a large part of storage space will be consumed by the discovered
links on the object level."
"""

from repro.metadata.repository import MetadataRepository, SourceRecord

__all__ = ["MetadataRepository", "SourceRecord"]
