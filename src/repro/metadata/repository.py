"""Central store for discovered structure, statistics, and links."""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.discovery.model import AttributeRef, SourceStructure
from repro.linking.model import AttributeLink, ObjectLink
from repro.linking.stats import AttributeStatistics
from repro.relational.columns import ColumnProfile


@dataclass
class SourceRecord:
    """Everything the repository knows about one source.

    ``profiles`` holds the storage-level :class:`ColumnProfile` objects —
    the one-time per-source statistics of Section 4.4. They are computed by
    the ColumnStore during registration and reused by every later source
    addition; nothing above this record touches raw rows to re-derive them.
    """

    structure: SourceStructure
    statistics: Dict[AttributeRef, AttributeStatistics] = field(default_factory=dict)
    profiles: Dict[AttributeRef, ColumnProfile] = field(default_factory=dict)
    sample_rows: Dict[str, List[dict]] = field(default_factory=dict)
    row_counts: Dict[str, int] = field(default_factory=dict)


class MetadataRepository:
    """Discovered schemata, statistics, samples, and object-level links."""

    def __init__(self) -> None:
        self._sources: Dict[str, SourceRecord] = {}
        self._attribute_links: List[AttributeLink] = []
        self._object_links: List[ObjectLink] = []
        # Adjacency: (source, accession) -> list of link indexes.
        self._adjacency: Dict[Tuple[str, str], List[int]] = defaultdict(list)
        self._link_keys: Set[Tuple] = set()
        # A lazy open defers the whole-web link load behind this loader;
        # the first link read or write replays it (see set_deferred_links).
        self._deferred_links = None
        # True once links are authoritative in memory. Eager repositories
        # are born loaded; set_deferred_links flips this off until the
        # one-shot replay completes, and _links_lock keeps a concurrent
        # reader from observing the replay half-done.
        self._links_loaded = True
        self._links_lock = threading.RLock()

    # ------------------------------------------------------------------
    # deferred link loading (lazy snapshot opens)
    # ------------------------------------------------------------------
    def set_deferred_links(self, loader) -> None:
        """Install a one-shot loader that populates the link web on demand.

        The loader is called with this repository exactly once, before the
        first operation that reads or mutates links. Source registration
        stays eager (stubs are O(columns)); only the link tables — which
        grow with the corpus, not with the query — are deferred.
        """
        self._deferred_links = loader
        self._links_loaded = False

    def _ensure_links(self) -> None:
        if self._links_loaded:
            return
        with self._links_lock:
            if self._links_loaded:
                return
            loader, self._deferred_links = self._deferred_links, None
            if loader is None:
                # Re-entrant call from the loader itself (it replays links
                # through the public mutators below); the outer frame owns
                # the flag, so the replay cannot publish itself half-done.
                return
            loader(self)
            self._links_loaded = True

    # ------------------------------------------------------------------
    # sources
    # ------------------------------------------------------------------
    def register_source(
        self,
        structure: SourceStructure,
        statistics: Optional[Dict[AttributeRef, AttributeStatistics]] = None,
        sample_rows: Optional[Dict[str, List[dict]]] = None,
        row_counts: Optional[Dict[str, int]] = None,
        profiles: Optional[Dict[AttributeRef, ColumnProfile]] = None,
    ) -> None:
        name = structure.source_name
        if name in self._sources:
            raise ValueError(f"source {name!r} already registered")
        self._sources[name] = SourceRecord(
            structure=structure,
            statistics=statistics or {},
            profiles=profiles or {},
            sample_rows=sample_rows or {},
            row_counts=row_counts or {},
        )

    def refresh_source_data(
        self,
        name: str,
        statistics: Optional[Dict[AttributeRef, AttributeStatistics]] = None,
        sample_rows: Optional[Dict[str, List[dict]]] = None,
        row_counts: Optional[Dict[str, int]] = None,
        profiles: Optional[Dict[AttributeRef, ColumnProfile]] = None,
    ) -> None:
        """Swap the data-derived parts of a record, keeping structure/links.

        Used by the below-threshold ``update_source`` path: the raw data
        changed slightly, the discovered structure and links are kept, but
        cached statistics must describe the *new* data.
        """
        record = self.source(name)
        if statistics is not None:
            record.statistics = statistics
        if profiles is not None:
            record.profiles = profiles
        if sample_rows is not None:
            record.sample_rows = sample_rows
        if row_counts is not None:
            record.row_counts = row_counts

    def has_source(self, name: str) -> bool:
        return name in self._sources

    def source(self, name: str) -> SourceRecord:
        if name not in self._sources:
            raise KeyError(f"source {name!r} not registered")
        return self._sources[name]

    def source_names(self) -> List[str]:
        return sorted(self._sources)

    def structure(self, name: str) -> SourceStructure:
        return self.source(name).structure

    def remove_source(self, name: str) -> None:
        """Drop a source and every link touching it (re-analysis support)."""
        if name not in self._sources:
            raise KeyError(f"source {name!r} not registered")
        self._ensure_links()
        del self._sources[name]
        self._attribute_links = [
            l for l in self._attribute_links if name not in (l.source, l.target)
        ]
        kept = [
            l for l in self._object_links if name not in (l.source_a, l.source_b)
        ]
        self._object_links = []
        self._adjacency = defaultdict(list)
        self._link_keys = set()
        for link in kept:
            self.add_object_link(link)

    # ------------------------------------------------------------------
    # links
    # ------------------------------------------------------------------
    def add_attribute_link(self, link: AttributeLink) -> None:
        self._ensure_links()
        self._attribute_links.append(link)

    def add_object_link(self, link: ObjectLink) -> bool:
        """Store one link; duplicate (same endpoints + kind) links are ignored."""
        self._ensure_links()
        normalized = link.normalized()
        key = (
            normalized.source_a,
            normalized.accession_a,
            normalized.source_b,
            normalized.accession_b,
            normalized.kind,
        )
        if key in self._link_keys:
            return False
        self._link_keys.add(key)
        index = len(self._object_links)
        self._object_links.append(link)
        self._adjacency[(link.source_a, link.accession_a)].append(index)
        self._adjacency[(link.source_b, link.accession_b)].append(index)
        return True

    def add_object_links(self, links: Iterable[ObjectLink]) -> int:
        return sum(1 for link in links if self.add_object_link(link))

    def attribute_links(self) -> List[AttributeLink]:
        self._ensure_links()
        return list(self._attribute_links)

    def object_links(self, kind: Optional[str] = None) -> List[ObjectLink]:
        self._ensure_links()
        if kind is None:
            return list(self._object_links)
        return [l for l in self._object_links if l.kind == kind]

    def links_of(self, source: str, accession: str, kind: Optional[str] = None) -> List[ObjectLink]:
        """All links touching one object."""
        self._ensure_links()
        out = []
        for index in self._adjacency.get((source, accession), ()):
            link = self._object_links[index]
            if kind is None or link.kind == kind:
                out.append(link)
        return out

    def neighbors_of(
        self, source: str, accession: str, kind: Optional[str] = None
    ) -> List[Tuple[str, str, ObjectLink]]:
        """(other_source, other_accession, link) triples for one object."""
        out = []
        for link in self.links_of(source, accession, kind):
            for endpoint in link.endpoints():
                if endpoint != (source, accession):
                    out.append((endpoint[0], endpoint[1], link))
        return out

    def remove_object_link(self, link: ObjectLink) -> bool:
        """User feedback: drop one wrong link (Section 6.2)."""
        self._ensure_links()
        normalized = link.normalized()
        key = (
            normalized.source_a,
            normalized.accession_a,
            normalized.source_b,
            normalized.accession_b,
            normalized.kind,
        )
        if key not in self._link_keys:
            return False
        remaining = [
            l
            for l in self._object_links
            if not (l.normalized().source_a == normalized.source_a
                    and l.normalized().accession_a == normalized.accession_a
                    and l.normalized().source_b == normalized.source_b
                    and l.normalized().accession_b == normalized.accession_b
                    and l.kind == normalized.kind)
        ]
        self._object_links = []
        self._adjacency = defaultdict(list)
        self._link_keys = set()
        for survivor in remaining:
            self.add_object_link(survivor)
        return True

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def link_counts_by_kind(self) -> Dict[str, int]:
        self._ensure_links()
        counts: Dict[str, int] = defaultdict(int)
        for link in self._object_links:
            counts[link.kind] += 1
        return dict(counts)

    def summary(self) -> str:
        self._ensure_links()
        parts = [f"{len(self._sources)} sources", f"{len(self._object_links)} object links"]
        kinds = self.link_counts_by_kind()
        if kinds:
            parts.append(
                "(" + ", ".join(f"{k}={v}" for k, v in sorted(kinds.items())) + ")"
            )
        return "; ".join(parts)
