"""Delimited text (CSV/TSV) with a header row.

Covers sources distributed as simple tab-separated exports (many genome
mapping and expression datasets). Column types are inferred from data.
"""

from __future__ import annotations

import csv
import io
from typing import List, Optional

from repro.dataimport.base import ImportError_, Importer, ImportResult, registry
from repro.relational.database import Database
from repro.relational.schema import Column, TableSchema, validate_identifier
from repro.relational.types import infer_type


class DelimitedImporter(Importer):
    """Import one delimited file into one table named after the source."""

    format_name = "delimited"

    def __init__(
        self,
        source_name: str,
        declare_constraints: bool = True,
        delimiter: str = "\t",
        table_name: Optional[str] = None,
    ):
        super().__init__(source_name, declare_constraints)
        self.delimiter = delimiter
        self.table_name = table_name or source_name

    def import_text(self, text: str) -> ImportResult:
        reader = csv.reader(io.StringIO(text), delimiter=self.delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise ImportError_("delimited file is empty") from None
        names = [validate_identifier(h.strip().lower().replace(" ", "_"), "column") for h in header]
        if len(set(names)) != len(names):
            raise ImportError_(f"duplicate column names in header: {names}")
        records: List[List[Optional[str]]] = []
        for line_no, record in enumerate(reader, start=2):
            if not record:
                continue
            if len(record) != len(names):
                raise ImportError_(
                    f"line {line_no}: expected {len(names)} fields, got {len(record)}"
                )
            records.append([value if value != "" else None for value in record])
        columns = []
        for i, name in enumerate(names):
            values = [record[i] for record in records]
            columns.append(Column(name, infer_type(values)))
        database = Database(self.source_name)
        table = database.create_table(TableSchema(self.table_name, columns))
        for record in records:
            table.insert(dict(zip(names, record)))
        return ImportResult(database, len(records), 1)


registry.register("delimited", DelimitedImporter)
