"""OBO-style ontology files (Gene Ontology and friends).

Section 4.4 names controlled vocabularies as "excellent links ... provided
that the ontologies are themselves integrated as data sources". This
parser reads the ``[Term]`` stanza format and materializes the term table
plus the ``is_a`` DAG, so an ontology becomes a first-class ALADIN source
whose accessions (``GO:0001234``) are targets for cross-references.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.dataimport.base import ImportError_, Importer, ImportResult, registry
from repro.relational.database import Database
from repro.relational.schema import Column, ForeignKey, TableSchema, UniqueConstraint
from repro.relational.types import DataType


@dataclass
class OboTerm:
    """One ontology term."""

    term_accession: str
    name: str = ""
    namespace: str = ""
    definition: str = ""
    is_a: List[str] = field(default_factory=list)


def write_obo(terms: Iterable[OboTerm]) -> str:
    chunks: List[str] = []
    for term in terms:
        lines = ["[Term]", f"id: {term.term_accession}"]
        if term.name:
            lines.append(f"name: {term.name}")
        if term.namespace:
            lines.append(f"namespace: {term.namespace}")
        if term.definition:
            lines.append(f'def: "{term.definition}"')
        for parent in term.is_a:
            lines.append(f"is_a: {parent}")
        chunks.append("\n".join(lines))
    return "\n\n".join(chunks) + ("\n" if chunks else "")


def parse_obo(text: str) -> List[OboTerm]:
    terms: List[OboTerm] = []
    current: Optional[OboTerm] = None
    in_term_stanza = False
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("["):
            if current is not None:
                terms.append(current)
                current = None
            in_term_stanza = line == "[Term]"
            continue
        if not in_term_stanza:
            continue
        if ":" not in line:
            raise ImportError_(f"malformed OBO line: {line!r}")
        key, value = line.split(":", 1)
        key = key.strip()
        value = value.strip()
        if key == "id":
            current = OboTerm(term_accession=value)
        elif current is None:
            raise ImportError_(f"OBO tag before id: {line!r}")
        elif key == "name":
            current.name = value
        elif key == "namespace":
            current.namespace = value
        elif key == "def":
            current.definition = value.strip('"')
        elif key == "is_a":
            current.is_a.append(value.split("!")[0].strip())
    if current is not None:
        terms.append(current)
    return terms


class OboImporter(Importer):
    """Tables: ``term`` (primary) and ``term_isa`` (DAG edges)."""

    format_name = "obo"

    def import_text(self, text: str) -> ImportResult:
        terms = parse_obo(text)
        database = Database(self.source_name)
        declare = self.declare_constraints
        term_columns = [
            Column("term_id", DataType.INTEGER, nullable=False),
            Column("accession", DataType.TEXT),
            Column("name", DataType.TEXT),
            Column("namespace", DataType.TEXT),
            Column("definition", DataType.TEXT),
        ]
        isa_columns = [
            Column("term_isa_id", DataType.INTEGER, nullable=False),
            Column("term_id", DataType.INTEGER),
            Column("parent_term_id", DataType.INTEGER),
        ]
        if declare:
            database.create_table(
                TableSchema(
                    "term",
                    term_columns,
                    primary_key=("term_id",),
                    unique_constraints=[UniqueConstraint(("accession",))],
                )
            )
            database.create_table(
                TableSchema(
                    "term_isa",
                    isa_columns,
                    primary_key=("term_isa_id",),
                    foreign_keys=[
                        ForeignKey(("term_id",), "term", ("term_id",)),
                        ForeignKey(("parent_term_id",), "term", ("term_id",)),
                    ],
                )
            )
        else:
            database.create_table(TableSchema("term", term_columns))
            database.create_table(TableSchema("term_isa", isa_columns))
        allocator = self.make_id_allocator()
        ids = {}
        warnings: List[str] = []
        for term in terms:
            term_id = allocator.next("term")
            ids[term.term_accession] = term_id
            database.insert(
                "term",
                {
                    "term_id": term_id,
                    "accession": term.term_accession,
                    "name": term.name or None,
                    "namespace": term.namespace or None,
                    "definition": term.definition or None,
                },
            )
        for term in terms:
            for parent in term.is_a:
                if parent not in ids:
                    warnings.append(f"{term.term_accession}: unknown parent {parent}")
                    continue
                database.insert(
                    "term_isa",
                    {
                        "term_isa_id": allocator.next("term_isa"),
                        "term_id": ids[term.term_accession],
                        "parent_term_id": ids[parent],
                    },
                )
        return ImportResult(database, len(terms), 2, warnings)


registry.register("obo", OboImporter)
