"""Generic XML-to-relational shredding.

Section 4.1: "Databases exported as XML files can be parsed using a
generic XML shredder" (the paper cites generic XML wrapper generation,
[NJM03]). The mapping is purely structural, with zero semantic knowledge:

* every element tag becomes one table,
* every table gets a digit-only surrogate key ``<tag>_id``,
* nesting becomes a ``parent_id``/``parent_tag`` pair,
* XML attributes become columns,
* text content becomes a ``text_value`` column.

Because the shredder knows nothing about the data, the resulting schema
has *no* declared constraints at all — exactly the "generic parsers often
cannot generate constraints due to missing semantic knowledge" case that
motivates ALADIN's constraint discovery.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from collections import defaultdict
from typing import Dict, List, Optional, Set

from repro.dataimport.base import ImportError_, Importer, ImportResult, registry
from repro.relational.database import Database
from repro.relational.schema import Column, TableSchema, validate_identifier
from repro.relational.types import DataType, infer_type


def _sanitize(tag: str) -> str:
    # Strip XML namespaces and coerce to a valid SQL identifier.
    tag = tag.split("}")[-1]
    tag = re.sub(r"[^A-Za-z0-9_]", "_", tag).lower()
    if not tag or tag[0].isdigit():
        tag = "t_" + tag
    return validate_identifier(tag, "table")


class XmlShredder(Importer):
    """Shred arbitrary XML into relations, one table per element tag."""

    format_name = "xml"

    def import_text(self, text: str) -> ImportResult:
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise ImportError_(f"malformed XML: {exc}") from exc
        rows: Dict[str, List[dict]] = defaultdict(list)
        allocator = self.make_id_allocator()
        self._walk(root, None, None, rows, allocator)
        database = Database(self.source_name)
        for tag in sorted(rows):
            table_rows = rows[tag]
            columns = self._columns_for(tag, table_rows)
            database.create_table(TableSchema(tag, columns))
            database.insert_many(tag, table_rows)
        total = sum(len(r) for r in rows.values())
        return ImportResult(database, total, len(rows))

    def _walk(
        self,
        element: ET.Element,
        parent_tag: Optional[str],
        parent_id: Optional[int],
        rows: Dict[str, List[dict]],
        allocator,
    ) -> None:
        tag = _sanitize(element.tag)
        element_id = allocator.next(tag)
        row = {f"{tag}_id": element_id}
        if parent_tag is not None:
            row["parent_tag"] = parent_tag
            row["parent_id"] = parent_id
        for attr_name, attr_value in element.attrib.items():
            row[_sanitize(attr_name)] = attr_value
        text = (element.text or "").strip()
        if text:
            row["text_value"] = text
        rows[tag].append(row)
        for child in element:
            self._walk(child, tag, element_id, rows, allocator)

    def _columns_for(self, tag: str, table_rows: List[dict]) -> List[Column]:
        names: List[str] = [f"{tag}_id"]
        seen: Set[str] = {f"{tag}_id"}
        for row in table_rows:
            for key in row:
                if key not in seen:
                    seen.add(key)
                    names.append(key)
        columns = []
        for name in names:
            values = [row.get(name) for row in table_rows]
            columns.append(Column(name, infer_type(values)))
        return columns


registry.register("xml", XmlShredder)
