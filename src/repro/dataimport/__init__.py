"""Data import: step 1 of the ALADIN pipeline.

Section 4.1: every source is read "into a relational database"; neither a
standard schema nor integrity constraints are required, because the later
discovery steps reconstruct structure from the data. Parsers here mirror
the import channels the paper lists:

* line-prefixed flat files (Swiss-Prot / EMBL style) — :mod:`flatfile`
* FASTA sequence files — :mod:`fasta`
* PDB-style structure summaries — :mod:`pdbfile`
* SCOP/CATH-style classification hierarchies — :mod:`scopcath`
* generic XML shredding — :mod:`xmlshredder`
* delimited text — :mod:`delimited`
* OBO-style ontologies — :mod:`obo`
* direct relational dumps — :class:`RelationalDumpImporter`
* the BioSQL target schema of Figure 3 — :mod:`biosql`

All parsers generate integer surrogate keys; public accession numbers
appear only as data values — the asymmetry ALADIN's accession heuristic
feeds on.
"""

from repro.dataimport.base import ImportError_, Importer, ImportResult, registry
from repro.dataimport.records import CrossReference, EntryRecord, Feature
from repro.dataimport.flatfile import FlatFileImporter, parse_flatfile, write_flatfile
from repro.dataimport.fasta import FastaImporter, parse_fasta, write_fasta
from repro.dataimport.pdbfile import PdbImporter, parse_pdb_summaries, write_pdb_summaries
from repro.dataimport.scopcath import ClassificationImporter, parse_classification, write_classification
from repro.dataimport.xmlshredder import XmlShredder
from repro.dataimport.delimited import DelimitedImporter
from repro.dataimport.obo import OboImporter, parse_obo, write_obo
from repro.dataimport.dump import RelationalDumpImporter
from repro.dataimport.biosql import build_biosql_schema, load_biosql

__all__ = [
    "ClassificationImporter",
    "CrossReference",
    "DelimitedImporter",
    "EntryRecord",
    "FastaImporter",
    "Feature",
    "FlatFileImporter",
    "ImportError_",
    "ImportResult",
    "Importer",
    "OboImporter",
    "PdbImporter",
    "RelationalDumpImporter",
    "XmlShredder",
    "build_biosql_schema",
    "load_biosql",
    "parse_classification",
    "parse_fasta",
    "parse_flatfile",
    "parse_obo",
    "parse_pdb_summaries",
    "registry",
    "write_classification",
    "write_fasta",
    "write_flatfile",
    "write_obo",
    "write_pdb_summaries",
]
