"""FASTA sequence files.

The simplest life-science exchange format: ``>accession description``
header lines followed by wrapped sequence lines. The importer produces a
single-table source — useful as a minimal source and as the degenerate
case for primary-relation discovery (one table, trivially primary).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.dataimport.base import ImportError_, Importer, ImportResult, registry
from repro.relational.database import Database
from repro.relational.schema import Column, TableSchema, UniqueConstraint
from repro.relational.types import DataType

_WIDTH = 70

FastaEntry = Tuple[str, str, str]  # (accession, description, sequence)


def write_fasta(entries: Iterable[FastaEntry]) -> str:
    lines: List[str] = []
    for accession, description, sequence in entries:
        header = f">{accession}"
        if description:
            header += f" {description}"
        lines.append(header)
        for i in range(0, len(sequence), _WIDTH):
            lines.append(sequence[i : i + _WIDTH])
    return "\n".join(lines) + ("\n" if lines else "")


def parse_fasta(text: str) -> List[FastaEntry]:
    entries: List[FastaEntry] = []
    accession = None
    description = ""
    chunks: List[str] = []
    for line in text.splitlines():
        line = line.rstrip()
        if not line:
            continue
        if line.startswith(">"):
            if accession is not None:
                entries.append((accession, description, "".join(chunks)))
            header = line[1:].strip()
            if not header:
                raise ImportError_("FASTA header without accession")
            parts = header.split(None, 1)
            accession = parts[0]
            description = parts[1] if len(parts) > 1 else ""
            chunks = []
        else:
            if accession is None:
                raise ImportError_(f"sequence data before first header: {line!r}")
            chunks.append(line.replace(" ", ""))
    if accession is not None:
        entries.append((accession, description, "".join(chunks)))
    return entries


class FastaImporter(Importer):
    """One table: ``seq_entry(seq_id, accession, description, length, seq)``."""

    format_name = "fasta"

    def import_text(self, text: str) -> ImportResult:
        entries = parse_fasta(text)
        database = Database(self.source_name)
        columns = [
            Column("seq_id", DataType.INTEGER, nullable=False),
            Column("accession", DataType.TEXT),
            Column("description", DataType.TEXT),
            Column("length", DataType.INTEGER),
            Column("seq", DataType.TEXT),
        ]
        if self.declare_constraints:
            schema = TableSchema(
                "seq_entry",
                columns,
                primary_key=("seq_id",),
                unique_constraints=[UniqueConstraint(("accession",))],
            )
        else:
            schema = TableSchema("seq_entry", columns)
        table = database.create_table(schema)
        for seq_id, (accession, description, sequence) in enumerate(entries, start=1):
            table.insert(
                {
                    "seq_id": seq_id,
                    "accession": accession,
                    "description": description or None,
                    "length": len(sequence),
                    "seq": sequence,
                }
            )
        return ImportResult(database, len(entries), 1)


registry.register("fasta", FastaImporter)
