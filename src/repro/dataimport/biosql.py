"""The BioSQL subset schema of Figure 3 and a loader for it.

Section 5 demonstrates ALADIN's heuristics "using a fraction from the
BioSQL schema used for storing imported data from Swiss-Prot and EMBL":

* ``bioentry`` stores the primary objects; its ``accession`` column holds
  values of "mixed characters and integers and all have the same length"
  — the only accession candidate of the table;
* ``bioentry_id`` is digit-only, ``name`` has varying length, ``taxon_id``
  is non-unique — all correctly rejected by the heuristic;
* the in-degree of ``bioentry`` is the highest in the schema, so it is
  chosen as the primary relation;
* ``dbxref.accession`` holds outgoing cross-references;
* keyword dictionary tables are "filled only with those terms that are
  actually referenced, and no two dictionary tables have an equal number
  of tuples", so FK directions can be guessed correctly.

:func:`build_biosql_schema` creates this schema; :func:`load_biosql`
fills it from parsed flat-file records, reproducing the BioPerl/BioSQL
import channel named in Section 4.1.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.dataimport.base import IdAllocator, ImportResult
from repro.dataimport.records import EntryRecord
from repro.relational.database import Database
from repro.relational.schema import Column, ForeignKey, TableSchema, UniqueConstraint
from repro.relational.types import DataType


def build_biosql_schema(name: str = "biosql", declare_constraints: bool = True) -> Database:
    """Create an empty BioSQL-subset database (Figure 3)."""
    database = Database(name)

    def schema(table, columns, pk=None, uniques=(), fks=()):
        if not declare_constraints:
            return TableSchema(table, columns)
        return TableSchema(
            table,
            columns,
            primary_key=pk,
            unique_constraints=[UniqueConstraint(u) for u in uniques],
            foreign_keys=[ForeignKey(*fk) for fk in fks],
        )

    database.create_table(
        schema(
            "biodatabase",
            [
                Column("biodatabase_id", DataType.INTEGER, nullable=False),
                Column("name", DataType.TEXT),
            ],
            pk=("biodatabase_id",),
        )
    )
    database.create_table(
        schema(
            "taxon",
            [
                Column("taxon_id", DataType.INTEGER, nullable=False),
                Column("name", DataType.TEXT),
                Column("ncbi_taxon_id", DataType.INTEGER),
            ],
            pk=("taxon_id",),
        )
    )
    database.create_table(
        schema(
            "bioentry",
            [
                Column("bioentry_id", DataType.INTEGER, nullable=False),
                Column("biodatabase_id", DataType.INTEGER),
                Column("taxon_id", DataType.INTEGER),
                Column("name", DataType.TEXT),
                Column("accession", DataType.TEXT),
                Column("identifier", DataType.TEXT),
                Column("description", DataType.TEXT),
                Column("version", DataType.INTEGER),
            ],
            pk=("bioentry_id",),
            uniques=[("accession",)],
            fks=[
                (("biodatabase_id",), "biodatabase", ("biodatabase_id",)),
                (("taxon_id",), "taxon", ("taxon_id",)),
            ],
        )
    )
    database.create_table(
        schema(
            "biosequence",
            [
                Column("bioentry_id", DataType.INTEGER, nullable=False),
                Column("version", DataType.INTEGER),
                Column("length", DataType.INTEGER),
                Column("alphabet", DataType.TEXT),
                Column("biosequence_str", DataType.TEXT),
            ],
            pk=("bioentry_id",),
            fks=[(("bioentry_id",), "bioentry", ("bioentry_id",))],
        )
    )
    database.create_table(
        schema(
            "ontology_term",
            [
                Column("ontology_term_id", DataType.INTEGER, nullable=False),
                Column("name", DataType.TEXT),
                Column("term_definition", DataType.TEXT),
            ],
            pk=("ontology_term_id",),
        )
    )
    database.create_table(
        schema(
            "bioentry_qualifier_value",
            [
                Column("bioentry_qualifier_id", DataType.INTEGER, nullable=False),
                Column("bioentry_id", DataType.INTEGER),
                Column("ontology_term_id", DataType.INTEGER),
                Column("qualifier_value", DataType.TEXT),
            ],
            pk=("bioentry_qualifier_id",),
            fks=[
                (("bioentry_id",), "bioentry", ("bioentry_id",)),
                (("ontology_term_id",), "ontology_term", ("ontology_term_id",)),
            ],
        )
    )
    database.create_table(
        schema(
            "dbxref",
            [
                Column("dbxref_id", DataType.INTEGER, nullable=False),
                Column("dbname", DataType.TEXT),
                Column("accession", DataType.TEXT),
                Column("version", DataType.INTEGER),
            ],
            pk=("dbxref_id",),
        )
    )
    database.create_table(
        schema(
            "bioentry_dbxref",
            [
                Column("bioentry_dbxref_id", DataType.INTEGER, nullable=False),
                Column("bioentry_id", DataType.INTEGER),
                Column("dbxref_id", DataType.INTEGER),
            ],
            pk=("bioentry_dbxref_id",),
            fks=[
                (("bioentry_id",), "bioentry", ("bioentry_id",)),
                (("dbxref_id",), "dbxref", ("dbxref_id",)),
            ],
        )
    )
    database.create_table(
        schema(
            "reference",
            [
                Column("reference_id", DataType.INTEGER, nullable=False),
                Column("title", DataType.TEXT),
                Column("authors", DataType.TEXT),
            ],
            pk=("reference_id",),
        )
    )
    database.create_table(
        schema(
            "bioentry_reference",
            [
                Column("bioentry_reference_id", DataType.INTEGER, nullable=False),
                Column("bioentry_id", DataType.INTEGER),
                Column("reference_id", DataType.INTEGER),
            ],
            pk=("bioentry_reference_id",),
            fks=[
                (("bioentry_id",), "bioentry", ("bioentry_id",)),
                (("reference_id",), "reference", ("reference_id",)),
            ],
        )
    )
    database.create_table(
        schema(
            "seqfeature",
            [
                Column("seqfeature_id", DataType.INTEGER, nullable=False),
                Column("bioentry_id", DataType.INTEGER),
                Column("type_term_id", DataType.INTEGER),
                Column("start_pos", DataType.INTEGER),
                Column("end_pos", DataType.INTEGER),
            ],
            pk=("seqfeature_id",),
            fks=[
                (("bioentry_id",), "bioentry", ("bioentry_id",)),
                (("type_term_id",), "ontology_term", ("ontology_term_id",)),
            ],
        )
    )
    database.create_table(
        schema(
            "comment",
            [
                Column("comment_id", DataType.INTEGER, nullable=False),
                Column("bioentry_id", DataType.INTEGER),
                Column("comment_text", DataType.TEXT),
                Column("rank", DataType.INTEGER),
            ],
            pk=("comment_id",),
            fks=[(("bioentry_id",), "bioentry", ("bioentry_id",))],
        )
    )
    return database


def load_biosql(
    records: Iterable[EntryRecord],
    database_name: str = "biosql",
    biodatabase: str = "swissprot",
    declare_constraints: bool = True,
    contiguous_ids: bool = False,
) -> ImportResult:
    """Load flat-file records into a fresh BioSQL-subset database."""
    database = build_biosql_schema(database_name, declare_constraints)
    ids = IdAllocator(contiguous=contiguous_ids)
    database.insert(
        "biodatabase", {"biodatabase_id": ids.next("biodatabase"), "name": biodatabase}
    )
    biodatabase_id = database.table("biodatabase").row_at(0)["biodatabase_id"]
    taxa: Dict[int, int] = {}
    terms: Dict[str, int] = {}
    xrefs: Dict[tuple, int] = {}
    warnings: List[str] = []
    count = 0
    for record in records:
        bioentry_id = ids.next("bioentry")
        count += 1
        taxon_id = None
        if record.taxonomy_id is not None:
            if record.taxonomy_id not in taxa:
                taxa[record.taxonomy_id] = ids.next("taxon")
                database.insert(
                    "taxon",
                    {
                        "taxon_id": taxa[record.taxonomy_id],
                        "name": record.organism or None,
                        "ncbi_taxon_id": record.taxonomy_id,
                    },
                )
            taxon_id = taxa[record.taxonomy_id]
        database.insert(
            "bioentry",
            {
                "bioentry_id": bioentry_id,
                "biodatabase_id": biodatabase_id,
                "taxon_id": taxon_id,
                "name": record.name or None,
                "accession": record.accession or None,
                # GI-number style: digit-only, so it is surrogate-key
                # material, not an accession candidate (Figure 3 discussion).
                "identifier": str(1000000 + bioentry_id),
                "description": record.description or None,
                "version": 1,
            },
        )
        if record.sequence:
            alphabet = "protein" if set(record.sequence) - set("ACGTUN") else "dna"
            database.insert(
                "biosequence",
                {
                    "bioentry_id": bioentry_id,
                    "version": 1,
                    "length": len(record.sequence),
                    "alphabet": alphabet,
                    "biosequence_str": record.sequence,
                },
            )
        for keyword in record.keywords:
            if keyword not in terms:
                terms[keyword] = ids.next("ontology_term")
                database.insert(
                    "ontology_term",
                    {
                        "ontology_term_id": terms[keyword],
                        "name": keyword,
                        "term_definition": None,
                    },
                )
            database.insert(
                "bioentry_qualifier_value",
                {
                    "bioentry_qualifier_id": ids.next("bioentry_qualifier_value"),
                    "bioentry_id": bioentry_id,
                    "ontology_term_id": terms[keyword],
                    "qualifier_value": keyword,
                },
            )
        for xref in record.cross_references:
            key = (xref.database, xref.accession)
            if key not in xrefs:
                xrefs[key] = ids.next("dbxref")
                database.insert(
                    "dbxref",
                    {
                        "dbxref_id": xrefs[key],
                        "dbname": xref.database,
                        "accession": xref.accession,
                        "version": 1,
                    },
                )
            database.insert(
                "bioentry_dbxref",
                {
                    "bioentry_dbxref_id": ids.next("bioentry_dbxref"),
                    "bioentry_id": bioentry_id,
                    "dbxref_id": xrefs[key],
                },
            )
        for citation in record.references:
            reference_id = ids.next("reference")
            database.insert(
                "reference",
                {"reference_id": reference_id, "title": citation, "authors": None},
            )
            database.insert(
                "bioentry_reference",
                {
                    "bioentry_reference_id": ids.next("bioentry_reference"),
                    "bioentry_id": bioentry_id,
                    "reference_id": reference_id,
                },
            )
        for feature in record.features:
            if feature.kind not in terms:
                terms[feature.kind] = ids.next("ontology_term")
                database.insert(
                    "ontology_term",
                    {
                        "ontology_term_id": terms[feature.kind],
                        "name": feature.kind,
                        "term_definition": None,
                    },
                )
            database.insert(
                "seqfeature",
                {
                    "seqfeature_id": ids.next("seqfeature"),
                    "bioentry_id": bioentry_id,
                    "type_term_id": terms[feature.kind],
                    "start_pos": feature.start,
                    "end_pos": feature.end,
                },
            )
        for rank, comment in enumerate(record.comments, start=1):
            database.insert(
                "comment",
                {
                    "comment_id": ids.next("comment"),
                    "bioentry_id": bioentry_id,
                    "comment_text": comment,
                    "rank": rank,
                },
            )
    return ImportResult(
        database=database,
        records_read=count,
        tables_created=len(database.table_names()),
        warnings=warnings,
    )
